//! Cross-crate integration tests over the baseline matchers: each produces
//! sane scores on real datasets and the Section III orderings hold.

use lsm::baselines::coma::{Aggregation, Coma};
use lsm::baselines::cupid::Cupid;
use lsm::baselines::flooding::SimilarityFlooding;
use lsm::baselines::lsd::Lsd;
use lsm::baselines::mlm::Mlm;
use lsm::baselines::smatch::SMatch;
use lsm::baselines::tune::grid_search;
use lsm::datasets::public_data::{ipfqr, movielens_imdb, rdb_star};
use lsm::prelude::*;

fn fixtures() -> (Lexicon, EmbeddingSpace) {
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    (lexicon, embedding)
}

#[test]
fn every_baseline_scores_every_public_dataset() {
    let (lexicon, embedding) = fixtures();
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    for d in [rdb_star(), ipfqr(), movielens_imdb()] {
        let sources: Vec<AttrId> = d.source.attr_ids().collect();
        let matchers: Vec<(&str, lsm::schema::ScoreMatrix)> = vec![
            ("CUPID", Cupid::new(0.2).score(&ctx, &d.source, &d.target)),
            ("COMA", Coma::new(Aggregation::Max).score(&ctx, &d.source, &d.target)),
            ("SM", SMatch.score(&ctx, &d.source, &d.target)),
            ("SF", SimilarityFlooding::default().score(&ctx, &d.source, &d.target)),
            ("MLM", Mlm::default().score(&ctx, &d.source, &d.target)),
        ];
        for (name, m) in matchers {
            let acc = m.top_k_accuracy(&d.ground_truth, &sources, 3);
            assert!(acc > 0.0, "{name} scored zero on {}", d.name);
            assert_eq!(m.rows(), d.source.attr_count());
            assert_eq!(m.cols(), d.target.attr_count());
        }
    }
}

/// The Table III ordering on the easy public datasets: the tuned heuristic
/// baselines are near-perfect on RDB-Star and IPFQR.
#[test]
fn tuned_baselines_are_near_perfect_on_easy_publics() {
    let (lexicon, embedding) = fixtures();
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    for d in [rdb_star(), ipfqr()] {
        let cupid = grid_search(Cupid::grid(), &ctx, &d.source, &d.target, &d.ground_truth, 3);
        let coma = grid_search(Coma::grid(), &ctx, &d.source, &d.target, &d.ground_truth, 3);
        assert!(cupid.accuracy > 0.9, "CUPID on {}: {:.2}", d.name, cupid.accuracy);
        assert!(coma.accuracy > 0.9, "COMA on {}: {:.2}", d.name, coma.accuracy);
    }
}

/// MovieLens-IMDB sits in the middle: clearly below the easy datasets.
#[test]
fn movielens_is_harder_than_easy_publics() {
    let (lexicon, embedding) = fixtures();
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    let ml = movielens_imdb();
    let easy = ipfqr();
    let tuned_ml = grid_search(Coma::grid(), &ctx, &ml.source, &ml.target, &ml.ground_truth, 3);
    let tuned_easy =
        grid_search(Coma::grid(), &ctx, &easy.source, &easy.target, &easy.ground_truth, 3);
    assert!(tuned_ml.accuracy < tuned_easy.accuracy - 0.1);
}

/// LSD's structural handicap: with half the labels it cannot reach targets
/// it never saw, so its accuracy is far below the heuristics on IPFQR
/// (where its TF-IDF inputs are near-empty codes, paper reports 0.00).
#[test]
fn lsd_struggles_without_verbose_text() {
    let (lexicon, embedding) = fixtures();
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    let d = ipfqr();
    let pairs: Vec<(AttrId, AttrId)> = d.ground_truth.pairs().collect();
    let (train, test) = pairs.split_at(pairs.len() / 2);
    let mut lsd = Lsd::new();
    lsd.train(&ctx, &d.source, &d.target, train);
    let m = lsd.score(&ctx, &d.source, &d.target);
    let test_sources: Vec<AttrId> = test.iter().map(|&(s, _)| s).collect();
    let acc = m.top_k_accuracy(&d.ground_truth, &test_sources, 3);
    assert!(acc < 0.4, "LSD on IPFQR should be poor, got {acc:.2}");
}

/// Interactive pinning settles exactly the labeled rows and nothing else.
#[test]
fn pinned_baseline_engine_matches_paper_semantics() {
    use lsm::core::session::PinnedBaselineEngine;
    use lsm::core::{LabelStore, SuggestionEngine};
    let (lexicon, embedding) = fixtures();
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    let d = movielens_imdb();
    let base = Coma::new(Aggregation::Max).score(&ctx, &d.source, &d.target);
    let sources: Vec<AttrId> = d.source.attr_ids().collect();
    let base_acc = base.top_k_accuracy(&d.ground_truth, &sources, 3);

    let engine = PinnedBaselineEngine::new(d.source.clone(), base);
    let mut labels = LabelStore::new();
    // Label the first three attributes with their truth.
    for &s in sources.iter().take(3) {
        labels.confirm(s, d.ground_truth.target_of(s).unwrap());
    }
    let pinned = engine.predict(&labels);
    // Labeled rows are now perfect.
    for &s in sources.iter().take(3) {
        assert_eq!(pinned.best(s).unwrap().0, d.ground_truth.target_of(s).unwrap());
    }
    // The rest are unchanged — pinning does not generalize.
    let rest: Vec<AttrId> = sources.iter().copied().skip(3).collect();
    let rest_acc_before = {
        let m = Coma::new(Aggregation::Max).score(&ctx, &d.source, &d.target);
        m.top_k_accuracy(&d.ground_truth, &rest, 3)
    };
    let rest_acc_after = pinned.top_k_accuracy(&d.ground_truth, &rest, 3);
    assert_eq!(rest_acc_before, rest_acc_after);
    let _ = base_acc;
}
