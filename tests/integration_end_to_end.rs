//! End-to-end integration: the full LSM pipeline — pre-training, featurizing,
//! self-training, active learning, session loop — on a reduced-scale task.
//!
//! Uses a small ISS and tiny encoder so the test runs in debug mode; the
//! full-scale behaviour is exercised by the `lsm-bench` binaries.

use lsm::core::metrics::manual_labeling_curve;
use lsm::datasets::customers::{generate_customer, CustomerSpec};
use lsm::datasets::iss::{generate_retail_iss, IssConfig};
use lsm::datasets::rename::{NamingStyle, RenameMix};
use lsm::prelude::*;

fn small_task() -> (Lexicon, Dataset) {
    let lexicon = full_lexicon();
    let iss = generate_retail_iss(&lexicon, IssConfig::small());
    let spec = CustomerSpec {
        name: "Mini Customer",
        entities: 3,
        attributes: 18,
        foreign_keys: 2,
        descriptions: true,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0x77,
    };
    let dataset = generate_customer(&iss, &lexicon, spec, 5);
    (lexicon, dataset)
}

fn tiny_matcher(lexicon: &Lexicon, dataset: &Dataset, use_bert: bool) -> LsmMatcher {
    let embedding = EmbeddingSpace::new(lexicon, EmbeddingConfig::default());
    let bert = use_bert.then(|| {
        let mut b = BertFeaturizer::pretrain(lexicon, BertFeaturizerConfig::tiny());
        b.pretrain_classifier(&dataset.target);
        b
    });
    let config = LsmConfig { use_bert, shortlist: 16, ..Default::default() };
    LsmMatcher::new(&dataset.source, &dataset.target, &embedding, bert, config)
}

#[test]
fn session_fully_matches_the_schema_and_saves_labels() {
    let (lexicon, dataset) = small_task();
    let mut matcher = tiny_matcher(&lexicon, &dataset, true);
    let mut oracle = PerfectOracle::new(dataset.ground_truth.clone());
    let outcome = lsm::core::run_session(&mut matcher, &mut oracle, SessionConfig::default());

    let last = outcome.curve.last().expect("non-empty curve");
    assert_eq!(last.matched, dataset.source.attr_count(), "schema fully matched");
    assert_eq!(last.matched_correct, last.matched, "perfect oracle ⇒ all correct");
    assert!(
        outcome.labels_used < dataset.source.attr_count(),
        "active learning must beat manual labeling: {} labels for {} attrs",
        outcome.labels_used,
        dataset.source.attr_count()
    );
    assert!(!outcome.response_times.is_empty());
    // The curve dominates the manual-labeling diagonal in area.
    let manual = manual_labeling_curve(dataset.source.attr_count());
    assert!(outcome.area_above_curve() < manual.area_above_curve());
}

#[test]
fn split_evaluation_beats_chance_decisively() {
    let (lexicon, dataset) = small_task();
    let mut matcher = tiny_matcher(&lexicon, &dataset, true);
    let eval = lsm::core::evaluate_split(&mut matcher, &dataset.ground_truth, 0.5, &[1, 3], 11);
    // 90 target attributes ⇒ chance top-3 ≈ 3/90.
    assert!(eval.accuracy(3) > 0.25, "top-3 {:.2}", eval.accuracy(3));
    assert!(eval.accuracy(1) <= eval.accuracy(3));
}

#[test]
fn bertless_configuration_still_completes_sessions() {
    let (lexicon, dataset) = small_task();
    let mut matcher = tiny_matcher(&lexicon, &dataset, false);
    let mut oracle = PerfectOracle::new(dataset.ground_truth.clone());
    let outcome = lsm::core::run_session(&mut matcher, &mut oracle, SessionConfig::default());
    assert_eq!(outcome.curve.last().unwrap().matched, dataset.source.attr_count());
}

#[test]
fn smart_selection_is_at_least_as_good_as_random_on_average() {
    let (lexicon, dataset) = small_task();
    let run = |strategy| {
        let mut matcher = tiny_matcher(&lexicon, &dataset, false);
        let mut oracle = PerfectOracle::new(dataset.ground_truth.clone());
        let config = SessionConfig { strategy, ..Default::default() };
        lsm::core::run_session(&mut matcher, &mut oracle, config)
    };
    let smart = run(SelectionStrategy::LeastConfidentAnchor);
    let random = run(SelectionStrategy::Random);
    // Both must terminate fully matched; the smart strategy should not be
    // substantially worse (small instances carry variance, so allow slack).
    assert_eq!(smart.curve.last().unwrap().matched, dataset.source.attr_count());
    assert_eq!(random.curve.last().unwrap().matched, dataset.source.attr_count());
    assert!(
        smart.labels_used <= random.labels_used + 3,
        "smart {} vs random {}",
        smart.labels_used,
        random.labels_used
    );
}

#[test]
fn session_is_deterministic_given_seeds() {
    let (lexicon, dataset) = small_task();
    let run = || {
        let mut matcher = tiny_matcher(&lexicon, &dataset, false);
        let mut oracle = PerfectOracle::new(dataset.ground_truth.clone());
        lsm::core::run_session(&mut matcher, &mut oracle, SessionConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.labels_used, b.labels_used);
    assert_eq!(a.curve, b.curve);
}
