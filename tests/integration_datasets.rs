//! Cross-crate integration tests over the dataset generators: every dataset
//! validates, matches the paper's Tables I/II sizes, and exhibits the
//! documented difficulty structure.

use lsm::datasets::customers::{all_specs, generate_customer};
use lsm::datasets::iss::{generate_retail_iss, AttrRole, IssConfig};
use lsm::datasets::public_data::all_public;
use lsm::prelude::*;
use lsm::text::lexical_similarity;

#[test]
fn paper_sized_iss_and_all_customers_validate() {
    let lexicon = full_lexicon();
    let iss = generate_retail_iss(&lexicon, IssConfig::paper());
    assert_eq!(
        (iss.schema.entity_count(), iss.schema.attr_count(), iss.schema.foreign_keys.len()),
        (92, 1218, 184)
    );
    let expected = [
        (3usize, 29usize, 2usize, true),
        (8, 53, 7, false),
        (3, 84, 2, false),
        (7, 136, 7, false),
        (25, 530, 24, true),
    ];
    for (spec, (entities, attrs, fks, desc)) in all_specs().into_iter().zip(expected) {
        let d = generate_customer(&iss, &lexicon, spec, 7);
        d.validate().unwrap();
        let stats = d.source_stats();
        assert_eq!(stats.entities, entities, "{}", d.name);
        assert_eq!(stats.attributes, attrs, "{}", d.name);
        assert_eq!(stats.pk_fk, fks, "{}", d.name);
        assert_eq!(stats.has_descriptions, desc, "{}", d.name);
        assert!(stats.unique_attr_names <= stats.attributes);
    }
}

#[test]
fn public_datasets_match_table_two() {
    let expected = [
        ("RDB-Star", (13, 65, 12), (5, 34, 4)),
        ("IPFQR", (1, 51, 0), (1, 67, 0)),
        ("MovieLens-IMDB", (6, 19, 5), (7, 39, 6)),
    ];
    for (d, (name, s, t)) in all_public(0).iter().zip(expected) {
        assert_eq!(d.name, name);
        d.validate().unwrap();
        let ss = d.source_stats();
        let ts = d.target_stats();
        assert_eq!((ss.entities, ss.attributes, ss.pk_fk), s, "{name} source");
        assert_eq!((ts.entities, ts.attributes, ts.pk_fk), t, "{name} target");
    }
}

/// The difficulty gradient the whole evaluation rests on: customers have
/// far more lexically-hard matches than the easy public datasets.
#[test]
fn difficulty_gradient_holds() {
    let lexicon = full_lexicon();
    let iss = generate_retail_iss(&lexicon, IssConfig::paper());
    let hard_fraction = |d: &Dataset| {
        d.ground_truth
            .pairs()
            .filter(|&(s, t)| {
                lexical_similarity(&d.source.attr(s).name, &d.target.attr(t).name) < 0.6
            })
            .count() as f64
            / d.ground_truth.len() as f64
    };
    let customer = generate_customer(&iss, &lexicon, all_specs()[4], 7);
    let publics = all_public(0);
    let rdb = hard_fraction(&publics[0]);
    let ipfqr = hard_fraction(&publics[1]);
    let cust = hard_fraction(&customer);
    assert!(cust > 0.25, "customer hard fraction {cust:.2}");
    assert!(rdb < 0.15, "RDB-Star hard fraction {rdb:.2}");
    assert!(ipfqr < 0.15, "IPFQR hard fraction {ipfqr:.2}");
    assert!(cust > rdb + 0.15);
}

/// Ground-truth provenance is structurally sound: customer keys map to ISS
/// primary keys, domain attributes to domain attributes.
#[test]
fn ground_truth_respects_roles() {
    let lexicon = full_lexicon();
    let iss = generate_retail_iss(&lexicon, IssConfig::paper());
    let d = generate_customer(&iss, &lexicon, all_specs()[1], 3);
    for source_attr in d.source.anchor_set() {
        let target = d.ground_truth.target_of(source_attr).expect("anchors covered");
        assert!(
            matches!(iss.roles[target.index()], AttrRole::PrimaryKey { .. }),
            "key attribute should map to an ISS primary key"
        );
    }
}

#[test]
fn different_seeds_vary_schemas_but_keep_sizes() {
    let lexicon = full_lexicon();
    let iss = generate_retail_iss(&lexicon, IssConfig::paper());
    let a = generate_customer(&iss, &lexicon, all_specs()[0], 1);
    let b = generate_customer(&iss, &lexicon, all_specs()[0], 2);
    assert_ne!(a.source, b.source);
    assert_eq!(a.source_stats().attributes, b.source_stats().attributes);
}
