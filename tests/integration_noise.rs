//! Integration tests for the Section V-F noise experiment: sessions driven
//! by a noisy oracle degrade gracefully and in proportion to the noise
//! rate.

use lsm::datasets::customers::{generate_customer, CustomerSpec};
use lsm::datasets::iss::{generate_retail_iss, IssConfig};
use lsm::datasets::rename::{NamingStyle, RenameMix};
use lsm::prelude::*;

fn task() -> (Lexicon, EmbeddingSpace, Dataset) {
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let iss = generate_retail_iss(&lexicon, IssConfig::small());
    let spec = CustomerSpec {
        name: "Noise Customer",
        entities: 3,
        attributes: 20,
        foreign_keys: 2,
        descriptions: false,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0x88,
    };
    let dataset = generate_customer(&iss, &lexicon, spec, 9);
    (lexicon, embedding, dataset)
}

fn run_with_noise(
    lexicon: &Lexicon,
    embedding: &EmbeddingSpace,
    dataset: &Dataset,
    noise: f64,
) -> lsm::core::SessionOutcome {
    let config = LsmConfig { use_bert: false, ..Default::default() };
    let mut matcher = LsmMatcher::new(&dataset.source, &dataset.target, embedding, None, config);
    let mut oracle = NoisyOracle::new(
        dataset.ground_truth.clone(),
        noise,
        embedding,
        &dataset.source,
        &dataset.target,
        42,
    );
    let _ = lexicon;
    lsm::core::run_session(&mut matcher, &mut oracle, SessionConfig::default())
}

#[test]
fn zero_noise_reaches_full_correctness() {
    let (lexicon, embedding, dataset) = task();
    let outcome = run_with_noise(&lexicon, &embedding, &dataset, 0.0);
    assert_eq!(outcome.final_correct_pct(), 100.0);
}

#[test]
fn heavy_noise_caps_correctness_but_still_terminates() {
    let (lexicon, embedding, dataset) = task();
    let outcome = run_with_noise(&lexicon, &embedding, &dataset, 0.5);
    let last = outcome.curve.last().expect("curve exists");
    // Every attribute is *matched* (possibly wrongly) …
    assert_eq!(last.matched, dataset.source.attr_count());
    // … but not all correctly.
    assert!(outcome.final_correct_pct() < 100.0);
    assert!(outcome.final_correct_pct() > 30.0, "reviewing still fixes many rows");
}

#[test]
fn correctness_degrades_monotonically_with_noise_on_average() {
    let (lexicon, embedding, dataset) = task();
    let clean = run_with_noise(&lexicon, &embedding, &dataset, 0.0).final_correct_pct();
    let light = run_with_noise(&lexicon, &embedding, &dataset, 0.2).final_correct_pct();
    let heavy = run_with_noise(&lexicon, &embedding, &dataset, 0.8).final_correct_pct();
    assert!(clean >= light, "clean {clean} vs light {light}");
    assert!(light >= heavy, "light {light} vs heavy {heavy}");
}

/// The corruption model targets the embedding-nearest wrong attribute —
/// verify the corrupted label is never the truth and is deterministic.
#[test]
fn corruption_is_plausible_and_deterministic() {
    let (_, embedding, dataset) = task();
    let mut o1 = NoisyOracle::new(
        dataset.ground_truth.clone(),
        1.0,
        &embedding,
        &dataset.source,
        &dataset.target,
        7,
    );
    let mut o2 = NoisyOracle::new(
        dataset.ground_truth.clone(),
        1.0,
        &embedding,
        &dataset.source,
        &dataset.target,
        7,
    );
    for s in dataset.source.attr_ids() {
        let l1 = o1.label(s);
        let l2 = o2.label(s);
        assert_eq!(l1, l2);
        assert_ne!(Some(l1), dataset.ground_truth.target_of(s));
    }
}
