//! Vertical portability: the paper pre-trains "once per ISS, in other
//! words, per vertical". This example builds a *healthcare* ISS from the
//! same lexicon, derives a synthetic hospital schema from it, and runs the
//! matching pipeline — nothing in LSM is retail-specific.
//!
//! ```sh
//! cargo run --release -p lsm --example healthcare_vertical
//! ```

use lsm::datasets::customers::{generate_customer, CustomerSpec};
use lsm::datasets::iss::{generate_iss, IssConfig};
use lsm::datasets::rename::{NamingStyle, RenameMix};
use lsm::lexicon::Domain;
use lsm::prelude::*;

fn main() {
    let lexicon = full_lexicon();
    let config = IssConfig { entities: 12, attributes: 84, foreign_keys: 13, seed: 0xbed };
    let iss = generate_iss(&lexicon, Domain::Health, config);
    println!(
        "healthcare ISS: {} entities / {} attributes / {} PK-FK",
        iss.schema.entity_count(),
        iss.schema.attr_count(),
        iss.schema.foreign_keys.len()
    );

    let spec = CustomerSpec {
        name: "Hospital H",
        entities: 4,
        attributes: 30,
        foreign_keys: 3,
        descriptions: false,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0x40,
    };
    let dataset = generate_customer(&iss, &lexicon, spec, 11);
    println!(
        "hospital schema: {} entities / {} attributes",
        dataset.source.entity_count(),
        dataset.source.attr_count()
    );

    println!("pre-training the featurizer for the healthcare vertical ...");
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let mut bert = BertFeaturizer::pretrain(&lexicon, BertFeaturizerConfig::tiny());
    bert.pretrain_classifier(&dataset.target);

    let mut matcher = LsmMatcher::new(
        &dataset.source,
        &dataset.target,
        &embedding,
        Some(bert),
        LsmConfig::default(),
    );
    let mut oracle = PerfectOracle::new(dataset.ground_truth.clone());
    let outcome = lsm::core::run_session(&mut matcher, &mut oracle, SessionConfig::default());

    println!("\nsession on the healthcare vertical:");
    println!(
        "  matched {}/{} correctly with {} labels ({:.0}% of the schema)",
        outcome.curve.last().map(|p| p.matched_correct).unwrap_or(0),
        outcome.total_attributes,
        outcome.labels_used,
        outcome.labeling_cost_pct()
    );
}
