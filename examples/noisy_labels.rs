//! Noisy labels: what happens when the human makes mistakes (Section V-F).
//!
//! ```sh
//! cargo run --release -p lsm --example noisy_labels
//! ```
//!
//! Runs the same session under increasing label-noise rates. The noisy
//! oracle corrupts an answer to the embedding-nearest *wrong* ISS attribute
//! — a plausible user error — and the report marks the incorrect labels.

use lsm::datasets::customers::{generate_customer, CustomerSpec};
use lsm::datasets::iss::{generate_retail_iss, IssConfig};
use lsm::datasets::rename::{NamingStyle, RenameMix};
use lsm::prelude::*;
use lsm::report::RecordingOracle;

fn main() {
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let iss = generate_retail_iss(&lexicon, IssConfig::small());
    let spec = CustomerSpec {
        name: "Noisy Customer",
        entities: 4,
        attributes: 26,
        foreign_keys: 3,
        descriptions: false,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0x6015e,
    };
    let dataset = generate_customer(&iss, &lexicon, spec, 77);

    println!(
        "{:<8} {:>16} {:>18} {:>14}",
        "noise", "labels used", "correct matches", "wrong labels"
    );
    for noise in [0.0, 0.1, 0.2, 0.3] {
        let config = LsmConfig { use_bert: false, ..Default::default() };
        let mut matcher =
            LsmMatcher::new(&dataset.source, &dataset.target, &embedding, None, config);
        let inner = NoisyOracle::new(
            dataset.ground_truth.clone(),
            noise,
            &embedding,
            &dataset.source,
            &dataset.target,
            42,
        );
        let mut oracle = RecordingOracle::new(inner);
        let outcome = run_session(&mut matcher, &mut oracle, SessionConfig::default());
        let wrong = oracle.events().iter().filter(|e| !e.correct).count();
        println!(
            "{:<8} {:>16} {:>15}/{:<2} {:>14}",
            format!("n={noise}"),
            outcome.labels_used,
            outcome.curve.last().map(|p| p.matched_correct).unwrap_or(0),
            outcome.total_attributes,
            wrong
        );
    }
    println!("\nthe (1 - n) ceiling: wrongly labeled attributes stay wrongly matched —");
    println!("exactly the plateau the paper's Figure 8 shows.");
}
