//! Attribute-selection strategies head to head (Section IV-E2 / Fig. 5).
//!
//! ```sh
//! cargo run --release -p lsm --example active_learning_strategies
//! ```
//!
//! Runs the same matching task under the least-confident-anchor strategy
//! and the random control, across several seeds, and compares labeling
//! costs — the experiment behind the paper's "smart selection reduces the
//! total labels required by up to 11 %" claim.

use lsm::datasets::customers::{generate_customer, CustomerSpec};
use lsm::datasets::iss::{generate_retail_iss, IssConfig};
use lsm::datasets::rename::{NamingStyle, RenameMix};
use lsm::prelude::*;

fn main() {
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let iss = generate_retail_iss(&lexicon, IssConfig::small());
    let spec = CustomerSpec {
        name: "Strategy Customer",
        entities: 5,
        attributes: 34,
        foreign_keys: 4,
        descriptions: false,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0x57a7,
    };

    println!(
        "{:<6} {:>22} {:>22} {:>14}",
        "seed", "smart labels (%)", "random labels (%)", "smart wins?"
    );
    let mut smart_total = 0usize;
    let mut random_total = 0usize;
    for seed in 1..=5u64 {
        let dataset = generate_customer(&iss, &lexicon, spec, seed);
        let run = |strategy| {
            let config = LsmConfig { use_bert: false, ..Default::default() };
            let mut matcher =
                LsmMatcher::new(&dataset.source, &dataset.target, &embedding, None, config);
            let mut oracle = PerfectOracle::new(dataset.ground_truth.clone());
            let session = SessionConfig { strategy, seed, ..Default::default() };
            run_session(&mut matcher, &mut oracle, session)
        };
        let smart = run(SelectionStrategy::LeastConfidentAnchor);
        let random = run(SelectionStrategy::Random);
        smart_total += smart.labels_used;
        random_total += random.labels_used;
        println!(
            "{:<6} {:>15} ({:>4.0}%) {:>15} ({:>4.0}%) {:>14}",
            seed,
            smart.labels_used,
            smart.labeling_cost_pct(),
            random.labels_used,
            random.labeling_cost_pct(),
            if smart.labels_used <= random.labels_used { "yes" } else { "no" }
        );
    }
    println!("\ntotals: smart {smart_total} vs random {random_total} labels across 5 seeds");
}
