//! Baseline shootout: run all six classic matchers on one dataset.
//!
//! ```sh
//! cargo run --release -p lsm --example baseline_shootout [dataset]
//! ```
//!
//! `dataset` is one of `rdb-star`, `ipfqr`, `movielens` (default).
//! Reproduces the Section III motivation study on a single pair: every
//! baseline's top-1/3/5 accuracy plus a look at where they disagree.

use lsm::baselines::coma::{Aggregation, Coma};
use lsm::baselines::cupid::Cupid;
use lsm::baselines::flooding::SimilarityFlooding;
use lsm::baselines::lsd::Lsd;
use lsm::baselines::mlm::Mlm;
use lsm::baselines::smatch::SMatch;
use lsm::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "movielens".to_string());
    let dataset = match which.as_str() {
        "rdb-star" => lsm::datasets::public_data::rdb_star(),
        "ipfqr" => lsm::datasets::public_data::ipfqr(),
        "movielens" => lsm::datasets::public_data::movielens_imdb(),
        other => {
            eprintln!("unknown dataset {other:?}; use rdb-star | ipfqr | movielens");
            std::process::exit(1);
        }
    };
    println!("dataset: {}", dataset.name);

    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    let sources: Vec<AttrId> = dataset.source.attr_ids().collect();

    let mut lsd = Lsd::new();
    let train: Vec<(AttrId, AttrId)> = dataset.ground_truth.pairs().step_by(2).collect();
    lsd.train(&ctx, &dataset.source, &dataset.target, &train);

    let matchers: Vec<(&str, ScoreMatrix)> = vec![
        ("CUPID", Cupid::new(0.2).score(&ctx, &dataset.source, &dataset.target)),
        ("COMA", Coma::new(Aggregation::Max).score(&ctx, &dataset.source, &dataset.target)),
        ("S-MATCH", SMatch.score(&ctx, &dataset.source, &dataset.target)),
        ("SF", SimilarityFlooding::default().score(&ctx, &dataset.source, &dataset.target)),
        ("LSD", lsd.score(&ctx, &dataset.source, &dataset.target)),
        ("MLM", Mlm::default().score(&ctx, &dataset.source, &dataset.target)),
    ];

    println!("\n{:<10} {:>7} {:>7} {:>7}", "matcher", "top-1", "top-3", "top-5");
    for (name, scores) in &matchers {
        print!("{name:<10}");
        for k in [1, 3, 5] {
            print!(" {:>7.2}", scores.top_k_accuracy(&dataset.ground_truth, &sources, k));
        }
        println!();
    }

    // Where do the linguistic matchers disagree?
    println!("\nattributes where CUPID and COMA pick different top-1 targets:");
    let cupid = &matchers[0].1;
    let coma = &matchers[1].1;
    for &s in &sources {
        let c1 = cupid.best(s).expect("non-empty").0;
        let c2 = coma.best(s).expect("non-empty").0;
        if c1 != c2 {
            println!(
                "  {:<24} CUPID → {:<28} COMA → {}",
                dataset.source.qualified_name(s),
                dataset.target.qualified_name(c1),
                dataset.target.qualified_name(c2)
            );
        }
    }
}
