//! Quickstart: match a small customer schema against an ISS with LSM.
//!
//! ```sh
//! cargo run --release -p lsm --example quickstart
//! ```
//!
//! Builds the shared pre-trained artifacts (lexicon, embedding space), a
//! tiny customer schema in the spirit of the paper's Figure 1, and runs a
//! cold-start LSM prediction plus one simulated interaction round.

use lsm::prelude::*;

fn main() {
    // ---- the "customer" schema from the paper's Figure 1 ----
    let source = Schema::builder("figure-1-customer")
        .entity("Item")
        .attr("item_id", DataType::Integer)
        .attr("brand_name", DataType::Text)
        .attr("EAN", DataType::Text)
        .attr("enabled", DataType::Boolean)
        .pk("item_id")
        .entity("Orders")
        .attr("order_id", DataType::Integer)
        .attr("item_id", DataType::Integer)
        .attr("item_amount", DataType::Integer)
        .attr("discount", DataType::Decimal)
        .attr("pick_up_estimated_time", DataType::Timestamp)
        .pk("order_id")
        .foreign_key("Orders", "item_id", "Item", "item_id")
        .build()
        .expect("valid source schema");

    // ---- a slice of the ISS ----
    let target = Schema::builder("retail-iss")
        .entity("Product")
        .attr_desc("product_id", DataType::Integer, "primary key of the product entity")
        .attr_desc(
            "primary_brand_id",
            DataType::Integer,
            "brand under which the product is marketed",
        )
        .attr_desc(
            "european_article_number",
            DataType::Text,
            "standardized thirteen digit barcode identifying the product",
        )
        .attr_desc("product_status_id", DataType::Integer, "lifecycle status of the product")
        .pk("product_id")
        .entity("TransactionLine")
        .attr_desc("transaction_id", DataType::Integer, "primary key of the transaction line")
        .attr_desc("product_id", DataType::Integer, "reference to the product entity")
        .attr_desc(
            "quantity",
            DataType::Integer,
            "number of units of the product in the transaction line",
        )
        .attr_desc(
            "price_change_percentage",
            DataType::Decimal,
            "fractional reduction applied to the list price at sale time",
        )
        .attr_desc(
            "product_item_price_amount",
            DataType::Decimal,
            "monetary price of the product item on the price list",
        )
        .attr_desc(
            "promised_avalailable_curbside_pickup_timestamp",
            DataType::Timestamp,
            "time at which the curbside pickup order is promised to be ready",
        )
        .pk("transaction_id")
        .foreign_key("TransactionLine", "product_id", "Product", "product_id")
        .build()
        .expect("valid target schema");

    // ---- pre-trained artifacts ----
    println!("building lexicon + embedding space ...");
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    println!("pre-training the BERT featurizer (MLM on the domain corpus) ...");
    let mut bert = BertFeaturizer::pretrain(&lexicon, BertFeaturizerConfig::tiny());
    bert.pretrain_classifier(&target);

    // ---- cold-start predictions ----
    let matcher = LsmMatcher::new(&source, &target, &embedding, Some(bert), LsmConfig::default());
    let labels = LabelStore::new();
    let scores = matcher.predict(&labels);
    println!("\ncold-start top-3 suggestions:");
    for s in source.attr_ids() {
        let top = scores.top_k(s, 3);
        let list: Vec<String> = top
            .iter()
            .map(|&(t, score)| format!("{} ({score:.2})", target.qualified_name(t)))
            .collect();
        println!("  {:<34} → {}", source.qualified_name(s), list.join(", "));
    }

    // ---- one interaction round: the user labels Orders.discount ----
    let discount = source.attr_by_qualified_name("Orders.discount").expect("exists").id;
    let pcp = target
        .attr_by_qualified_name("TransactionLine.price_change_percentage")
        .expect("exists")
        .id;
    let mut labels = LabelStore::new();
    labels.confirm(discount, pcp);
    let mut matcher = matcher;
    matcher.retrain(&labels);
    let scores = matcher.predict(&labels);
    println!("\nafter labeling Orders.discount → TransactionLine.price_change_percentage:");
    for s in source.attr_ids() {
        let (t, score) = scores.best(s).expect("non-empty target");
        println!(
            "  {:<34} → {:<52} ({score:.2})",
            source.qualified_name(s),
            target.qualified_name(t)
        );
    }
}
