//! Retail onboarding: the paper's end-to-end scenario.
//!
//! ```sh
//! cargo run --release -p lsm --example retail_onboarding
//! ```
//!
//! A service operator onboards a retail customer: the customer's schema
//! (generated at the paper's "Customer A" size) must be fully mapped onto
//! the 92-entity / 1218-attribute industry-specific schema. The example
//! runs the complete human-in-the-loop workflow with a simulated user and
//! reports the labeling cost saved versus manual labeling.

use lsm::datasets::customers::{generate_customer, spec_a};
use lsm::datasets::iss::{generate_retail_iss, IssConfig};
use lsm::prelude::*;
use lsm::report::{render_report, RecordingOracle};

fn main() {
    println!("generating the retail ISS (92 entities / 1218 attributes) ...");
    let lexicon = full_lexicon();
    let iss = generate_retail_iss(&lexicon, IssConfig::paper());
    let dataset = generate_customer(&iss, &lexicon, spec_a(), 42);
    println!(
        "customer schema: {} entities, {} attributes",
        dataset.source.entity_count(),
        dataset.source.attr_count()
    );

    println!("pre-training the BERT featurizer (one-time per vertical) ...");
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let mut bert = BertFeaturizer::pretrain(&lexicon, BertFeaturizerConfig::small());
    bert.pretrain_classifier(&dataset.target);

    println!("running the interactive matching session ...");
    let mut matcher = LsmMatcher::new(
        &dataset.source,
        &dataset.target,
        &embedding,
        Some(bert),
        LsmConfig::default(),
    );
    let mut oracle = RecordingOracle::new(PerfectOracle::new(dataset.ground_truth.clone()));
    let outcome = run_session(&mut matcher, &mut oracle, SessionConfig::default());

    // Render the onboarding report an operator would file.
    let report =
        render_report(&dataset.name, &outcome, oracle.events(), &dataset.source, &dataset.target);
    println!("\n{report}");
}
