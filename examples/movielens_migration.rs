//! MovieLens → IMDB migration: matching two public schemata.
//!
//! ```sh
//! cargo run --release -p lsm --example movielens_migration
//! ```
//!
//! Demonstrates the non-interactive protocol of the paper's Section V-B:
//! train on half the reference matches, evaluate top-k accuracy on the
//! rest, and print LSM's ranked suggestions next to the ground truth.

use lsm::core::evaluate_split;
use lsm::prelude::*;

fn main() {
    let dataset = lsm::datasets::public_data::movielens_imdb();
    println!(
        "MovieLens ({} attrs) → IMDB ({} attrs)",
        dataset.source.attr_count(),
        dataset.target.attr_count()
    );

    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    println!("pre-training the BERT featurizer ...");
    let mut bert = BertFeaturizer::pretrain(&lexicon, BertFeaturizerConfig::small());
    bert.pretrain_classifier(&dataset.target);

    let mut matcher = LsmMatcher::new(
        &dataset.source,
        &dataset.target,
        &embedding,
        Some(bert),
        LsmConfig::default(),
    );

    // Non-interactive split evaluation (Table IV protocol).
    let eval = evaluate_split(&mut matcher, &dataset.ground_truth, 0.5, &[1, 3, 5], 7);
    println!("\nsplit evaluation ({} train / {} test):", eval.train_size, eval.test_size);
    for (k, acc) in &eval.top_k {
        println!("  top-{k} accuracy: {acc:.2}");
    }

    // Show the full ranking with the ground truth marked.
    let labels = LabelStore::new();
    let scores = matcher.predict(&labels);
    println!("\ncold-start suggestions vs ground truth:");
    for s in dataset.source.attr_ids() {
        let truth = dataset.ground_truth.target_of(s).expect("full coverage");
        let top = scores.top_k(s, 3);
        let hit = top.iter().any(|&(t, _)| t == truth);
        println!(
            "  {} {:<22} → {:<28} (truth: {})",
            if hit { "✓" } else { "✗" },
            dataset.source.qualified_name(s),
            dataset.target.qualified_name(top[0].0),
            dataset.target.qualified_name(truth),
        );
    }
}
