#!/usr/bin/env bash
# Dynamic-sanitizer pass over the lock-free layer, complementing the
# static R11/R12 lint rules (docs/static-analysis.md "Sanitizers"):
#
#   - Miri interprets the only unsafe code in the workspace — the counting
#     #[global_allocator] shim behind lsm-obs's `alloc-track` feature —
#     plus the WAL fault-injection suite, catching UB and (experimentally)
#     weak-memory bugs the type system cannot.
#   - ThreadSanitizer builds the obs concurrency hammers with
#     `-Zsanitizer=thread` and races real threads over the histogram /
#     counter / trace paths the R11 atomics rule reasons about statically.
#   - The lsm-check model checker reruns the obs/serve model suites under
#     `--cfg lsm_model_check` with the per-test execution budget lifted
#     (LSM_CHECK_MAX_EXECUTIONS=0), exploring the full bounded state
#     space instead of the tier-1 sample. Stable toolchain; no sanitizer
#     runtime involved.
#
# Miri and TSan need a nightly toolchain:
#
#   rustup toolchain install nightly
#   rustup +nightly component add miri rust-src
#
# Usage: scripts/sanitize.sh [miri|tsan|check|all]   (default: all)
#
# Env knobs: MIRIFLAGS / TSAN_OPTIONS are respected and extended, never
# clobbered. Exit is non-zero if any requested sanitizer fails or is
# unavailable (CI treats the whole job as advisory instead).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
case "$mode" in miri | tsan | check | all) ;; *)
  echo "usage: scripts/sanitize.sh [miri|tsan|check|all]" >&2
  exit 2
  ;;
esac

need_nightly() {
  if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "sanitize: nightly toolchain not installed (rustup toolchain install nightly)" >&2
    return 1
  fi
}

run_miri() {
  need_nightly || return 1
  if ! cargo +nightly miri --version >/dev/null 2>&1; then
    echo "sanitize: miri not installed (rustup +nightly component add miri)" >&2
    return 1
  fi
  echo "==> miri: counting-allocator shim (lsm-obs, alloc-track, unsafe audit)"
  # The shim's tests install the global allocator; single-threaded keeps
  # the process-global totals deterministic under the interpreter too.
  cargo +nightly miri test -p lsm-obs --features alloc-track --test alloc_track -- --test-threads=1

  echo "==> miri: WAL fault injection (lsm-store, torn-tail recovery)"
  # The suite writes real journal files; isolation must be off for file IO.
  MIRIFLAGS="${MIRIFLAGS:-} -Zmiri-disable-isolation" \
    cargo +nightly miri test -p lsm-store --test fault_injection
}

run_tsan() {
  need_nightly || return 1
  if ! rustup +nightly component list 2>/dev/null | grep -q 'rust-src.*(installed)'; then
    echo "sanitize: rust-src not installed (rustup +nightly component add rust-src)" >&2
    return 1
  fi
  echo "==> ThreadSanitizer: obs concurrency hammers (spans/counters under 8 threads)"
  # -Zbuild-std rebuilds std with TSan so the runtime sees every atomic.
  # parking_lot's futex fast path is invisible to TSan and reports known
  # false positives; scripts/tsan-suppressions.txt quarantines those so a
  # genuine race in our code still fails the run.
  TSAN_OPTIONS="${TSAN_OPTIONS:-} suppressions=$PWD/scripts/tsan-suppressions.txt" \
    RUSTFLAGS="${RUSTFLAGS:-} -Zsanitizer=thread" \
    cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
    -p lsm-obs --test concurrent
}

run_check() {
  echo "==> model check: exhaustive exploration, execution budget lifted"
  # Tier-1 runs the same suites with the default per-test budget
  # (LSM_CHECK_MAX_EXECUTIONS=200000); here 0 means unbounded, so every
  # interleaving the preemption bound admits is visited. A failure prints
  # a schedule trace; LSM_CHECK_REPLAY=<trace> replays it exactly.
  LSM_CHECK_MAX_EXECUTIONS=0 RUSTFLAGS="${RUSTFLAGS:-} --cfg lsm_model_check" \
    cargo test -p lsm-check
  LSM_CHECK_MAX_EXECUTIONS=0 RUSTFLAGS="${RUSTFLAGS:-} --cfg lsm_model_check" \
    cargo test -p lsm-obs --test model -- --test-threads=2
  LSM_CHECK_MAX_EXECUTIONS=0 RUSTFLAGS="${RUSTFLAGS:-} --cfg lsm_model_check" \
    cargo test -p lsm-serve --test model -- --test-threads=2
}

status=0
case "$mode" in
miri) run_miri || status=1 ;;
tsan) run_tsan || status=1 ;;
check) run_check || status=1 ;;
all)
  run_miri || status=1
  run_tsan || status=1
  run_check || status=1
  ;;
esac

if [[ "$status" -eq 0 ]]; then
  echo "==> sanitize OK"
else
  echo "==> sanitize FAILED (see above)" >&2
fi
exit "$status"
