#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and lint gate on the
# crates touched by the performance work (ROADMAP.md "Tier-1 verify").
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -D warnings (lsm-nn, lsm-core, lsm-bench)"
cargo clippy -p lsm-nn -p lsm-core -p lsm-bench --all-targets -- -D warnings

echo "==> tier-1 OK"
