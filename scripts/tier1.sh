#!/usr/bin/env bash
# Tier-1 verification: format check, release build, full test suite,
# workspace clippy, the lsm-lint static-analysis gate, a kernel-parity /
# int8-drift smoke, an observability smoke test, the lsm-check
# bounded-interleaving model-check pass, a crash/resume persistence smoke
# test, and a serving-daemon protocol smoke (ROADMAP.md "Tier-1 verify").
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -D warnings (workspace)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lsm-lint (determinism / concurrency / panic-policy / unsafe-audit)"
cargo run --release -p lsm-lint

echo "==> lsm-lint baseline hygiene (no stale frozen-debt entries)"
cargo run --release -p lsm-lint -- --check-baseline

echo "==> lsm-lint SARIF artifact (results/lint.sarif)"
cargo run --release -p lsm-lint -- --format sarif --out results/lint.sarif
test -s results/lint.sarif

echo "==> kernel parity smoke: exact/fma bitwise + int8 drift envelope"
cargo run --release -p lsm-bench --bin kernel_smoke

echo "==> int8 matching-quality drift gate (quantized F1 within 0.5 of f32)"
cargo test -q --release -p lsm-core --test quant_accuracy

echo "==> observability smoke: lsm session movielens --model tiny --metrics-out"
metrics=/tmp/lsm_tier1_metrics.json
rm -f "$metrics"
cargo run --release -p lsm-cli --bin lsm -- session movielens --model tiny --metrics-out "$metrics" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap.get("schema_version") == 2, snap.get("schema_version")
respond = snap["stages"]["session.respond"]
assert respond["count"] > 0 and respond["total_s"] > 0, respond
# v2: per-stage log2 histogram consistent with the aggregate count.
assert respond["p99_s"] >= respond["p95_s"] >= respond["p50_s"], respond
hist = respond["hist"]
assert sum(n for _, n in hist["buckets"]) == respond["count"] == hist["count"], hist
assert snap["counters"]["attrs_featurized"] > 0, snap["counters"]
assert "alloc" in snap, "v2 snapshots carry an alloc section (null unless alloc-track)"
print("metrics snapshot OK:",
      f"{respond['count']} iterations, respond total {respond['total_s']:.3f}s,"
      f" p95 {respond['p95_s']*1e3:.1f}ms")
EOF
  echo "==> metrics reader: v1-compat self-test + v2 render"
  python3 scripts/summarize_results.py --self-test
  python3 scripts/summarize_results.py --metrics "$metrics" >/dev/null
else
  grep -q '"session.respond"' "$metrics"
  grep -q '"schema_version": 2' "$metrics"
  echo "metrics snapshot OK (python3 unavailable; key check only)"
fi

echo "==> alloc-track: counting-allocator tests (opt-in feature)"
cargo test -q -p lsm-obs --features alloc-track --test alloc_track -- --test-threads=1

echo "==> model check: bounded-interleaving exploration (lsm-check scheduler)"
# --cfg lsm_model_check reroutes lsm_check::sync through the cooperative
# scheduler, which explores every bounded interleaving of each model test
# (crates/check semantics suite, plus the obs/serve protocol models). The
# same model tests already ran over the real primitives in the workspace
# test step above; this is the exhaustive side. On failure the panic
# message carries the schedule trace — rerun the test with
# LSM_CHECK_REPLAY=<trace> to step the exact failing interleaving. The
# log is kept for CI to upload as an artifact.
model_log=/tmp/lsm_tier1_model_check.log
: >"$model_log"
RUSTFLAGS="${RUSTFLAGS:-} --cfg lsm_model_check" \
  cargo test -q -p lsm-check 2>&1 | tee -a "$model_log"
RUSTFLAGS="${RUSTFLAGS:-} --cfg lsm_model_check" \
  cargo test -q -p lsm-obs --test model -- --test-threads=2 2>&1 | tee -a "$model_log"
RUSTFLAGS="${RUSTFLAGS:-} --cfg lsm_model_check" \
  cargo test -q -p lsm-serve --test model -- --test-threads=2 2>&1 | tee -a "$model_log"

echo "==> perf-regression gate self-test (injected 20% slowdown must trip)"
cargo run --release -p lsm-bench --bin perf_report -- --selftest-compare

echo "==> perf_report smoke: <1% disabled-histogram guard + advisory compare"
# LSM_FAST keeps this quick; the guard failing exits non-zero even in
# advisory mode, so this doubles as the histogram disabled-overhead smoke.
LSM_FAST=1 cargo run --release -p lsm-bench --bin perf_report -- /tmp/lsm_tier1_bench.json \
  --trajectory /tmp/lsm_tier1_traj.json --compare results/BENCH_nn.json --advisory >/dev/null
test -s /tmp/lsm_tier1_traj.json

echo "==> persistence smoke: journal a session, tear its tail off, resume"
journal=/tmp/lsm_tier1_session.journal
rm -f "$journal" "$journal.ckpt"
cargo run --release -p lsm-cli --bin lsm -- session movielens --model off --journal "$journal" >/tmp/lsm_tier1_ref.out
test -s "$journal"
test -s "$journal.ckpt"
# Simulate a crash: drop the last 200 bytes (tearing the final records) and
# the checkpoint, then resume; the session must still finish 19/19.
truncate -s -200 "$journal"
rm -f "$journal.ckpt"
cargo run --release -p lsm-cli --bin lsm -- session movielens --model off --resume "$journal" >/tmp/lsm_tier1_resume.out
grep -q "matched: 19/19" /tmp/lsm_tier1_resume.out
# Modulo the wall-clock response-time line, the resumed report is identical.
if ! diff <(grep -v "^mean response time" /tmp/lsm_tier1_ref.out) \
          <(grep -v "^mean response time" /tmp/lsm_tier1_resume.out); then
  echo "resumed session output diverged from the uninterrupted run" >&2
  exit 1
fi
rm -f "$journal" "$journal.ckpt" /tmp/lsm_tier1_ref.out /tmp/lsm_tier1_resume.out
echo "persistence smoke OK: torn journal resumed to an identical report"

echo "==> serve smoke: daemon protocol drive over loopback TCP"
# Spawns the lsm-serve daemon on an ephemeral port, drives one session to
# 19/19 over the line protocol (OPEN/SUGGEST/LABEL/EXPORT/CLOSE), and
# exercises the protocol-error paths. The bin asserts internally and
# prints one OK line.
cargo run --release -p lsm-serve --bin serve_smoke | grep "serve_smoke: OK"

echo "==> tier-1 OK"
