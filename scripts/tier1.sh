#!/usr/bin/env bash
# Tier-1 verification: format check, release build, full test suite,
# workspace clippy, the lsm-lint static-analysis gate, and an observability
# smoke test (ROADMAP.md "Tier-1 verify").
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -D warnings (workspace)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lsm-lint (determinism / panic-policy / unsafe-audit)"
cargo run --release -p lsm-lint

echo "==> observability smoke: lsm session movielens --model tiny --metrics-out"
metrics=/tmp/lsm_tier1_metrics.json
rm -f "$metrics"
cargo run --release -p lsm-cli --bin lsm -- session movielens --model tiny --metrics-out "$metrics" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
respond = snap["stages"]["session.respond"]
assert respond["count"] > 0 and respond["total_s"] > 0, respond
assert snap["counters"]["attrs_featurized"] > 0, snap["counters"]
print("metrics snapshot OK:",
      f"{respond['count']} iterations, respond total {respond['total_s']:.3f}s")
EOF
else
  grep -q '"session.respond"' "$metrics"
  echo "metrics snapshot OK (python3 unavailable; key check only)"
fi

echo "==> tier-1 OK"
