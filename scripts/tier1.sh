#!/usr/bin/env bash
# Tier-1 verification: format check, release build, full test suite,
# workspace clippy, the lsm-lint static-analysis gate, a kernel-parity /
# int8-drift smoke, an observability smoke test, and a crash/resume
# persistence smoke test (ROADMAP.md "Tier-1 verify").
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -D warnings (workspace)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lsm-lint (determinism / concurrency / panic-policy / unsafe-audit)"
cargo run --release -p lsm-lint

echo "==> lsm-lint SARIF artifact (results/lint.sarif)"
cargo run --release -p lsm-lint -- --format sarif --out results/lint.sarif
test -s results/lint.sarif

echo "==> kernel parity smoke: exact/fma bitwise + int8 drift envelope"
cargo run --release -p lsm-bench --bin kernel_smoke

echo "==> int8 matching-quality drift gate (quantized F1 within 0.5 of f32)"
cargo test -q --release -p lsm-core --test quant_accuracy

echo "==> observability smoke: lsm session movielens --model tiny --metrics-out"
metrics=/tmp/lsm_tier1_metrics.json
rm -f "$metrics"
cargo run --release -p lsm-cli --bin lsm -- session movielens --model tiny --metrics-out "$metrics" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$metrics" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
respond = snap["stages"]["session.respond"]
assert respond["count"] > 0 and respond["total_s"] > 0, respond
assert snap["counters"]["attrs_featurized"] > 0, snap["counters"]
print("metrics snapshot OK:",
      f"{respond['count']} iterations, respond total {respond['total_s']:.3f}s")
EOF
else
  grep -q '"session.respond"' "$metrics"
  echo "metrics snapshot OK (python3 unavailable; key check only)"
fi

echo "==> persistence smoke: journal a session, tear its tail off, resume"
journal=/tmp/lsm_tier1_session.journal
rm -f "$journal" "$journal.ckpt"
cargo run --release -p lsm-cli --bin lsm -- session movielens --model off --journal "$journal" >/tmp/lsm_tier1_ref.out
test -s "$journal"
test -s "$journal.ckpt"
# Simulate a crash: drop the last 200 bytes (tearing the final records) and
# the checkpoint, then resume; the session must still finish 19/19.
truncate -s -200 "$journal"
rm -f "$journal.ckpt"
cargo run --release -p lsm-cli --bin lsm -- session movielens --model off --resume "$journal" >/tmp/lsm_tier1_resume.out
grep -q "matched: 19/19" /tmp/lsm_tier1_resume.out
# Modulo the wall-clock response-time line, the resumed report is identical.
if ! diff <(grep -v "^mean response time" /tmp/lsm_tier1_ref.out) \
          <(grep -v "^mean response time" /tmp/lsm_tier1_resume.out); then
  echo "resumed session output diverged from the uninterrupted run" >&2
  exit 1
fi
rm -f "$journal" "$journal.ckpt" /tmp/lsm_tier1_ref.out /tmp/lsm_tier1_resume.out
echo "persistence smoke OK: torn journal resumed to an identical report"

echo "==> tier-1 OK"
