#!/usr/bin/env bash
# Regenerates every table and figure of the paper, writing JSON artifacts to
# results/ and a combined transcript to results/experiment_log.txt.
#
# Knobs:
#   LSM_TRIALS=N      trials per experiment (default 3)
#   LSM_SEED=N        base seed (default 1)
#   LSM_FAST=1        reduced ISS smoke-test mode
#   LSM_MAX_ATTRS=N   skip customers larger than N attributes (session figs)
#   LSM_NO_CACHE=1    disable the pre-trained-featurizer disk cache
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results
{
  for bin in table1 table2 table3 table4 fig4 fig5 fig6 fig7 fig8 fig9 \
             ablation_scoring ablation_selftrain ablation_pretrain; do
    echo "=== $bin ==="
    cargo run --release -q -p lsm-bench --bin "$bin"
  done
  echo "=== ALL DONE ==="
} 2>&1 | tee results/experiment_log.txt
