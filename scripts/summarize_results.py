#!/usr/bin/env python3
"""Summarizes results/*.json into the markdown blocks EXPERIMENTS.md uses.

Usage:
  python3 scripts/summarize_results.py [results_dir]
  python3 scripts/summarize_results.py --metrics <snapshot.json>
  python3 scripts/summarize_results.py --self-test

``--metrics`` renders a ``--metrics-out`` snapshot (the v2 schema with
histograms/percentiles/alloc, or the original v1 without them) as a
markdown table. ``--self-test`` checks that reader against embedded v1
and v2 fixtures — the back-compat gate for the snapshot schema.
"""
import json
import sys
from pathlib import Path


def metrics_summary(snap: dict) -> list[str]:
    """Renders a metrics snapshot (schema v1 or v2) as markdown lines.

    v1 snapshots have no ``schema_version`` key and their stages carry
    only count/total/mean/min/max/p50/p95; v2 adds ``p99_s``, the
    ``hist`` block, per-stage alloc columns, and a top-level ``alloc``
    section. The reader requires only the v1 fields and treats
    everything newer as optional.
    """
    version = snap.get("schema_version", 1)
    lines = [f"## Metrics snapshot (schema v{version})", ""]
    lines.append("| stage | count | total_s | mean_ms | p50_ms | p95_ms | p99_ms | alloc |")
    lines.append("|---|---|---|---|---|---|---|---|")

    def ms(stage: dict, key: str) -> str:
        value = stage.get(key)  # p99_s/alloc are v2-only: absent in v1
        return f"{value * 1e3:.3f}" if value is not None else "—"

    for name, stage in sorted(snap["stages"].items()):
        alloc = stage.get("alloc_bytes")
        alloc_s = f"{alloc / 1024:.0f}KiB" if alloc else "—"
        lines.append(
            f"| {name} | {stage['count']} | {stage['total_s']:.3f} "
            f"| {ms(stage, 'mean_s')} | {ms(stage, 'p50_s')} "
            f"| {ms(stage, 'p95_s')} | {ms(stage, 'p99_s')} | {alloc_s} |"
        )
    counters = ", ".join(f"{k}={v}" for k, v in sorted(snap["counters"].items()) if v)
    lines += ["", f"counters: {counters or 'none'}"]
    alloc = snap.get("alloc")
    if alloc:
        lines.append(
            f"alloc: total {alloc['total_bytes'] / 1e6:.1f}MB in "
            f"{alloc['total_count']} allocations, peak in-use "
            f"{alloc['peak_in_use_bytes'] / 1e6:.1f}MB"
        )
    return lines


V1_FIXTURE = {
    "stages": {
        "session.respond": {
            "count": 19, "total_s": 1.9, "mean_s": 0.1, "min_s": 0.05,
            "max_s": 0.2, "p50_s": 0.09, "p95_s": 0.18,
        },
    },
    "counters": {"attrs_featurized": 42, "gemm_calls": 0},
    "dropped_trace_events": 0,
}

V2_FIXTURE = {
    "schema_version": 2,
    "stages": {
        "session.respond": {
            "count": 19, "total_s": 1.9, "mean_s": 0.1, "min_s": 0.05,
            "max_s": 0.2, "p50_s": 0.09, "p95_s": 0.18, "p99_s": 0.19,
            "alloc_bytes": 1048576, "alloc_count": 300,
            "hist": {"count": 19, "sum_ns": 1900000000, "max_ns": 200000000,
                     "buckets": [[26, 10], [27, 9]]},
        },
    },
    "counters": {"attrs_featurized": 42, "journal_fsyncs": 7},
    "alloc": {"total_bytes": 5000000, "total_count": 1200,
              "in_use_bytes": 100000, "peak_in_use_bytes": 2000000},
    "dropped_trace_events": 0,
}


def self_test() -> None:
    """v1-compat gate: the reader must handle both snapshot schemas."""
    v1 = metrics_summary(V1_FIXTURE)
    assert any("session.respond | 19 | 1.900" in line for line in v1), v1
    assert any("| 180.000 | — | —" in line for line in v1), v1  # no p99/alloc in v1
    assert any("attrs_featurized=42" in line for line in v1), v1

    v2 = metrics_summary(V2_FIXTURE)
    assert v2[0].endswith("(schema v2)"), v2
    assert any("| 190.000 | 1024KiB" in line for line in v2), v2
    assert any("journal_fsyncs=7" in line for line in v2), v2
    assert any("peak in-use 2.0MB" in line for line in v2), v2
    # A v2 snapshot read by v1-era logic: the v1 keys are all still there.
    for stage in V2_FIXTURE["stages"].values():
        for key in ("count", "total_s", "mean_s", "min_s", "max_s", "p50_s", "p95_s"):
            assert key in stage, key
    print("summarize_results --self-test: PASS (v1 and v2 snapshots both render)")


def load(results: Path, name: str):
    path = results / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def table3(results: Path) -> None:
    data = load(results, "table3")
    if not data:
        return
    names = ["CUPID", "COMA", "SM", "SF", "LSD", "MLM"]
    print("\n## Table III (measured)\n")
    print("| | " + " | ".join(names) + " |")
    print("|---" * (len(names) + 1) + "|")
    for row in data["rows"]:
        cells = " | ".join(f"{row.get(n, 0):.2f}" for n in names)
        print(f"| {row['dataset']} | {cells} |")


def table4(results: Path) -> None:
    data = load(results, "table4")
    if not data:
        return
    print(f"\n## Table IV (measured, {data['trials']} trials, median)\n")
    print("| dataset | baseline 1/3/5 | LSM 1/3/5 | best baseline |")
    print("|---|---|---|---|")
    for row in data["rows"]:
        b, l = row["baseline_top_k"], row["lsm_top_k"]
        print(
            f"| {row['dataset']} | {b['1']:.2f}/{b['3']:.2f}/{b['5']:.2f} "
            f"| {l['1']:.2f}/{l['3']:.2f}/{l['5']:.2f} | {row['best_baseline']} |"
        )


def fig4(results: Path) -> None:
    data = load(results, "fig4")
    if not data:
        return
    print(f"\n## Figure 4 (measured, {data['trials']} trials, mean)\n")
    print("| customer | k | baseline | LSM |")
    print("|---|---|---|---|")
    for row in data["rows"]:
        print(
            f"| {row['customer']} | {row['k']} | {row['baseline_mean']:.2f} "
            f"| {row['lsm_mean']:.2f} |"
        )


def session_fig(results: Path, name: str, curves: list[tuple[str, str]]) -> None:
    data = load(results, name)
    if not data:
        return
    print(f"\n## {name} (measured labeling cost, % of schema)\n")
    header = "| customer | " + " | ".join(label for _, label in curves) + " |"
    print(header)
    print("|---" * (len(curves) + 1) + "|")
    for customer, blob in data.items():
        cells = []
        for key, _ in curves:
            node = blob.get(key)
            if node is None:
                cells.append("—")
                continue
            if "curve" in node:  # nested best-baseline objects
                node = node["curve"]
            cells.append(f"{node['labeling_cost_pct']:.0f}%")
        print(f"| {customer} | " + " | ".join(cells) + " |")


def fig9(results: Path) -> None:
    data = load(results, "fig9")
    if not data:
        return
    print("\n## Figure 9 (measured mean response time)\n")
    print("| customer | attrs | mean response | setup |")
    print("|---|---|---|---|")
    for customer, blob in data.items():
        setup = blob.get("setup_time_s")
        setup_s = f"{setup:.0f}s" if setup is not None else "—"
        print(
            f"| {customer} | {blob['source_attributes']} "
            f"| {blob['mean_response_time_s']:.2f}s | {setup_s} |"
        )


def main() -> None:
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        self_test()
        return
    if len(sys.argv) > 2 and sys.argv[1] == "--metrics":
        print("\n".join(metrics_summary(json.loads(Path(sys.argv[2]).read_text()))))
        return
    results = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    table3(results)
    table4(results)
    fig4(results)
    session_fig(
        results,
        "fig5",
        [
            ("lsm_smart", "LSM smart"),
            ("lsm_random", "LSM random"),
            ("best_baseline", "best baseline"),
        ],
    )
    session_fig(results, "fig6", [("lsm", "LSM"), ("lsm_without_bert", "LSM w/o BERT")])
    session_fig(
        results,
        "fig7",
        [("lsm", "LSM"), ("lsm_without_description", "LSM w/o desc")],
    )
    session_fig(
        results,
        "fig8",
        [("0", "n=0"), ("0.1", "n=0.1"), ("0.2", "n=0.2"), ("0.3", "n=0.3")],
    )
    fig9(results)


if __name__ == "__main__":
    main()
