#!/usr/bin/env python3
"""Summarizes results/*.json into the markdown blocks EXPERIMENTS.md uses.

Usage: python3 scripts/summarize_results.py [results_dir]
"""
import json
import sys
from pathlib import Path


def load(results: Path, name: str):
    path = results / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def table3(results: Path) -> None:
    data = load(results, "table3")
    if not data:
        return
    names = ["CUPID", "COMA", "SM", "SF", "LSD", "MLM"]
    print("\n## Table III (measured)\n")
    print("| | " + " | ".join(names) + " |")
    print("|---" * (len(names) + 1) + "|")
    for row in data["rows"]:
        cells = " | ".join(f"{row.get(n, 0):.2f}" for n in names)
        print(f"| {row['dataset']} | {cells} |")


def table4(results: Path) -> None:
    data = load(results, "table4")
    if not data:
        return
    print(f"\n## Table IV (measured, {data['trials']} trials, median)\n")
    print("| dataset | baseline 1/3/5 | LSM 1/3/5 | best baseline |")
    print("|---|---|---|---|")
    for row in data["rows"]:
        b, l = row["baseline_top_k"], row["lsm_top_k"]
        print(
            f"| {row['dataset']} | {b['1']:.2f}/{b['3']:.2f}/{b['5']:.2f} "
            f"| {l['1']:.2f}/{l['3']:.2f}/{l['5']:.2f} | {row['best_baseline']} |"
        )


def fig4(results: Path) -> None:
    data = load(results, "fig4")
    if not data:
        return
    print(f"\n## Figure 4 (measured, {data['trials']} trials, mean)\n")
    print("| customer | k | baseline | LSM |")
    print("|---|---|---|---|")
    for row in data["rows"]:
        print(
            f"| {row['customer']} | {row['k']} | {row['baseline_mean']:.2f} "
            f"| {row['lsm_mean']:.2f} |"
        )


def session_fig(results: Path, name: str, curves: list[tuple[str, str]]) -> None:
    data = load(results, name)
    if not data:
        return
    print(f"\n## {name} (measured labeling cost, % of schema)\n")
    header = "| customer | " + " | ".join(label for _, label in curves) + " |"
    print(header)
    print("|---" * (len(curves) + 1) + "|")
    for customer, blob in data.items():
        cells = []
        for key, _ in curves:
            node = blob.get(key)
            if node is None:
                cells.append("—")
                continue
            if "curve" in node:  # nested best-baseline objects
                node = node["curve"]
            cells.append(f"{node['labeling_cost_pct']:.0f}%")
        print(f"| {customer} | " + " | ".join(cells) + " |")


def fig9(results: Path) -> None:
    data = load(results, "fig9")
    if not data:
        return
    print("\n## Figure 9 (measured mean response time)\n")
    print("| customer | attrs | mean response | setup |")
    print("|---|---|---|---|")
    for customer, blob in data.items():
        setup = blob.get("setup_time_s")
        setup_s = f"{setup:.0f}s" if setup is not None else "—"
        print(
            f"| {customer} | {blob['source_attributes']} "
            f"| {blob['mean_response_time_s']:.2f}s | {setup_s} |"
        )


def main() -> None:
    results = Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    table3(results)
    table4(results)
    fig4(results)
    session_fig(
        results,
        "fig5",
        [
            ("lsm_smart", "LSM smart"),
            ("lsm_random", "LSM random"),
            ("best_baseline", "best baseline"),
        ],
    )
    session_fig(results, "fig6", [("lsm", "LSM"), ("lsm_without_bert", "LSM w/o BERT")])
    session_fig(
        results,
        "fig7",
        [("lsm", "LSM"), ("lsm_without_description", "LSM w/o desc")],
    )
    session_fig(
        results,
        "fig8",
        [("0", "n=0"), ("0.1", "n=0.1"), ("0.2", "n=0.2"), ("0.3", "n=0.3")],
    )
    fig9(results)


if __name__ == "__main__":
    main()
