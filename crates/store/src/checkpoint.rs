//! Checkpoint files: one atomically-written full session snapshot.
//!
//! A checkpoint is derivable data (the journal can always rebuild it), so
//! reading is maximally tolerant: a missing, torn, or corrupt checkpoint
//! is simply `None` and recovery falls back to the journal. Only a format
//! version skew is a hard error — silently ignoring a newer checkpoint
//! would discard state a newer build persisted on purpose.
//!
//! Atomicity: the snapshot is written to a sibling `*.tmp` file, synced,
//! then `rename`d over the target (POSIX rename is atomic), and the parent
//! directory is synced so the rename itself survives power loss. A crash
//! at any point leaves either the old checkpoint or the new one — never a
//! half-written file under the checkpoint's name.

use crate::codec::{decode_payload, encode_payload, Payload};
use crate::frame::{
    check_header, encode_header, encode_record, scan_records, HeaderIssue, CHECKPOINT_MAGIC,
    FORMAT_VERSION, HEADER_LEN,
};
use crate::StoreError;
use lsm_core::{SessionConfig, SessionState};
use std::fs::File;
use std::io::Write;
use std::path::Path;

#[cfg(unix)]
fn sync_parent(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

#[cfg(not(unix))]
fn sync_parent(_path: &Path) -> std::io::Result<()> {
    // Directory handles cannot be fsynced portably; rename-over is still
    // the best available guarantee.
    Ok(())
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces the checkpoint at `path` with a snapshot of
/// `config` + `state`.
pub fn write_checkpoint(
    path: &Path,
    config: &SessionConfig,
    state: &SessionState,
) -> Result<(), StoreError> {
    let payload = encode_payload(&Payload::Snapshot { config: *config, state: state.clone() });
    let tmp = tmp_path(path);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&encode_header(CHECKPOINT_MAGIC))?;
        file.write_all(&encode_record(&payload))?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent(path)?;
    Ok(())
}

/// Reads a checkpoint. `Ok(None)` when it is missing or damaged in any way
/// (recovery falls back to the journal); `Err` only on I/O failure or
/// format version skew.
pub fn read_checkpoint(path: &Path) -> Result<Option<(SessionConfig, SessionState)>, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    match check_header(&bytes, CHECKPOINT_MAGIC) {
        Ok(()) => {}
        Err(HeaderIssue::VersionSkew(found)) => {
            return Err(StoreError::VersionSkew { found, supported: FORMAT_VERSION });
        }
        Err(HeaderIssue::Torn | HeaderIssue::BadMagic) => return Ok(None),
    }
    let scan = scan_records(&bytes, HEADER_LEN);
    let Some((_, payload_bytes)) = scan.records.first() else {
        return Ok(None); // torn or checksum-failing snapshot record
    };
    match decode_payload(payload_bytes) {
        Ok(Payload::Snapshot { config, state }) => Ok(Some((config, state))),
        // Wrong payload kind or undecodable bytes: a damaged checkpoint.
        Ok(Payload::Event(_)) | Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_dir;
    use lsm_core::SessionEvent;
    use lsm_schema::AttrId;

    fn sample_state() -> SessionState {
        let mut state = SessionState::new();
        state.apply(&SessionEvent::SessionStart {
            total_attributes: 7,
            config: SessionConfig::default(),
        });
        state.apply(&SessionEvent::DirectLabel {
            iteration: 0,
            source: AttrId(2),
            target: AttrId(5),
            strategy: lsm_core::SelectionStrategy::LeastConfidentAnchor,
        });
        state.apply(&SessionEvent::IterationEnd { iteration: 0 });
        state
    }

    #[test]
    fn roundtrip() {
        let dir = test_dir("ckpt-roundtrip");
        let path = dir.join("s.ckpt");
        let config = SessionConfig { seed: 42, ..Default::default() };
        let state = sample_state();
        write_checkpoint(&path, &config, &state).unwrap();
        let (back_config, back_state) = read_checkpoint(&path).unwrap().expect("present");
        assert_eq!(back_config, config);
        assert_eq!(back_state, state);
        assert!(!tmp_path(&path).exists(), "tmp file must not survive");
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = test_dir("ckpt-rewrite");
        let path = dir.join("s.ckpt");
        let mut state = sample_state();
        write_checkpoint(&path, &SessionConfig::default(), &state).unwrap();
        state.apply(&SessionEvent::IterationEnd { iteration: 1 });
        write_checkpoint(&path, &SessionConfig::default(), &state).unwrap();
        let (_, back) = read_checkpoint(&path).unwrap().expect("present");
        assert_eq!(back.iterations_done, 2);
    }

    #[test]
    fn missing_and_damaged_are_none() {
        let dir = test_dir("ckpt-damaged");
        let path = dir.join("s.ckpt");
        assert_eq!(read_checkpoint(&path).unwrap(), None, "missing");

        std::fs::write(&path, b"LS").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), None, "torn header");

        std::fs::write(&path, b"NOPE0000").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), None, "bad magic");

        // A real checkpoint with one payload byte flipped (CRC catches it).
        write_checkpoint(&path, &SessionConfig::default(), &sample_state()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), None, "bit flip");

        // Truncated mid-record.
        write_checkpoint(&path, &SessionConfig::default(), &sample_state()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), None, "torn record");
    }

    #[test]
    fn version_skew_is_a_hard_error() {
        let dir = test_dir("ckpt-skew");
        let path = dir.join("s.ckpt");
        write_checkpoint(&path, &SessionConfig::default(), &sample_state()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 3;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(StoreError::VersionSkew { found: 3, supported: FORMAT_VERSION })
        ));
    }

    #[test]
    fn stale_tmp_file_is_overwritten() {
        let dir = test_dir("ckpt-stale-tmp");
        let path = dir.join("s.ckpt");
        // A crash mid-write leaves a tmp file behind; the next write must
        // simply replace it.
        std::fs::write(tmp_path(&path), b"half-written garbage").unwrap();
        write_checkpoint(&path, &SessionConfig::default(), &sample_state()).unwrap();
        assert!(read_checkpoint(&path).unwrap().is_some());
        assert!(!tmp_path(&path).exists());
    }
}
