//! [`JournalSink`]: the [`SessionSink`] implementation that plugs the
//! write-ahead journal and checkpointing into `run_session_with_sink` /
//! `resume_session`.
//!
//! The sink keeps a *replica* [`SessionState`] by applying every event it
//! journals — the same `apply` the live loop uses — so checkpoints are
//! always snapshots of exactly what the journal would replay to.

use crate::checkpoint::write_checkpoint;
use crate::codec::Payload;
use crate::journal::{JournalWriter, SyncPolicy};
use crate::recover::{recover, Recovered};
use crate::StoreError;
use lsm_core::{SessionConfig, SessionEvent, SessionSink, SessionState, SinkError};
use std::path::{Path, PathBuf};

/// Tuning knobs for [`JournalSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalOptions {
    /// Write a checkpoint every this many committed iterations (`0`
    /// disables checkpointing).
    pub checkpoint_every: usize,
    /// When the journal file is fsynced.
    pub sync: SyncPolicy,
}

impl Default for JournalOptions {
    fn default() -> Self {
        JournalOptions { checkpoint_every: 8, sync: SyncPolicy::EveryIteration }
    }
}

/// A [`SessionSink`] that journals every event and periodically
/// checkpoints.
#[derive(Debug)]
pub struct JournalSink {
    writer: JournalWriter,
    checkpoint_path: Option<PathBuf>,
    opts: JournalOptions,
    config: Option<SessionConfig>,
    replica: SessionState,
    iterations_since_checkpoint: usize,
}

fn to_sink(e: StoreError) -> SinkError {
    SinkError(e.to_string())
}

impl JournalSink {
    /// Starts a fresh journal (truncating any existing file at `journal`).
    pub fn create(
        journal: &Path,
        checkpoint: Option<&Path>,
        opts: JournalOptions,
    ) -> Result<Self, StoreError> {
        Ok(JournalSink {
            writer: JournalWriter::create(journal)?,
            checkpoint_path: checkpoint.map(Path::to_path_buf),
            opts,
            config: None,
            replica: SessionState::new(),
            iterations_since_checkpoint: 0,
        })
    }

    /// Recovers an interrupted session and reopens its journal for
    /// appending. The damaged/uncommitted tail is physically truncated;
    /// when the checkpoint was ahead of the journal a rebase snapshot is
    /// appended first so the journal alone stays replayable.
    ///
    /// Pass [`Recovered::state`]'s clone (i.e. [`JournalSink::state`]) to
    /// [`resume_session`](lsm_core::resume_session) together with this
    /// sink.
    pub fn resume(
        journal: &Path,
        checkpoint: Option<&Path>,
        opts: JournalOptions,
    ) -> Result<(Self, Recovered), StoreError> {
        let recovered = recover(journal, checkpoint)?;
        let mut writer = JournalWriter::open_at(journal, recovered.resume_offset)?;
        if recovered.needs_rebase {
            if let Some(config) = recovered.config {
                writer.append(&Payload::Snapshot { config, state: recovered.state.clone() })?;
                writer.sync()?;
            }
        }
        let sink = JournalSink {
            writer,
            checkpoint_path: checkpoint.map(Path::to_path_buf),
            opts,
            config: recovered.config,
            replica: recovered.state.clone(),
            iterations_since_checkpoint: 0,
        };
        Ok((sink, recovered))
    }

    /// The replica state (recovered + everything journaled since).
    pub fn state(&self) -> &SessionState {
        &self.replica
    }

    /// The session configuration, once known.
    pub fn config(&self) -> Option<SessionConfig> {
        self.config
    }

    /// Final flush (and checkpoint, if configured) at the end of a run.
    pub fn finish(&mut self) -> Result<(), StoreError> {
        self.writer.sync()?;
        if self.opts.checkpoint_every > 0 {
            self.write_checkpoint_now()?;
        }
        Ok(())
    }

    fn write_checkpoint_now(&mut self) -> Result<(), StoreError> {
        let (Some(path), Some(config)) = (self.checkpoint_path.as_deref(), self.config) else {
            return Ok(());
        };
        let _span = lsm_obs::span("checkpoint.write");
        write_checkpoint(path, &config, &self.replica)?;
        lsm_obs::add(lsm_obs::Counter::CheckpointWrites, 1);
        self.iterations_since_checkpoint = 0;
        Ok(())
    }
}

impl SessionSink for JournalSink {
    fn on_event(&mut self, event: &SessionEvent) -> Result<(), SinkError> {
        let _span = lsm_obs::span("journal.append");
        if let SessionEvent::SessionStart { config, .. } = event {
            self.config = Some(*config);
        }
        self.replica.apply(event);
        self.writer.append(&Payload::Event(event.clone())).map_err(to_sink)?;
        lsm_obs::add(lsm_obs::Counter::JournalAppends, 1);
        if self.opts.sync == SyncPolicy::EveryAppend {
            self.writer.sync().map_err(to_sink)?;
        }
        if matches!(event, SessionEvent::IterationEnd { .. }) {
            if self.opts.sync == SyncPolicy::EveryIteration {
                self.writer.sync().map_err(to_sink)?;
            }
            self.iterations_since_checkpoint += 1;
            if self.opts.checkpoint_every > 0
                && self.iterations_since_checkpoint >= self.opts.checkpoint_every
            {
                self.write_checkpoint_now().map_err(to_sink)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::read_checkpoint;
    use crate::testutil::test_dir;
    use lsm_core::{run_session_with_sink, PerfectOracle, PinnedBaselineEngine, SessionConfig};
    use lsm_schema::{AttrId, DataType, GroundTruth, Schema, ScoreMatrix};

    fn source() -> Schema {
        Schema::builder("s")
            .entity("A")
            .attr("a_id", DataType::Integer)
            .attr("x", DataType::Text)
            .attr("y", DataType::Text)
            .attr("z", DataType::Text)
            .pk("a_id")
            .build()
            .unwrap()
    }

    fn truth() -> GroundTruth {
        GroundTruth::from_pairs([
            (AttrId(0), AttrId(0)),
            (AttrId(1), AttrId(1)),
            (AttrId(2), AttrId(2)),
            (AttrId(3), AttrId(3)),
        ])
    }

    /// An all-wrong static ranking: every attribute needs a direct label,
    /// giving the session several iterations to journal.
    fn distractor_scores() -> ScoreMatrix {
        let mut m = ScoreMatrix::zeros(4, 8);
        for s in 0..4u32 {
            for t in 4..8u32 {
                m.set(AttrId(s), AttrId(t), 0.5 + f64::from(t) / 100.0);
            }
        }
        m
    }

    #[test]
    fn journaled_run_is_fully_recoverable() {
        let dir = test_dir("sink-full-run");
        let journal = dir.join("s.journal");
        let ckpt = dir.join("s.ckpt");
        let mut sink = JournalSink::create(
            &journal,
            Some(&ckpt),
            JournalOptions { checkpoint_every: 1, ..Default::default() },
        )
        .unwrap();
        let mut engine = PinnedBaselineEngine::new(source(), distractor_scores());
        let mut oracle = PerfectOracle::new(truth());
        let outcome =
            run_session_with_sink(&mut engine, &mut oracle, SessionConfig::default(), &mut sink)
                .unwrap();
        sink.finish().unwrap();
        assert_eq!(outcome.labels_used, 4);

        // The journal alone replays to the exact outcome — response-time
        // f64s included, because they travel as raw bits.
        let r = recover(&journal, None).unwrap();
        assert_eq!(r.state.outcome, outcome);
        assert!(r.state.is_complete());
        // The checkpoint holds the same state.
        let (_, ck_state) = read_checkpoint(&ckpt).unwrap().expect("checkpoint written");
        assert_eq!(ck_state.outcome, outcome);
    }

    #[test]
    fn resume_continues_the_same_journal_file() {
        let dir = test_dir("sink-resume");
        let journal = dir.join("s.journal");
        // Run to completion once to get a reference journal.
        let mut sink = JournalSink::create(&journal, None, JournalOptions::default()).unwrap();
        let mut engine = PinnedBaselineEngine::new(source(), distractor_scores());
        let mut oracle = PerfectOracle::new(truth());
        let outcome =
            run_session_with_sink(&mut engine, &mut oracle, SessionConfig::default(), &mut sink)
                .unwrap();
        sink.finish().unwrap();

        // Chop the journal mid-file and resume: the finished file must
        // replay to a complete session again.
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() * 2 / 3]).unwrap();
        let (mut sink, recovered) =
            JournalSink::resume(&journal, None, JournalOptions::default()).unwrap();
        assert!(recovered.truncated_bytes > 0);
        assert!(!recovered.state.is_complete());
        let config = recovered.config.expect("journal had SessionStart");
        let mut engine = PinnedBaselineEngine::new(source(), distractor_scores());
        let mut oracle = PerfectOracle::new(truth());
        let resumed =
            lsm_core::resume_session(&mut engine, &mut oracle, config, recovered.state, &mut sink)
                .unwrap();
        sink.finish().unwrap();
        // Deterministic everything except wall-clock response times.
        assert_eq!(resumed.curve, outcome.curve);
        assert_eq!(resumed.labels_used, outcome.labels_used);
        assert_eq!(resumed.reviews_done, outcome.reviews_done);
        assert_eq!(resumed.response_times.len(), outcome.response_times.len());
        // And the patched journal file replays to the resumed outcome.
        let r = recover(&journal, None).unwrap();
        assert_eq!(r.state.outcome, resumed);
    }

    #[test]
    fn rebase_snapshot_keeps_a_behind_journal_replayable() {
        let dir = test_dir("sink-rebase");
        let journal = dir.join("s.journal");
        let ckpt = dir.join("s.ckpt");
        let opts = JournalOptions { checkpoint_every: 1, ..Default::default() };
        let mut sink = JournalSink::create(&journal, Some(&ckpt), opts).unwrap();
        let mut engine = PinnedBaselineEngine::new(source(), distractor_scores());
        let mut oracle = PerfectOracle::new(truth());
        run_session_with_sink(&mut engine, &mut oracle, SessionConfig::default(), &mut sink)
            .unwrap();
        sink.finish().unwrap();

        // Lose the journal entirely; only the checkpoint survives.
        std::fs::write(&journal, b"LS").unwrap();
        let (mut sink, recovered) = JournalSink::resume(&journal, Some(&ckpt), opts).unwrap();
        assert!(recovered.from_checkpoint && recovered.needs_rebase);
        assert!(recovered.state.is_complete());
        let config = recovered.config.unwrap();
        let mut engine = PinnedBaselineEngine::new(source(), distractor_scores());
        let mut oracle = PerfectOracle::new(truth());
        let resumed = lsm_core::resume_session(
            &mut engine,
            &mut oracle,
            config,
            recovered.state.clone(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(resumed, recovered.state.outcome, "complete session resumes as a no-op");
        // The rewritten journal starts with the rebase snapshot and
        // replays to the full state on its own.
        let r = recover(&journal, None).unwrap();
        assert_eq!(r.state.outcome, resumed);
    }
}
