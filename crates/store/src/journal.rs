//! The write-ahead journal file: append, sync, and raw reading.
//!
//! A journal is `header record*` (see [`frame`](crate::frame)); each record
//! payload is one [`Payload`] (see [`codec`](crate::codec)). Appends are a
//! single `write` of the fully assembled record, so a crash can only tear
//! the *tail* — never interleave two records.

use crate::codec::{decode_payload, encode_payload, Payload};
use crate::frame::{
    check_header, encode_header, encode_record, scan_records, HeaderIssue, FORMAT_VERSION,
    HEADER_LEN, JOURNAL_MAGIC,
};
use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// When the journal file is `fsync`ed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Sync at every `IterationEnd` — the durability unit. An OS crash
    /// loses at most the current (uncommitted) iteration, which recovery
    /// discards anyway.
    #[default]
    EveryIteration,
    /// Sync after every single append. Safest, slowest.
    EveryAppend,
    /// Never sync explicitly (tests / throwaway runs). Process crashes are
    /// still safe (the OS keeps the page cache); only power loss can bite.
    Never,
}

/// Appends records to a journal file.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates (or truncates) a journal: writes and syncs the header.
    pub fn create(path: &Path) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        file.write_all(&encode_header(JOURNAL_MAGIC))?;
        file.sync_all()?;
        Ok(JournalWriter { file, path: path.to_path_buf() })
    }

    /// Opens an existing journal for appending after truncating it to
    /// `offset` — the valid boundary computed by recovery. Any torn or
    /// post-boundary bytes are physically discarded, so the file on disk is
    /// always a clean prefix. An `offset` inside the header (including 0)
    /// rewrites a fresh header.
    pub fn open_at(path: &Path, offset: u64) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if offset < HEADER_LEN {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&encode_header(JOURNAL_MAGIC))?;
        } else {
            file.set_len(offset)?;
            file.seek(SeekFrom::Start(offset))?;
        }
        file.sync_all()?;
        Ok(JournalWriter { file, path: path.to_path_buf() })
    }

    /// Appends one payload as a framed record (a single `write` call).
    pub fn append(&mut self, payload: &Payload) -> Result<(), StoreError> {
        let record = encode_record(&encode_payload(payload));
        self.file.write_all(&record)?;
        Ok(())
    }

    /// Flushes appended records to stable storage. The fsync is the WAL's
    /// tail-latency bottleneck, so it gets its own span (histogram) and
    /// counter.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let _span = lsm_obs::span("journal.fsync");
        self.file.sync_data()?;
        lsm_obs::add(lsm_obs::Counter::JournalFsyncs, 1);
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Everything readable from a journal file, tolerating a damaged tail.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalContents {
    /// `(end_offset, payload)` per intact, decodable record in file order.
    pub records: Vec<(u64, Payload)>,
    /// Offset where frame- and codec-level validity ends: end of the last
    /// good record, [`HEADER_LEN`] for an intact-but-empty journal, `0`
    /// when even the header is torn.
    pub valid_len: u64,
    /// Offset and description of the first damaged record, if any.
    pub damage: Option<(u64, String)>,
}

/// Reads a journal file. Tail damage (torn/bit-flipped records, a torn
/// header) is *reported*, not an error; only a wrong magic or a format
/// version skew fails hard.
pub fn read_journal(path: &Path) -> Result<JournalContents, StoreError> {
    let bytes = std::fs::read(path)?;
    match check_header(&bytes, JOURNAL_MAGIC) {
        Ok(()) => {}
        Err(HeaderIssue::Torn) => {
            // A crash before the header sync: an empty journal.
            return Ok(JournalContents {
                records: Vec::new(),
                valid_len: 0,
                damage: Some((0, format!("torn header ({} bytes)", bytes.len()))),
            });
        }
        Err(HeaderIssue::BadMagic) => {
            return Err(StoreError::Corrupt {
                offset: 0,
                reason: "bad magic: not a journal file".into(),
            });
        }
        Err(HeaderIssue::VersionSkew(found)) => {
            return Err(StoreError::VersionSkew { found, supported: FORMAT_VERSION });
        }
    }
    let scan = scan_records(&bytes, HEADER_LEN);
    let mut records = Vec::with_capacity(scan.records.len());
    let mut valid_len = HEADER_LEN;
    let mut damage = scan.damage;
    for (end, payload_bytes) in scan.records {
        match decode_payload(&payload_bytes) {
            Ok(p) => {
                records.push((end, p));
                valid_len = end;
            }
            Err(e) => {
                // CRC-valid but undecodable: damage from here on.
                damage = Some((valid_len, e.to_string()));
                break;
            }
        }
    }
    Ok(JournalContents { records, valid_len, damage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_dir;
    use lsm_core::SessionEvent;

    fn ev(iteration: usize) -> Payload {
        Payload::Event(SessionEvent::IterationEnd { iteration })
    }

    #[test]
    fn create_append_read_roundtrip() {
        let dir = test_dir("journal-roundtrip");
        let path = dir.join("s.journal");
        let mut w = JournalWriter::create(&path).unwrap();
        for i in 0..3 {
            w.append(&ev(i)).unwrap();
        }
        w.sync().unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.damage, None);
        assert_eq!(contents.records.len(), 3);
        assert_eq!(contents.records[2].1, ev(2));
        assert_eq!(contents.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn open_at_truncates_and_continues() {
        let dir = test_dir("journal-open-at");
        let path = dir.join("s.journal");
        let mut w = JournalWriter::create(&path).unwrap();
        for i in 0..3 {
            w.append(&ev(i)).unwrap();
        }
        w.sync().unwrap();
        let boundary = read_journal(&path).unwrap().records[1].0;
        drop(w);
        let mut w = JournalWriter::open_at(&path, boundary).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), boundary);
        w.append(&ev(9)).unwrap();
        w.sync().unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(
            contents.records.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(),
            vec![ev(0), ev(1), ev(9)]
        );
    }

    #[test]
    fn open_at_zero_rewrites_header() {
        let dir = test_dir("journal-open-zero");
        let path = dir.join("s.journal");
        std::fs::write(&path, b"LS").unwrap(); // torn header
        let mut w = JournalWriter::open_at(&path, 0).unwrap();
        w.append(&ev(0)).unwrap();
        w.sync().unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.damage, None);
        assert_eq!(contents.records.len(), 1);
    }

    #[test]
    fn torn_header_is_tolerated_as_empty() {
        let dir = test_dir("journal-torn-header");
        let path = dir.join("s.journal");
        std::fs::write(&path, b"LSM").unwrap();
        let contents = read_journal(&path).unwrap();
        assert!(contents.records.is_empty());
        assert_eq!(contents.valid_len, 0);
        assert!(contents.damage.is_some());
    }

    #[test]
    fn wrong_magic_and_version_skew_fail_hard() {
        let dir = test_dir("journal-bad-header");
        let path = dir.join("s.journal");
        std::fs::write(&path, b"GARBAGE!").unwrap();
        assert!(matches!(read_journal(&path), Err(StoreError::Corrupt { offset: 0, .. })));
        let mut skewed = encode_header(JOURNAL_MAGIC).to_vec();
        skewed[4] = 9;
        std::fs::write(&path, &skewed).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(StoreError::VersionSkew { found: 9, supported: FORMAT_VERSION })
        ));
    }

    #[test]
    fn undecodable_record_is_reported_as_damage() {
        let dir = test_dir("journal-undecodable");
        let path = dir.join("s.journal");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&ev(0)).unwrap();
        w.sync().unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();
        // Append a frame-valid record whose payload has an unknown kind.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_record(&[0x77]));
        std::fs::write(&path, &bytes).unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.valid_len, good_len);
        let (off, reason) = contents.damage.unwrap();
        assert_eq!(off, good_len);
        assert!(reason.contains("unknown record kind"), "{reason}");
    }
}
