//! The record payload codec: [`SessionEvent`]s and full session snapshots
//! as fixed little-endian bytes.
//!
//! Hand-rolled on purpose: the journal format is versioned
//! ([`FORMAT_VERSION`](crate::frame::FORMAT_VERSION)), so its byte layout
//! must be under this crate's explicit control rather than implied by a
//! serde implementation that could shift with a dependency upgrade. Every
//! integer is little-endian; `usize` travels as `u64`; `f64` travels as its
//! IEEE-754 bit pattern (`to_bits`), which is what makes resumed response
//! times *bitwise* identical to the journaled ones.
//!
//! ```text
//! payload  := 0x01 event | 0x02 snapshot          (record kinds)
//! event    := tag[u8] body                        (tags 0..=6, one per
//!                                                  SessionEvent variant)
//! snapshot := config state                        (Rebase + checkpoints)
//! ```
//!
//! Decoding is strict: unknown tags, short buffers, and trailing bytes are
//! all errors — a CRC-valid record that fails to decode marks real
//! corruption (or version skew inside v1), not something to guess around.

use lsm_core::{
    CurvePoint, LabelStore, ReviewOutcome, SelectionStrategy, SessionConfig, SessionEvent,
    SessionOutcome, SessionState,
};
use lsm_schema::AttrId;

/// A payload decoded from one journal/checkpoint record.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// One session event (record kind `0x01`).
    Event(SessionEvent),
    /// A full snapshot rebasing subsequent replay (record kind `0x02`):
    /// written when a session resumes from a checkpoint that is ahead of
    /// its (truncated) journal, and as the body of every checkpoint file.
    Snapshot {
        /// The session parameters.
        config: SessionConfig,
        /// The complete replayable state.
        state: SessionState,
    },
}

/// A decoding failure: position within the payload plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte position inside the payload.
    pub at: usize,
    /// What was expected/found.
    pub reason: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "undecodable payload at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for CodecError {}

const KIND_EVENT: u8 = 0x01;
const KIND_SNAPSHOT: u8 = 0x02;

const TAG_SESSION_START: u8 = 0;
const TAG_RESPOND: u8 = 1;
const TAG_REVIEW: u8 = 2;
const TAG_CURVE: u8 = 3;
const TAG_DIRECT_LABEL: u8 = 4;
const TAG_STALLED: u8 = 5;
const TAG_ITERATION_END: u8 = 6;

// ---- writing ----------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_attr(out: &mut Vec<u8>, a: AttrId) {
    put_u32(out, a.0);
}

fn strategy_code(s: SelectionStrategy) -> u8 {
    match s {
        SelectionStrategy::LeastConfidentAnchor => 0,
        SelectionStrategy::Random => 1,
    }
}

fn put_config(out: &mut Vec<u8>, c: &SessionConfig) {
    put_usize(out, c.top_k);
    put_usize(out, c.labels_per_iter);
    put_u8(out, strategy_code(c.strategy));
    put_usize(out, c.max_iterations);
    put_u64(out, c.seed);
}

fn put_point(out: &mut Vec<u8>, p: &CurvePoint) {
    put_usize(out, p.labels_provided);
    put_usize(out, p.matched);
    put_usize(out, p.matched_correct);
    put_usize(out, p.total);
}

fn put_event(out: &mut Vec<u8>, e: &SessionEvent) {
    match e {
        SessionEvent::SessionStart { total_attributes, config } => {
            put_u8(out, TAG_SESSION_START);
            put_usize(out, *total_attributes);
            put_config(out, config);
        }
        SessionEvent::Respond { iteration, secs } => {
            put_u8(out, TAG_RESPOND);
            put_usize(out, *iteration);
            put_f64(out, *secs);
        }
        SessionEvent::Review { iteration, source, outcome } => {
            put_u8(out, TAG_REVIEW);
            put_usize(out, *iteration);
            put_attr(out, *source);
            match outcome {
                ReviewOutcome::Confirmed(t) => {
                    put_u8(out, 0);
                    put_attr(out, *t);
                }
                ReviewOutcome::RejectedAll(ts) => {
                    put_u8(out, 1);
                    put_usize(out, ts.len());
                    for t in ts {
                        put_attr(out, *t);
                    }
                }
            }
        }
        SessionEvent::Curve { iteration, point } => {
            put_u8(out, TAG_CURVE);
            put_usize(out, *iteration);
            put_point(out, point);
        }
        SessionEvent::DirectLabel { iteration, source, target, strategy } => {
            put_u8(out, TAG_DIRECT_LABEL);
            put_usize(out, *iteration);
            put_attr(out, *source);
            put_attr(out, *target);
            put_u8(out, strategy_code(*strategy));
        }
        SessionEvent::Stalled { iteration } => {
            put_u8(out, TAG_STALLED);
            put_usize(out, *iteration);
        }
        SessionEvent::IterationEnd { iteration } => {
            put_u8(out, TAG_ITERATION_END);
            put_usize(out, *iteration);
        }
    }
}

fn put_snapshot(out: &mut Vec<u8>, config: &SessionConfig, state: &SessionState) {
    put_config(out, config);
    // Labels: positives first, then explicit negatives — the same order
    // decoding replays them in (confirm clears a row's negatives, so the
    // reverse order would lose labels).
    let positives: Vec<_> = state.labels.positives().collect();
    put_usize(out, positives.len());
    for (s, t) in positives {
        put_attr(out, s);
        put_attr(out, t);
    }
    let negatives: Vec<_> = state.labels.negatives().collect();
    put_usize(out, negatives.len());
    for (s, t) in negatives {
        put_attr(out, s);
        put_attr(out, t);
    }
    // Outcome.
    put_usize(out, state.outcome.curve.len());
    for p in &state.outcome.curve {
        put_point(out, p);
    }
    put_usize(out, state.outcome.labels_used);
    put_usize(out, state.outcome.reviews_done);
    put_usize(out, state.outcome.response_times.len());
    for &t in &state.outcome.response_times {
        put_f64(out, t);
    }
    put_usize(out, state.outcome.total_attributes);
    // Loop position.
    put_usize(out, state.iterations_done);
    put_u8(out, state.started as u8);
    put_u8(out, state.stalled as u8);
}

/// Encodes one record payload.
pub fn encode_payload(p: &Payload) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match p {
        Payload::Event(e) => {
            put_u8(&mut out, KIND_EVENT);
            put_event(&mut out, e);
        }
        Payload::Snapshot { config, state } => {
            put_u8(&mut out, KIND_SNAPSHOT);
            put_snapshot(&mut out, config, state);
        }
    }
    out
}

// ---- reading ----------------------------------------------------------

struct Buf<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Buf<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Buf { bytes, pos: 0 }
    }

    fn err<T>(&self, reason: impl Into<String>) -> Result<T, CodecError> {
        Err(CodecError { at: self.pos, reason: reason.into() })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.bytes.len() - self.pos < n {
            return self.err(format!("need {n} more bytes, have {}", self.bytes.len() - self.pos));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        match usize::try_from(v) {
            Ok(v) => Ok(v),
            Err(_) => self.err(format!("u64 {v} does not fit usize")),
        }
    }

    /// A `usize` that will be used to size an allocation: also bounded by
    /// the remaining payload so a corrupt count cannot balloon memory.
    fn count(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let n = self.usize()?;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(elem_size) > remaining {
            return self.err(format!("count {n} exceeds remaining {remaining} bytes"));
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn attr(&mut self) -> Result<AttrId, CodecError> {
        Ok(AttrId(self.u32()?))
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => self.err(format!("invalid bool byte {v:#04x}")),
        }
    }

    fn strategy(&mut self) -> Result<SelectionStrategy, CodecError> {
        match self.u8()? {
            0 => Ok(SelectionStrategy::LeastConfidentAnchor),
            1 => Ok(SelectionStrategy::Random),
            v => self.err(format!("unknown strategy code {v:#04x}")),
        }
    }

    fn config(&mut self) -> Result<SessionConfig, CodecError> {
        Ok(SessionConfig {
            top_k: self.usize()?,
            labels_per_iter: self.usize()?,
            strategy: self.strategy()?,
            max_iterations: self.usize()?,
            seed: self.u64()?,
        })
    }

    fn point(&mut self) -> Result<CurvePoint, CodecError> {
        Ok(CurvePoint {
            labels_provided: self.usize()?,
            matched: self.usize()?,
            matched_correct: self.usize()?,
            total: self.usize()?,
        })
    }

    fn event(&mut self) -> Result<SessionEvent, CodecError> {
        let tag = self.u8()?;
        match tag {
            TAG_SESSION_START => Ok(SessionEvent::SessionStart {
                total_attributes: self.usize()?,
                config: self.config()?,
            }),
            TAG_RESPOND => {
                Ok(SessionEvent::Respond { iteration: self.usize()?, secs: self.f64()? })
            }
            TAG_REVIEW => {
                let iteration = self.usize()?;
                let source = self.attr()?;
                let outcome = match self.u8()? {
                    0 => ReviewOutcome::Confirmed(self.attr()?),
                    1 => {
                        let n = self.count(4)?;
                        let mut ts = Vec::with_capacity(n);
                        for _ in 0..n {
                            ts.push(self.attr()?);
                        }
                        ReviewOutcome::RejectedAll(ts)
                    }
                    v => return self.err(format!("unknown review outcome {v:#04x}")),
                };
                Ok(SessionEvent::Review { iteration, source, outcome })
            }
            TAG_CURVE => Ok(SessionEvent::Curve { iteration: self.usize()?, point: self.point()? }),
            TAG_DIRECT_LABEL => Ok(SessionEvent::DirectLabel {
                iteration: self.usize()?,
                source: self.attr()?,
                target: self.attr()?,
                strategy: self.strategy()?,
            }),
            TAG_STALLED => Ok(SessionEvent::Stalled { iteration: self.usize()? }),
            TAG_ITERATION_END => Ok(SessionEvent::IterationEnd { iteration: self.usize()? }),
            v => self.err(format!("unknown event tag {v:#04x}")),
        }
    }

    fn snapshot(&mut self) -> Result<(SessionConfig, SessionState), CodecError> {
        let config = self.config()?;
        let mut labels = LabelStore::new();
        let n_pos = self.count(8)?;
        for _ in 0..n_pos {
            let (s, t) = (self.attr()?, self.attr()?);
            labels.confirm(s, t);
        }
        let n_neg = self.count(8)?;
        for _ in 0..n_neg {
            let (s, t) = (self.attr()?, self.attr()?);
            labels.reject(s, t);
        }
        let n_curve = self.count(32)?;
        let mut curve = Vec::with_capacity(n_curve);
        for _ in 0..n_curve {
            curve.push(self.point()?);
        }
        let labels_used = self.usize()?;
        let reviews_done = self.usize()?;
        let n_times = self.count(8)?;
        let mut response_times = Vec::with_capacity(n_times);
        for _ in 0..n_times {
            response_times.push(self.f64()?);
        }
        let total_attributes = self.usize()?;
        let outcome =
            SessionOutcome { curve, labels_used, reviews_done, response_times, total_attributes };
        let state = SessionState {
            labels,
            outcome,
            iterations_done: self.usize()?,
            started: self.bool()?,
            stalled: self.bool()?,
        };
        Ok((config, state))
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.pos != self.bytes.len() {
            let extra = self.bytes.len() - self.pos;
            return self.err(format!("{extra} trailing bytes after payload"));
        }
        Ok(())
    }
}

/// Decodes one record payload. Strict: the whole buffer must be consumed.
pub fn decode_payload(bytes: &[u8]) -> Result<Payload, CodecError> {
    let mut buf = Buf::new(bytes);
    let payload = match buf.u8()? {
        KIND_EVENT => Payload::Event(buf.event()?),
        KIND_SNAPSHOT => {
            let (config, state) = buf.snapshot()?;
            Payload::Snapshot { config, state }
        }
        v => return Err(CodecError { at: 0, reason: format!("unknown record kind {v:#04x}") }),
    };
    buf.finish()?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Payload) {
        let bytes = encode_payload(&p);
        assert_eq!(decode_payload(&bytes).expect("decodes"), p);
    }

    fn sample_events() -> Vec<SessionEvent> {
        vec![
            SessionEvent::SessionStart {
                total_attributes: 19,
                config: SessionConfig {
                    top_k: 3,
                    labels_per_iter: 2,
                    strategy: SelectionStrategy::Random,
                    max_iterations: 500,
                    seed: 0xDEAD_BEEF,
                },
            },
            SessionEvent::Respond { iteration: 4, secs: 0.3125 },
            SessionEvent::Review {
                iteration: 4,
                source: AttrId(7),
                outcome: ReviewOutcome::Confirmed(AttrId(2)),
            },
            SessionEvent::Review {
                iteration: 4,
                source: AttrId(8),
                outcome: ReviewOutcome::RejectedAll(vec![AttrId(1), AttrId(5), AttrId(9)]),
            },
            SessionEvent::Review {
                iteration: 5,
                source: AttrId(8),
                outcome: ReviewOutcome::RejectedAll(vec![]),
            },
            SessionEvent::Curve {
                iteration: 4,
                point: CurvePoint { labels_provided: 3, matched: 9, matched_correct: 8, total: 19 },
            },
            SessionEvent::DirectLabel {
                iteration: 4,
                source: AttrId(11),
                target: AttrId(3),
                strategy: SelectionStrategy::LeastConfidentAnchor,
            },
            SessionEvent::Stalled { iteration: 6 },
            SessionEvent::IterationEnd { iteration: 4 },
        ]
    }

    #[test]
    fn every_event_variant_roundtrips() {
        for e in sample_events() {
            roundtrip(Payload::Event(e));
        }
    }

    #[test]
    fn snapshot_roundtrips_with_full_state() {
        let mut state = SessionState::new();
        for e in sample_events() {
            state.apply(&e);
        }
        assert!(state.labels.matched_count() > 0);
        assert!(state.labels.negative_count() > 0);
        roundtrip(Payload::Snapshot { config: SessionConfig::default(), state });
    }

    #[test]
    fn response_time_bits_survive_exactly() {
        // A value with no short decimal representation.
        let secs = f64::from_bits(0x3FD5_5555_5555_5555);
        let bytes = encode_payload(&Payload::Event(SessionEvent::Respond { iteration: 0, secs }));
        match decode_payload(&bytes).expect("decodes") {
            Payload::Event(SessionEvent::Respond { secs: back, .. }) => {
                assert_eq!(back.to_bits(), secs.to_bits());
            }
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_and_tag_are_errors() {
        assert!(decode_payload(&[0x07]).is_err());
        // Kind=event, tag=99.
        assert!(decode_payload(&[0x01, 99]).is_err());
        // Kind=event, review with an unknown outcome code.
        let mut bytes = vec![0x01, TAG_REVIEW];
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(9);
        assert!(decode_payload(&bytes).is_err());
    }

    #[test]
    fn truncated_and_padded_payloads_are_errors() {
        let bytes = encode_payload(&Payload::Event(SessionEvent::IterationEnd { iteration: 3 }));
        for cut in 0..bytes.len() {
            assert!(decode_payload(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        let err = decode_payload(&padded).expect_err("trailing byte accepted");
        assert!(err.reason.contains("trailing"), "{err}");
    }

    #[test]
    fn corrupt_count_cannot_balloon_allocation() {
        // Review/RejectedAll with a count of u64::MAX but no bytes behind it.
        let mut bytes = vec![0x01, TAG_REVIEW];
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_payload(&bytes).expect_err("implausible count accepted");
        assert!(err.reason.contains("exceeds remaining"), "{err}");
    }

    /// The on-disk strategy codes are part of format v1 — changing them
    /// breaks old journals.
    #[test]
    fn strategy_codes_are_stable() {
        assert_eq!(strategy_code(SelectionStrategy::LeastConfidentAnchor), 0);
        assert_eq!(strategy_code(SelectionStrategy::Random), 1);
    }
}
