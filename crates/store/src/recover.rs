//! Crash recovery: rebuild a [`SessionState`] from journal + checkpoint,
//! tolerating arbitrary tail damage.
//!
//! Two rules make recovery correct rather than merely lenient:
//!
//! 1. **Truncate at the last iteration boundary**, not at the first
//!    invalid record. A crash can leave *intact* records of an iteration
//!    whose `IterationEnd` never hit the disk; replaying those and then
//!    re-running the iteration would double-apply its labels. Valid
//!    resume points are therefore ends of `IterationEnd`, `SessionStart`,
//!    or snapshot (rebase) records only.
//! 2. **The checkpoint wins only when it is ahead** of what the journal
//!    replays to (more committed iterations). In that case the journal is
//!    missing history, so the resumed session must first append a rebase
//!    snapshot ([`Recovered::needs_rebase`]) — otherwise a later replay of
//!    that journal would silently lose the checkpointed prefix.

use crate::checkpoint::read_checkpoint;
use crate::codec::Payload;
use crate::journal::{read_journal, JournalContents};
use crate::StoreError;
use lsm_core::{SessionConfig, SessionEvent, SessionState};
use std::path::Path;

/// The result of [`recover`]: everything needed to resume a session.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// The persisted session configuration (from `SessionStart`, a rebase
    /// snapshot, or the checkpoint). `None` only for an empty journal with
    /// no checkpoint.
    pub config: Option<SessionConfig>,
    /// The replayed state to resume from.
    pub state: SessionState,
    /// Journal offset to reopen at ([`JournalWriter::open_at`] truncates
    /// here, discarding damaged or uncommitted bytes).
    ///
    /// [`JournalWriter::open_at`]: crate::journal::JournalWriter::open_at
    pub resume_offset: u64,
    /// The checkpoint was ahead of the journal: the resumed journal must
    /// start with a rebase snapshot of `state`.
    pub needs_rebase: bool,
    /// Physical journal bytes past `resume_offset` (damaged tail plus any
    /// uncommitted iteration).
    pub truncated_bytes: u64,
    /// Intact journal records discarded because they sat past the last
    /// iteration boundary (an uncommitted iteration).
    pub dropped_tail_records: usize,
    /// Whether `state` came from the checkpoint rather than journal
    /// replay.
    pub from_checkpoint: bool,
}

fn is_boundary(p: &Payload) -> bool {
    matches!(
        p,
        Payload::Event(SessionEvent::IterationEnd { .. })
            | Payload::Event(SessionEvent::SessionStart { .. })
            | Payload::Snapshot { .. }
    )
}

/// Replays the journal's boundary-consistent prefix.
fn replay(contents: &JournalContents) -> (Option<SessionConfig>, SessionState, u64, usize) {
    let boundary_idx = contents.records.iter().rposition(|(_, p)| is_boundary(p));
    let (prefix, resume_offset) = match boundary_idx {
        Some(i) => (&contents.records[..=i], contents.records[i].0),
        // No boundary at all: nothing replayable. Resume right after the
        // header (or at 0 to rewrite a torn header).
        None => (&contents.records[..0], contents.valid_len.min(crate::frame::HEADER_LEN)),
    };
    let mut config = None;
    let mut state = SessionState::new();
    for (_, payload) in prefix {
        match payload {
            Payload::Event(e) => {
                if let SessionEvent::SessionStart { config: c, .. } = e {
                    config = Some(*c);
                }
                state.apply(e);
            }
            Payload::Snapshot { config: c, state: s } => {
                config = Some(*c);
                state = s.clone();
            }
        }
    }
    let dropped = contents.records.len() - prefix.len();
    (config, state, resume_offset, dropped)
}

/// Recovers a session from its journal and (optionally) checkpoint.
///
/// A missing journal file is an empty journal (the checkpoint may still
/// carry the session). Hard errors are limited to I/O failures, a journal
/// header with the wrong magic, and format version skew in either file.
pub fn recover(
    journal_path: &Path,
    checkpoint_path: Option<&Path>,
) -> Result<Recovered, StoreError> {
    let _span = lsm_obs::span("journal.recover");
    lsm_obs::add(lsm_obs::Counter::JournalRecoveries, 1);

    let (contents, file_len) = match read_journal(journal_path) {
        Ok(c) => {
            let len = std::fs::metadata(journal_path)?.len();
            (c, len)
        }
        Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            (JournalContents { records: Vec::new(), valid_len: 0, damage: None }, 0)
        }
        Err(e) => return Err(e),
    };
    let (mut config, mut state, resume_offset, dropped_tail_records) = replay(&contents);

    let mut from_checkpoint = false;
    let mut needs_rebase = false;
    if let Some(ck_path) = checkpoint_path {
        if let Some((ck_config, ck_state)) = read_checkpoint(ck_path)? {
            if ck_state.iterations_done > state.iterations_done {
                config = Some(ck_config);
                state = ck_state;
                from_checkpoint = true;
                needs_rebase = true;
            }
        }
    }

    Ok(Recovered {
        config,
        state,
        resume_offset,
        needs_rebase,
        truncated_bytes: file_len.saturating_sub(resume_offset),
        dropped_tail_records,
        from_checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::write_checkpoint;
    use crate::journal::JournalWriter;
    use crate::testutil::test_dir;
    use lsm_core::SelectionStrategy;
    use lsm_schema::AttrId;

    fn start() -> SessionEvent {
        SessionEvent::SessionStart { total_attributes: 4, config: SessionConfig::default() }
    }

    fn label(iteration: usize, s: u32) -> SessionEvent {
        SessionEvent::DirectLabel {
            iteration,
            source: AttrId(s),
            target: AttrId(s),
            strategy: SelectionStrategy::LeastConfidentAnchor,
        }
    }

    fn write_events(path: &Path, events: &[SessionEvent]) {
        let mut w = JournalWriter::create(path).unwrap();
        for e in events {
            w.append(&Payload::Event(e.clone())).unwrap();
        }
        w.sync().unwrap();
    }

    #[test]
    fn fresh_paths_recover_to_empty() {
        let dir = test_dir("recover-fresh");
        let r = recover(&dir.join("missing.journal"), Some(&dir.join("missing.ckpt"))).unwrap();
        assert_eq!(r.config, None);
        assert_eq!(r.state, SessionState::new());
        assert_eq!(r.resume_offset, 0);
        assert!(!r.needs_rebase && !r.from_checkpoint);
    }

    #[test]
    fn clean_journal_replays_fully() {
        let dir = test_dir("recover-clean");
        let path = dir.join("s.journal");
        write_events(&path, &[start(), label(0, 0), SessionEvent::IterationEnd { iteration: 0 }]);
        let r = recover(&path, None).unwrap();
        assert_eq!(r.config, Some(SessionConfig::default()));
        assert_eq!(r.state.iterations_done, 1);
        assert_eq!(r.state.outcome.labels_used, 1);
        assert_eq!(r.truncated_bytes, 0);
        assert_eq!(r.dropped_tail_records, 0);
        assert_eq!(r.resume_offset, std::fs::metadata(&path).unwrap().len());
    }

    /// Intact records of an uncommitted iteration must be dropped, not
    /// replayed: resuming re-runs that iteration from scratch.
    #[test]
    fn partial_iteration_is_discarded_at_the_boundary() {
        let dir = test_dir("recover-partial");
        let path = dir.join("s.journal");
        write_events(
            &path,
            &[
                start(),
                label(0, 0),
                SessionEvent::IterationEnd { iteration: 0 },
                // Iteration 1 began but never committed:
                SessionEvent::Respond { iteration: 1, secs: 0.125 },
                label(1, 1),
            ],
        );
        let r = recover(&path, None).unwrap();
        assert_eq!(r.state.iterations_done, 1);
        assert_eq!(r.state.outcome.labels_used, 1, "uncommitted label not replayed");
        assert_eq!(r.state.outcome.response_times.len(), 0, "uncommitted respond dropped");
        assert_eq!(r.dropped_tail_records, 2);
        assert!(r.truncated_bytes > 0);
    }

    #[test]
    fn corrupt_tail_truncates_to_last_boundary() {
        let dir = test_dir("recover-corrupt-tail");
        let path = dir.join("s.journal");
        write_events(&path, &[start(), label(0, 0), SessionEvent::IterationEnd { iteration: 0 }]);
        let boundary = std::fs::metadata(&path).unwrap().len();
        // A committed iteration 1 whose bytes were then damaged.
        let mut w = JournalWriter::open_at(&path, boundary).unwrap();
        w.append(&Payload::Event(label(1, 1))).unwrap();
        w.append(&Payload::Event(SessionEvent::IterationEnd { iteration: 1 })).unwrap();
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let hit = boundary as usize + 10;
        bytes[hit] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let r = recover(&path, None).unwrap();
        assert_eq!(r.state.iterations_done, 1);
        assert_eq!(r.resume_offset, boundary);
        assert_eq!(r.truncated_bytes, bytes.len() as u64 - boundary);
    }

    #[test]
    fn checkpoint_ahead_wins_and_requests_rebase() {
        let dir = test_dir("recover-ckpt-ahead");
        let journal = dir.join("s.journal");
        let ckpt = dir.join("s.ckpt");
        write_events(
            &journal,
            &[start(), label(0, 0), SessionEvent::IterationEnd { iteration: 0 }],
        );
        let mut ahead = SessionState::new();
        for e in [
            start(),
            label(0, 0),
            SessionEvent::IterationEnd { iteration: 0 },
            label(1, 1),
            SessionEvent::IterationEnd { iteration: 1 },
        ] {
            ahead.apply(&e);
        }
        let config = SessionConfig { seed: 99, ..Default::default() };
        write_checkpoint(&ckpt, &config, &ahead).unwrap();
        let r = recover(&journal, Some(&ckpt)).unwrap();
        assert!(r.from_checkpoint && r.needs_rebase);
        assert_eq!(r.config, Some(config));
        assert_eq!(r.state, ahead);
    }

    #[test]
    fn checkpoint_behind_or_corrupt_defers_to_journal() {
        let dir = test_dir("recover-ckpt-behind");
        let journal = dir.join("s.journal");
        let ckpt = dir.join("s.ckpt");
        write_events(
            &journal,
            &[
                start(),
                label(0, 0),
                SessionEvent::IterationEnd { iteration: 0 },
                label(1, 1),
                SessionEvent::IterationEnd { iteration: 1 },
            ],
        );
        // Behind: only iteration 0.
        let mut behind = SessionState::new();
        for e in [start(), label(0, 0), SessionEvent::IterationEnd { iteration: 0 }] {
            behind.apply(&e);
        }
        write_checkpoint(&ckpt, &SessionConfig::default(), &behind).unwrap();
        let r = recover(&journal, Some(&ckpt)).unwrap();
        assert!(!r.from_checkpoint && !r.needs_rebase);
        assert_eq!(r.state.iterations_done, 2);
        // Corrupt checkpoint: same outcome.
        std::fs::write(&ckpt, b"NOPE!!!!").unwrap();
        let r = recover(&journal, Some(&ckpt)).unwrap();
        assert!(!r.from_checkpoint);
        assert_eq!(r.state.iterations_done, 2);
    }

    #[test]
    fn rebase_record_resets_replay() {
        let dir = test_dir("recover-rebase");
        let path = dir.join("s.journal");
        let mut rebased = SessionState::new();
        for e in [
            start(),
            label(0, 0),
            SessionEvent::IterationEnd { iteration: 0 },
            label(1, 1),
            SessionEvent::IterationEnd { iteration: 1 },
        ] {
            rebased.apply(&e);
        }
        let config = SessionConfig { seed: 7, ..Default::default() };
        let mut w = JournalWriter::create(&path).unwrap();
        // Journal holds only iteration 0, then a rebase snapshot from a
        // checkpoint that knew iterations 0-1, then iteration 2 events.
        w.append(&Payload::Event(start())).unwrap();
        w.append(&Payload::Event(label(0, 0))).unwrap();
        w.append(&Payload::Event(SessionEvent::IterationEnd { iteration: 0 })).unwrap();
        w.append(&Payload::Snapshot { config, state: rebased.clone() }).unwrap();
        w.append(&Payload::Event(label(2, 2))).unwrap();
        w.append(&Payload::Event(SessionEvent::IterationEnd { iteration: 2 })).unwrap();
        w.sync().unwrap();
        drop(w);
        let r = recover(&path, None).unwrap();
        assert_eq!(r.config, Some(config));
        assert_eq!(r.state.iterations_done, 3);
        assert_eq!(r.state.outcome.labels_used, 3);
    }

    #[test]
    fn version_skew_in_journal_is_a_hard_error() {
        let dir = test_dir("recover-skew");
        let path = dir.join("s.journal");
        write_events(&path, &[start()]);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 2;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(recover(&path, None), Err(StoreError::VersionSkew { found: 2, .. })));
    }
}
