//! File framing: versioned headers and length-prefixed, checksummed
//! records, independent of what the payloads mean.
//!
//! ```text
//! file    := header record*
//! header  := magic[4] version[u32 LE]
//! record  := len[u32 LE] crc[u32 LE] payload[len]     (crc over payload)
//! ```
//!
//! Scanning tolerates a damaged tail: it returns every record up to the
//! first torn/invalid one plus the byte offset where validity ends, which
//! is exactly what truncate-at-first-invalid recovery needs.

use crate::crc32::crc32;

/// Journal file magic: `LSMJ`.
pub const JOURNAL_MAGIC: [u8; 4] = *b"LSMJ";
/// Checkpoint file magic: `LSMC`.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"LSMC";
/// The on-disk format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Bytes of `magic + version`.
pub const HEADER_LEN: u64 = 8;
/// Bytes of `len + crc` preceding each payload.
pub const RECORD_HEADER_LEN: u64 = 8;
/// Upper bound on a single record's payload. A valid session event is tiny;
/// a length field past this bound is treated as corruption rather than an
/// instruction to allocate gigabytes.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Why a header failed validation — recovery treats these differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderIssue {
    /// Fewer than [`HEADER_LEN`] bytes: a crash before the header sync.
    Torn,
    /// The magic does not match: not this kind of file at all.
    BadMagic,
    /// Recognized file, unsupported format version.
    VersionSkew(u32),
}

/// The `magic + version` header bytes.
pub fn encode_header(magic: [u8; 4]) -> [u8; 8] {
    let v = FORMAT_VERSION.to_le_bytes();
    [magic[0], magic[1], magic[2], magic[3], v[0], v[1], v[2], v[3]]
}

/// Validates a file's header against the expected magic.
pub fn check_header(bytes: &[u8], magic: [u8; 4]) -> Result<(), HeaderIssue> {
    if bytes.len() < HEADER_LEN as usize {
        return Err(HeaderIssue::Torn);
    }
    if bytes[..4] != magic {
        return Err(HeaderIssue::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        return Err(HeaderIssue::VersionSkew(version));
    }
    Ok(())
}

/// Frames one payload as `len + crc + payload`.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of scanning a record region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// `(end_offset, payload)` per intact record, in file order;
    /// `end_offset` is the absolute offset of the first byte *after* the
    /// record.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Absolute offset where validity ends (end of the last intact record,
    /// or of the header when none).
    pub valid_len: u64,
    /// Offset and description of the first invalid record, if any.
    pub damage: Option<(u64, String)>,
}

/// Scans `file[start..]` as a record sequence, stopping at the first torn
/// or checksum-failing record.
pub fn scan_records(file: &[u8], start: u64) -> ScanOutcome {
    let mut records = Vec::new();
    let mut pos = start as usize;
    let mut damage = None;
    loop {
        if pos == file.len() {
            break; // clean end
        }
        let avail = file.len() - pos;
        if avail < RECORD_HEADER_LEN as usize {
            damage = Some((pos as u64, format!("torn record header ({avail} bytes)")));
            break;
        }
        let len = u32::from_le_bytes([file[pos], file[pos + 1], file[pos + 2], file[pos + 3]]);
        let crc = u32::from_le_bytes([file[pos + 4], file[pos + 5], file[pos + 6], file[pos + 7]]);
        if len > MAX_RECORD_LEN {
            damage = Some((pos as u64, format!("implausible record length {len}")));
            break;
        }
        let body_start = pos + RECORD_HEADER_LEN as usize;
        let body_end = body_start + len as usize;
        if body_end > file.len() {
            damage = Some((
                pos as u64,
                format!("torn record body ({} of {len} bytes)", file.len() - body_start),
            ));
            break;
        }
        let payload = &file[body_start..body_end];
        let actual = crc32(payload);
        if actual != crc {
            damage = Some((
                pos as u64,
                format!("checksum mismatch (stored {crc:#010x}, computed {actual:#010x})"),
            ));
            break;
        }
        records.push((body_end as u64, payload.to_vec()));
        pos = body_end;
    }
    let valid_len = records.last().map(|&(end, _)| end).unwrap_or(start);
    ScanOutcome { records, valid_len, damage }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal_bytes(payloads: &[&[u8]]) -> Vec<u8> {
        let mut f = encode_header(JOURNAL_MAGIC).to_vec();
        for p in payloads {
            f.extend_from_slice(&encode_record(p));
        }
        f
    }

    #[test]
    fn header_roundtrip_and_issues() {
        let h = encode_header(JOURNAL_MAGIC);
        assert_eq!(check_header(&h, JOURNAL_MAGIC), Ok(()));
        assert_eq!(check_header(&h, CHECKPOINT_MAGIC), Err(HeaderIssue::BadMagic));
        assert_eq!(check_header(&h[..5], JOURNAL_MAGIC), Err(HeaderIssue::Torn));
        let mut skewed = h;
        skewed[4] = 2;
        assert_eq!(check_header(&skewed, JOURNAL_MAGIC), Err(HeaderIssue::VersionSkew(2)));
    }

    #[test]
    fn scan_roundtrips_clean_files() {
        let f = journal_bytes(&[b"alpha", b"", b"gamma-gamma"]);
        let out = scan_records(&f, HEADER_LEN);
        assert_eq!(out.damage, None);
        assert_eq!(out.valid_len, f.len() as u64);
        let payloads: Vec<&[u8]> = out.records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![b"alpha" as &[u8], b"", b"gamma-gamma"]);
    }

    #[test]
    fn truncation_at_every_byte_is_tolerated() {
        let f = journal_bytes(&[b"alpha", b"beta", b"gamma"]);
        let full = scan_records(&f, HEADER_LEN);
        // Record boundaries (absolute end offsets).
        let boundaries: Vec<u64> = full.records.iter().map(|&(e, _)| e).collect();
        for cut in HEADER_LEN as usize..f.len() {
            let out = scan_records(&f[..cut], HEADER_LEN);
            // Valid prefix = all records wholly inside the cut.
            let expect_records = boundaries.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(out.records.len(), expect_records, "cut at {cut}");
            // A cut exactly on a boundary is clean; anything else is damage.
            assert_eq!(
                out.damage.is_none(),
                boundaries.contains(&(cut as u64)) || cut as u64 == HEADER_LEN,
                "cut at {cut}"
            );
            // valid_len never exceeds the cut and always lands on a boundary.
            assert!(out.valid_len <= cut as u64);
        }
    }

    #[test]
    fn bit_flip_in_any_record_byte_is_caught() {
        let f = journal_bytes(&[b"alpha", b"beta"]);
        for pos in HEADER_LEN as usize..f.len() {
            for bit in 0..8 {
                let mut corrupt = f.clone();
                corrupt[pos] ^= 1 << bit;
                let out = scan_records(&corrupt, HEADER_LEN);
                // The scan must never return a payload that differs from an
                // original record (either the damaged record is dropped, or
                // the flip hit a later record and the prefix survives).
                for (_, p) in &out.records {
                    assert!(
                        p.as_slice() == b"alpha" || p.as_slice() == b"beta",
                        "flip at {pos}:{bit} produced forged payload {p:?}"
                    );
                }
                assert!(out.records.len() <= 2);
            }
        }
    }

    #[test]
    fn implausible_length_is_damage_not_allocation() {
        let mut f = encode_header(JOURNAL_MAGIC).to_vec();
        f.extend_from_slice(&u32::MAX.to_le_bytes());
        f.extend_from_slice(&0u32.to_le_bytes());
        let out = scan_records(&f, HEADER_LEN);
        assert!(out.records.is_empty());
        let (off, reason) = out.damage.expect("flagged");
        assert_eq!(off, HEADER_LEN);
        assert!(reason.contains("implausible"), "{reason}");
    }

    #[test]
    fn empty_region_scans_clean() {
        let f = encode_header(JOURNAL_MAGIC).to_vec();
        let out = scan_records(&f, HEADER_LEN);
        assert!(out.records.is_empty());
        assert_eq!(out.valid_len, HEADER_LEN);
        assert_eq!(out.damage, None);
    }
}
