//! CRC-32 (ISO-HDLC / zlib polynomial), the per-record checksum of the
//! journal and checkpoint formats.
//!
//! Reflected polynomial `0xEDB88320`, init and xor-out `0xFFFFFFFF` — the
//! ubiquitous variant (gzip, PNG, ethernet), so journals are checkable
//! with any standard tool. Table-driven, with the table built in a `const`
//! context: no runtime init, no dependencies.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The universal CRC-32 check value.
    #[test]
    fn standard_test_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the write-ahead journal of label events".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
