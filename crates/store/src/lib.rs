//! # lsm-store
//!
//! Crash-safe persistence for interactive matching sessions (the paper's
//! Section V-C loop): a real deployment of that loop spends hours of expert
//! labeling time, so the label history must survive process death.
//!
//! Two complementary artifacts (full spec in `docs/persistence.md`):
//!
//! * **Write-ahead journal** — an append-only file of length-prefixed,
//!   CRC-32-checksummed [`SessionEvent`] records behind a versioned header.
//!   Every label/review/curve event is appended before the session
//!   proceeds; `fsync` happens at iteration boundaries (the durability
//!   unit).
//! * **Checkpoints** — periodic full snapshots of the replayable
//!   [`SessionState`] + [`SessionConfig`], written atomically via
//!   tmp-file + fsync + rename, so recovery of a long session does not
//!   need to replay the whole journal and a journal lost entirely can
//!   still resume from the last checkpoint.
//!
//! Recovery ([`recover`]) is corruption-tolerant: a torn or bit-flipped
//! record *truncates* the journal at the last intact iteration boundary
//! instead of failing the load, and a corrupt checkpoint falls back to the
//! journal (and vice versa). Only a wrong magic (not this file type) or a
//! format-version skew is a hard error.
//!
//! The crate deliberately hand-rolls its binary codec ([`codec`]) instead
//! of using serde: the format is versioned and fixed little-endian, so the
//! on-disk layout cannot silently change with a dependency upgrade.
//!
//! [`SessionEvent`]: lsm_core::SessionEvent
//! [`SessionState`]: lsm_core::SessionState
//! [`SessionConfig`]: lsm_core::SessionConfig
//! [`recover`]: recover::recover

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod codec;
pub mod crc32;
pub mod frame;
pub mod journal;
pub mod recover;
pub mod sink;
#[cfg(test)]
mod testutil;

pub use checkpoint::{read_checkpoint, write_checkpoint};
pub use frame::{CHECKPOINT_MAGIC, FORMAT_VERSION, JOURNAL_MAGIC};
pub use journal::{read_journal, JournalWriter, SyncPolicy};
pub use recover::{recover, Recovered};
pub use sink::{JournalOptions, JournalSink};

/// Errors of the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// The file is recognizably ours but damaged beyond the tolerated
    /// torn-tail case (e.g. a corrupt header on a non-empty file).
    Corrupt {
        /// Byte offset of the damage.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// The file was written by a different (newer) format version.
    VersionSkew {
        /// Version found in the file header.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "journal I/O: {e}"),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt store file at byte {offset}: {reason}")
            }
            StoreError::VersionSkew { found, supported } => write!(
                f,
                "store format version skew: file has v{found}, this build supports v{supported}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
