//! Unit-test helpers (compiled only under `cfg(test)`).

use std::path::PathBuf;

/// A fresh per-test scratch directory under the system temp dir, namespaced
/// by process id so parallel test binaries cannot collide.
pub fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsm-store-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // lsm-lint: allow(R5-panic-policy, cfg(test)-only module; a setup failure should abort the test)
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}
