//! Shared fixtures for the store integration tests.

use lsm_core::{SessionEvent, SessionSink, SinkError};
use lsm_schema::{AttrId, DataType, GroundTruth, Schema, ScoreMatrix};
use std::path::PathBuf;

/// A fresh scratch directory namespaced by process id and test name.
pub fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsm-store-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Wraps any sink with a deterministic response clock: `f(iteration)` is an
/// exact binary fraction, so an interrupted-and-resumed session reproduces
/// the uninterrupted run *bitwise*, response times included.
pub struct DetSink<S>(pub S);

pub fn det_time(iteration: usize) -> f64 {
    (iteration as f64 + 1.0) * 0.0625
}

impl<S: SessionSink> SessionSink for DetSink<S> {
    fn on_event(&mut self, event: &SessionEvent) -> Result<(), SinkError> {
        self.0.on_event(event)
    }

    fn map_response_time(&mut self, iteration: usize, _measured: f64) -> f64 {
        det_time(iteration)
    }
}

/// A source schema with `n` text attributes (plus nothing else) whose truth
/// is the identity mapping.
pub fn source(n: usize) -> Schema {
    let mut b = Schema::builder("s").entity("A").attr("a_id", DataType::Integer);
    for i in 1..n {
        b = b.attr(format!("col_{i}"), DataType::Text);
    }
    b.pk("a_id").build().expect("valid schema")
}

pub fn truth(n: usize) -> GroundTruth {
    GroundTruth::from_pairs((0..n as u32).map(|i| (AttrId(i), AttrId(i))))
}

/// An all-wrong static ranking over `n × 2n`: truth targets score zero, so
/// every attribute needs a direct label and the session runs `n`-ish
/// iterations — plenty of journal to injure.
pub fn distractor_scores(n: usize) -> ScoreMatrix {
    let mut m = ScoreMatrix::zeros(n, 2 * n);
    for s in 0..n as u32 {
        for t in n as u32..2 * n as u32 {
            m.set(AttrId(s), AttrId(t), 0.5 + f64::from(t) / 100.0);
        }
    }
    m
}

/// A mixed ranking: the first two rows rank their truth on top, the rest
/// rank distractors — so sessions both confirm-by-review and direct-label.
pub fn mixed_scores(n: usize) -> ScoreMatrix {
    let mut m = distractor_scores(n);
    for s in 0..2u32.min(n as u32) {
        m.set(AttrId(s), AttrId(s), 2.0);
    }
    m
}
