//! Recovery edge cases beyond the exhaustive byte sweep: empty files,
//! checkpoint/journal disagreement, duplicate labels straddling a
//! checkpoint, version skew, and crash-during-resume chains.

mod common;

use common::{mixed_scores, source, test_dir, truth, DetSink};
use lsm_core::{
    resume_session, run_session_with_sink, PerfectOracle, PinnedBaselineEngine, SessionConfig,
    SessionState,
};
use lsm_store::{
    read_checkpoint, recover, write_checkpoint, JournalOptions, JournalSink, StoreError, SyncPolicy,
};
use std::path::Path;

const N: usize = 5;

fn engine() -> PinnedBaselineEngine {
    PinnedBaselineEngine::new(source(N), mixed_scores(N))
}

fn opts() -> JournalOptions {
    JournalOptions { checkpoint_every: 1, sync: SyncPolicy::Never }
}

fn reference_run(journal: &Path, ckpt: Option<&Path>) -> lsm_core::SessionOutcome {
    let mut sink = DetSink(JournalSink::create(journal, ckpt, opts()).expect("create"));
    let mut oracle = PerfectOracle::new(truth(N));
    let outcome =
        run_session_with_sink(&mut engine(), &mut oracle, SessionConfig::default(), &mut sink)
            .expect("run");
    sink.0.finish().expect("finish");
    outcome
}

#[test]
fn zero_byte_journal_resumes_from_scratch() {
    let dir = test_dir("re-zero-byte");
    let journal = dir.join("s.journal");
    std::fs::write(&journal, b"").expect("write");
    let (sink, recovered) = JournalSink::resume(&journal, None, opts()).expect("resume");
    assert_eq!(recovered.state, SessionState::new());
    assert_eq!(recovered.config, None);
    drop(sink);
    // The reopened file has a fresh valid header.
    assert!(recover(&journal, None).is_ok());
}

/// A label the checkpoint already contains shows up again in the journal
/// (e.g. the sync landed but the checkpoint was from one iteration later):
/// confirm is idempotent, so replay and rebase agree.
#[test]
fn duplicate_confirm_across_checkpoint_is_idempotent() {
    let dir = test_dir("re-dup-confirm");
    let journal = dir.join("s.journal");
    let ckpt = dir.join("s.ckpt");
    let outcome = reference_run(&journal, Some(&ckpt));

    // Craft a checkpoint from mid-session: replay the journal's first two
    // committed iterations only.
    let full = recover(&journal, None).expect("replay");
    assert!(full.state.iterations_done >= 2, "need a multi-iteration session");
    let (config, mid_state) = {
        let bytes = std::fs::read(&journal).expect("read");
        // Reuse recovery itself to build the mid state: truncate a copy
        // after iteration 2's boundary by scanning with recover on
        // progressively shorter prefixes.
        let mut chosen: Option<SessionState> = None;
        for cut in (8..=bytes.len()).rev() {
            let tmp = dir.join("probe.journal");
            std::fs::write(&tmp, &bytes[..cut]).expect("write probe");
            let r = recover(&tmp, None).expect("probe replay");
            if r.state.iterations_done == 2 {
                chosen = Some(r.state);
                break;
            }
        }
        (full.config.expect("config"), chosen.expect("a 2-iteration prefix exists"))
    };
    // The checkpoint is AHEAD of a journal truncated to 1 iteration, and
    // the journal's iteration-1 records (already inside the checkpoint)
    // are exactly the duplicate-confirm hazard.
    write_checkpoint(&ckpt, &config, &mid_state).expect("write checkpoint");
    let bytes = std::fs::read(&journal).expect("read");
    let mut one_iter = None;
    for cut in 8..=bytes.len() {
        let tmp = dir.join("probe.journal");
        std::fs::write(&tmp, &bytes[..cut]).expect("write probe");
        if recover(&tmp, None).expect("probe").state.iterations_done == 1 {
            one_iter = Some(cut);
            break;
        }
    }
    let cut = one_iter.expect("a 1-iteration prefix exists");
    std::fs::write(&journal, &bytes[..cut]).expect("truncate journal");

    let (sink, recovered) = JournalSink::resume(&journal, Some(&ckpt), opts()).expect("resume");
    assert!(recovered.from_checkpoint && recovered.needs_rebase);
    assert_eq!(recovered.state, mid_state, "rebase replaces, never re-applies");
    let mut sink = DetSink(sink);
    let mut oracle = PerfectOracle::new(truth(N));
    let resumed = resume_session(
        &mut engine(),
        &mut oracle,
        recovered.config.expect("config"),
        recovered.state,
        &mut sink,
    )
    .expect("resume");
    sink.0.finish().expect("finish");
    assert_eq!(resumed, outcome);
    // No double counting anywhere.
    assert_eq!(resumed.labels_used, outcome.labels_used);
    let replayed = recover(&journal, None).expect("replay rebased journal");
    assert_eq!(replayed.state.outcome, outcome);
}

/// Crash during the *resumed* run: resume, cut again, resume again.
#[test]
fn double_crash_double_resume_is_still_identical() {
    let dir = test_dir("re-double-crash");
    let journal = dir.join("s.journal");
    let outcome = reference_run(&journal, None);
    let ref_bytes = std::fs::read(&journal).expect("read");

    // First crash: keep 40 %.
    std::fs::write(&journal, &ref_bytes[..ref_bytes.len() * 2 / 5]).expect("cut 1");
    {
        let (sink, recovered) = JournalSink::resume(&journal, None, opts()).expect("resume 1");
        let mut sink = DetSink(sink);
        let mut oracle = PerfectOracle::new(truth(N));
        resume_session(
            &mut engine(),
            &mut oracle,
            recovered.config.unwrap_or_default(),
            recovered.state,
            &mut sink,
        )
        .expect("resumed run 1");
        sink.0.finish().expect("finish 1");
    }
    // Second crash: cut the (rewritten) journal again, then resume to the
    // end.
    let bytes = std::fs::read(&journal).expect("read");
    std::fs::write(&journal, &bytes[..bytes.len() * 4 / 5]).expect("cut 2");
    let (sink, recovered) = JournalSink::resume(&journal, None, opts()).expect("resume 2");
    let mut sink = DetSink(sink);
    let mut oracle = PerfectOracle::new(truth(N));
    let resumed = resume_session(
        &mut engine(),
        &mut oracle,
        recovered.config.unwrap_or_default(),
        recovered.state,
        &mut sink,
    )
    .expect("resumed run 2");
    sink.0.finish().expect("finish 2");
    assert_eq!(resumed, outcome);
    for (a, b) in resumed.response_times.iter().zip(&outcome.response_times) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn version_skew_is_rejected_in_both_files() {
    let dir = test_dir("re-version-skew");
    let journal = dir.join("s.journal");
    let ckpt = dir.join("s.ckpt");
    reference_run(&journal, Some(&ckpt));

    let mut bytes = std::fs::read(&journal).expect("read journal");
    bytes[4] = 2;
    std::fs::write(&journal, &bytes).expect("write");
    assert!(matches!(
        recover(&journal, None),
        Err(StoreError::VersionSkew { found: 2, supported: 1 })
    ));
    bytes[4] = 1;
    std::fs::write(&journal, &bytes).expect("restore");

    let mut ck_bytes = std::fs::read(&ckpt).expect("read checkpoint");
    ck_bytes[4] = 7;
    std::fs::write(&ckpt, &ck_bytes).expect("write");
    assert!(matches!(
        recover(&journal, Some(&ckpt)),
        Err(StoreError::VersionSkew { found: 7, supported: 1 })
    ));
    assert!(matches!(
        read_checkpoint(&ckpt),
        Err(StoreError::VersionSkew { found: 7, supported: 1 })
    ));
}

/// A checkpoint that is merely *equal* to the journal must not trigger a
/// rebase (no journal bloat on clean restarts).
#[test]
fn equal_checkpoint_defers_to_journal() {
    let dir = test_dir("re-equal-ckpt");
    let journal = dir.join("s.journal");
    let ckpt = dir.join("s.ckpt");
    reference_run(&journal, Some(&ckpt));
    let len_before = std::fs::metadata(&journal).expect("meta").len();
    let (_, ck_state) = read_checkpoint(&ckpt).expect("read").expect("present");
    let journal_state = recover(&journal, None).expect("replay").state;
    assert_eq!(ck_state.iterations_done, journal_state.iterations_done);

    let (sink, recovered) = JournalSink::resume(&journal, Some(&ckpt), opts()).expect("resume");
    assert!(!recovered.from_checkpoint && !recovered.needs_rebase);
    drop(sink);
    assert_eq!(std::fs::metadata(&journal).expect("meta").len(), len_before);
}

/// Corruption inside an earlier *rebase* record: everything after it is
/// unreachable, but recovery still degrades cleanly to the pre-rebase
/// prefix plus the (intact) checkpoint.
#[test]
fn damaged_rebase_record_falls_back_cleanly() {
    let dir = test_dir("re-damaged-rebase");
    let journal = dir.join("s.journal");
    let ckpt = dir.join("s.ckpt");
    let outcome = reference_run(&journal, Some(&ckpt));
    // Force a rebase: lose the journal, resume from checkpoint.
    std::fs::write(&journal, b"").expect("drop journal");
    {
        let (sink, recovered) = JournalSink::resume(&journal, Some(&ckpt), opts()).expect("resume");
        assert!(recovered.needs_rebase);
        drop(sink);
    }
    // Now damage a byte inside the rebase snapshot record.
    let mut bytes = std::fs::read(&journal).expect("read");
    let mid = 8 + (bytes.len() - 8) / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&journal, &bytes).expect("write");
    let r = recover(&journal, Some(&ckpt)).expect("recover");
    // The journal alone is now empty-ish, so the checkpoint must lead.
    assert!(r.from_checkpoint);
    assert_eq!(r.state.outcome, outcome);
}
