//! Fault injection: kill or corrupt the journal at **every byte offset**
//! and assert the resumed session produces a `SessionOutcome` bitwise
//! identical to the uninterrupted run.
//!
//! This is the tentpole guarantee of `lsm-store`. The response clock is the
//! deterministic [`DetSink`], so "bitwise" includes every `f64` response
//! time (`to_bits` equality), not just the integer fields.

mod common;

use common::{distractor_scores, source, test_dir, truth, DetSink};
use lsm_core::{
    resume_session, run_session_with_sink, PerfectOracle, PinnedBaselineEngine, SessionConfig,
    SessionOutcome,
};
use lsm_store::{recover, JournalOptions, JournalSink, StoreError, SyncPolicy};
use std::path::Path;

const N: usize = 4;

fn engine() -> PinnedBaselineEngine {
    PinnedBaselineEngine::new(source(N), distractor_scores(N))
}

fn opts() -> JournalOptions {
    // Sync policy is irrelevant under test (no power loss); Never keeps the
    // thousands of injected runs fast.
    JournalOptions { checkpoint_every: 1, sync: SyncPolicy::Never }
}

/// The uninterrupted reference run, journaled.
fn reference(dir: &Path) -> (SessionOutcome, Vec<u8>) {
    let journal = dir.join("reference.journal");
    let mut sink = DetSink(JournalSink::create(&journal, None, opts()).expect("create journal"));
    let mut oracle = PerfectOracle::new(truth(N));
    let outcome =
        run_session_with_sink(&mut engine(), &mut oracle, SessionConfig::default(), &mut sink)
            .expect("journaled run");
    sink.0.finish().expect("final sync");
    let bytes = std::fs::read(&journal).expect("read journal");
    (outcome, bytes)
}

fn assert_bitwise_eq(resumed: &SessionOutcome, reference: &SessionOutcome, ctx: &str) {
    assert_eq!(resumed, reference, "{ctx}: outcome diverged");
    assert_eq!(
        resumed.response_times.len(),
        reference.response_times.len(),
        "{ctx}: response-time count"
    );
    for (i, (a, b)) in resumed.response_times.iter().zip(&reference.response_times).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: response time {i} not bitwise equal");
    }
}

/// Resumes from whatever is on disk at `journal` and checks the outcome.
fn resume_and_check(journal: &Path, ckpt: Option<&Path>, reference: &SessionOutcome, ctx: &str) {
    let (sink, recovered) = JournalSink::resume(journal, ckpt, opts()).expect("resume");
    let config = recovered.config.unwrap_or_default();
    let mut sink = DetSink(sink);
    let mut oracle = PerfectOracle::new(truth(N));
    let resumed = resume_session(&mut engine(), &mut oracle, config, recovered.state, &mut sink)
        .expect("resumed run");
    sink.0.finish().expect("final sync");
    assert_bitwise_eq(&resumed, reference, ctx);
    // The repaired-and-continued journal file must itself replay to the
    // same outcome: crash-resume-crash-resume chains stay safe.
    let replayed = recover(journal, None).expect("replay repaired journal");
    assert_bitwise_eq(&replayed.state.outcome, reference, &format!("{ctx} (replay)"));
}

/// Kill the process at every byte offset of the journal (simulated by
/// truncation, since appends and fsync make the tail the only loss mode).
#[test]
fn truncation_at_every_byte_offset_resumes_identically() {
    let dir = test_dir("fi-truncate");
    let (ref_outcome, ref_bytes) = reference(&dir);
    assert!(ref_bytes.len() > 100, "reference journal suspiciously small");
    let journal = dir.join("cut.journal");
    for cut in 0..=ref_bytes.len() {
        std::fs::write(&journal, &ref_bytes[..cut]).expect("write cut journal");
        resume_and_check(&journal, None, &ref_outcome, &format!("cut at {cut}"));
    }
}

/// Flip one bit in every byte of the journal. Body corruption must be
/// detected and truncated away (resume still reaches the reference
/// outcome); only header corruption — the file's identity — may fail hard,
/// and must do so cleanly.
#[test]
fn bit_flip_at_every_byte_offset_is_contained() {
    let dir = test_dir("fi-bitflip");
    let (ref_outcome, ref_bytes) = reference(&dir);
    let journal = dir.join("flipped.journal");
    for pos in 0..ref_bytes.len() {
        let mut bytes = ref_bytes.clone();
        bytes[pos] ^= 1 << (pos % 8);
        std::fs::write(&journal, &bytes).expect("write flipped journal");
        if pos < 8 {
            // Magic or version byte: a hard, explicit error.
            let err = JournalSink::resume(&journal, None, opts())
                .err()
                .unwrap_or_else(|| panic!("header flip at {pos} was not rejected"));
            assert!(
                matches!(err, StoreError::Corrupt { .. } | StoreError::VersionSkew { .. }),
                "header flip at {pos}: unexpected error {err}"
            );
        } else {
            resume_and_check(&journal, None, &ref_outcome, &format!("flip at {pos}"));
        }
    }
}

/// Same sweep with a checkpoint alongside: the checkpoint may only ever
/// *improve* recovery, never change the outcome.
#[test]
fn truncation_with_checkpoint_resumes_identically() {
    let dir = test_dir("fi-truncate-ckpt");
    let journal = dir.join("s.journal");
    let ckpt = dir.join("s.ckpt");
    let mut sink =
        DetSink(JournalSink::create(&journal, Some(&ckpt), opts()).expect("create journal"));
    let mut oracle = PerfectOracle::new(truth(N));
    let ref_outcome =
        run_session_with_sink(&mut engine(), &mut oracle, SessionConfig::default(), &mut sink)
            .expect("journaled run");
    sink.0.finish().expect("final sync");
    let ref_bytes = std::fs::read(&journal).expect("read journal");
    let ref_ckpt = std::fs::read(&ckpt).expect("read checkpoint");

    let cut_journal = dir.join("cut.journal");
    let cut_ckpt = dir.join("cut.ckpt");
    for cut in 0..=ref_bytes.len() {
        std::fs::write(&cut_journal, &ref_bytes[..cut]).expect("write cut journal");
        std::fs::write(&cut_ckpt, &ref_ckpt).expect("write checkpoint copy");
        resume_and_check(
            &cut_journal,
            Some(&cut_ckpt),
            &ref_outcome,
            &format!("cut at {cut} with checkpoint"),
        );
    }
}

/// The journal is gone entirely (or reduced to garbage shorter than its
/// header) but a checkpoint survives: the session still resumes to the
/// reference outcome via the rebase path.
#[test]
fn checkpoint_only_recovery_resumes_identically() {
    let dir = test_dir("fi-ckpt-only");
    let journal = dir.join("s.journal");
    let ckpt = dir.join("s.ckpt");
    // Checkpoint after every iteration, then interrupt by dropping the
    // journal mid-run: emulate with a full run + a journal cut to its first
    // 100 bytes (inside iteration 0's records).
    let mut sink =
        DetSink(JournalSink::create(&journal, Some(&ckpt), opts()).expect("create journal"));
    let mut oracle = PerfectOracle::new(truth(N));
    let ref_outcome =
        run_session_with_sink(&mut engine(), &mut oracle, SessionConfig::default(), &mut sink)
            .expect("journaled run");
    sink.0.finish().expect("final sync");

    for keep in [0usize, 3, 8, 100] {
        let bytes = std::fs::read(&journal).expect("read journal");
        let cut_journal = dir.join(format!("cut-{keep}.journal"));
        std::fs::write(&cut_journal, &bytes[..keep]).expect("write cut journal");
        let cut_ckpt = dir.join(format!("cut-{keep}.ckpt"));
        std::fs::copy(&ckpt, &cut_ckpt).expect("copy checkpoint");
        let (sink, recovered) =
            JournalSink::resume(&cut_journal, Some(&cut_ckpt), opts()).expect("resume");
        assert!(recovered.from_checkpoint, "keep={keep}: checkpoint should lead recovery");
        assert!(recovered.needs_rebase, "keep={keep}");
        let config = recovered.config.expect("config from checkpoint");
        let mut sink = DetSink(sink);
        let mut oracle = PerfectOracle::new(truth(N));
        let resumed =
            resume_session(&mut engine(), &mut oracle, config, recovered.state, &mut sink)
                .expect("resumed run");
        assert_bitwise_eq(&resumed, &ref_outcome, &format!("checkpoint-only keep={keep}"));
        // The rebased journal must now stand alone.
        let replayed = recover(&cut_journal, None).expect("replay rebased journal");
        assert_bitwise_eq(
            &replayed.state.outcome,
            &ref_outcome,
            &format!("checkpoint-only keep={keep} (replay)"),
        );
    }
}
