//! Property: for ANY generated task (schema size, score matrix, strategy,
//! seed) and ANY journal cut point, crash-then-resume produces a
//! `SessionOutcome` bitwise identical to the uninterrupted run.

mod common;

use common::{source, test_dir, truth, DetSink};
use lsm_core::{
    resume_session, run_session_with_sink, PerfectOracle, PinnedBaselineEngine, SelectionStrategy,
    SessionConfig,
};
use lsm_schema::{AttrId, ScoreMatrix};
use lsm_store::{JournalOptions, JournalSink, SyncPolicy};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_scores(n: usize, seed: u64) -> ScoreMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut m = ScoreMatrix::zeros(n, 2 * n);
    for s in 0..n as u32 {
        for t in 0..2 * n as u32 {
            m.set(AttrId(s), AttrId(t), rng.gen_range(0.0..1.0));
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn resume_from_any_cut_is_bitwise_identical(
        n in 3usize..6,
        random_strategy in any::<bool>(),
        labels_per_iter in 1usize..3,
        seed in any::<u64>(),
        scores_seed in any::<u64>(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let dir = test_dir("proptest-resume");
        let journal = dir.join("s.journal");
        let ckpt = dir.join("s.ckpt");
        let config = SessionConfig {
            labels_per_iter,
            strategy: if random_strategy {
                SelectionStrategy::Random
            } else {
                SelectionStrategy::LeastConfidentAnchor
            },
            seed,
            ..Default::default()
        };
        let scores = random_scores(n, scores_seed);
        let opts = JournalOptions { checkpoint_every: 2, sync: SyncPolicy::Never };

        // Uninterrupted reference.
        let mut sink = DetSink(JournalSink::create(&journal, Some(&ckpt), opts).expect("create"));
        let mut engine = PinnedBaselineEngine::new(source(n), scores.clone());
        let mut oracle = PerfectOracle::new(truth(n));
        let reference = run_session_with_sink(&mut engine, &mut oracle, config, &mut sink)
            .expect("journaled run");
        sink.0.finish().expect("finish");

        // Crash at an arbitrary byte, resume, compare.
        let bytes = std::fs::read(&journal).expect("read journal");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut = cut.min(bytes.len());
        std::fs::write(&journal, &bytes[..cut]).expect("cut journal");

        let (sink, recovered) = JournalSink::resume(&journal, Some(&ckpt), opts).expect("resume");
        let mut sink = DetSink(sink);
        let mut engine = PinnedBaselineEngine::new(source(n), scores);
        let mut oracle = PerfectOracle::new(truth(n));
        let resumed = resume_session(
            &mut engine,
            &mut oracle,
            recovered.config.unwrap_or(config),
            recovered.state,
            &mut sink,
        )
        .expect("resumed run");
        sink.0.finish().expect("finish");

        prop_assert_eq!(&resumed, &reference);
        for (a, b) in resumed.response_times.iter().zip(&reference.response_times) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
