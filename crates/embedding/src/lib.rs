//! # lsm-embedding
//!
//! A fastText-style word-embedding surrogate.
//!
//! The paper's word-embedding featurizer computes "the cosine similarity
//! between the embedding representations of the attribute names" using
//! pre-trained FastText vectors. Offline, we reproduce the two properties of
//! FastText that matter for schema matching:
//!
//! 1. **Subword robustness** — FastText represents a word as the sum of its
//!    character-n-gram vectors, so morphological variants land nearby. We
//!    hash character n-grams (3..=5, with boundary markers) into
//!    deterministic pseudo-random unit vectors and average them.
//! 2. **Distributional synonymy** — words that co-occur in the pre-training
//!    corpus ("discount" / "markdown") end up close. We source this from the
//!    lexicon: every *public* surface form of a concept is pulled toward the
//!    concept's anchor vector. Private customer jargon gets no anchor —
//!    exactly as real FastText has never seen a customer's invented
//!    abbreviations.
//!
//! The result is an [`EmbeddingSpace`] with the same API surface the
//! featurizer needs: `phrase_vector` and `name_similarity` (cosine).

#![forbid(unsafe_code)]

pub mod space;

pub use space::{EmbeddingConfig, EmbeddingSpace};
