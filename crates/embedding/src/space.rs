//! The embedding space: hashed subword vectors + lexicon concept anchors.

use lsm_lexicon::Lexicon;
use lsm_text::tokenize;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock};

/// Configuration of the embedding space.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Smallest character n-gram.
    pub min_gram: usize,
    /// Largest character n-gram.
    pub max_gram: usize,
    /// Weight of the subword (lexical) component.
    pub subword_weight: f32,
    /// Weight of the concept (semantic) component.
    pub concept_weight: f32,
    /// Seed for the deterministic vector construction.
    pub seed: u64,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            dim: 64,
            min_gram: 3,
            max_gram: 5,
            subword_weight: 0.8,
            concept_weight: 0.85,
            seed: 0xfa57_7e87,
        }
    }
}

/// A fixed (non-trainable) embedding space over a lexicon — the pre-trained
/// FastText stand-in.
#[derive(Debug, Clone)]
pub struct EmbeddingSpace {
    config: EmbeddingConfig,
    /// One unit anchor vector per concept, indexed by `ConceptId`.
    concept_anchors: Vec<Vec<f32>>,
    /// Borrowed view of the lexicon's public phrase knowledge, flattened:
    /// joined public phrase → concept index. Ordered maps keep every
    /// conceivable traversal of the concept indexes deterministic.
    phrase_concepts: BTreeMap<String, Vec<usize>>,
    /// token → concept indices with that token in a public phrasing.
    token_concepts: BTreeMap<String, Vec<usize>>,
    /// Memoized identifier vectors. Vector construction hashes dozens of
    /// character n-grams, and matchers query the same attribute names
    /// millions of times across the candidate product — the cache turns
    /// that into one construction per name. Shared across clones.
    /// Lookup-only (never iterated), so a HashMap stays deterministic.
    identifier_cache: Arc<RwLock<HashMap<String, Vec<f32>>>>,
    /// Memoized per-token vectors (phrase vectors average these).
    token_cache: Arc<RwLock<HashMap<String, Vec<f32>>>>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn unit_vector_from_seed(seed: u64, dim: usize) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    normalize(&mut v);
    v
}

fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

fn add_scaled(acc: &mut [f32], v: &[f32], s: f32) {
    for (a, b) in acc.iter_mut().zip(v) {
        *a += b * s;
    }
}

/// Cosine similarity of two equal-length vectors; 0.0 if either is zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na * nb)) as f64
}

impl EmbeddingSpace {
    /// Builds the space from a lexicon. Deterministic for a given
    /// `(lexicon, config)` pair.
    pub fn new(lexicon: &Lexicon, config: EmbeddingConfig) -> Self {
        // Base direction per concept, seeded from the canonical phrase so
        // the space is stable under concept reordering.
        let bases: Vec<Vec<f32>> = lexicon
            .concepts()
            .iter()
            .map(|c| {
                unit_vector_from_seed(
                    config.seed ^ fnv1a(c.canonical_phrase().as_bytes()),
                    config.dim,
                )
            })
            .collect();
        // Real distributional embeddings are *crowded*: related words
        // ("price", "cost", "amount") share directions, and same-domain
        // words interfere. Mix each anchor with its related concepts and a
        // deterministic handful of same-domain neighbours so that synonym
        // retrieval over a large ISS is noisy, as it is with real FastText.
        let mut concept_anchors = Vec::with_capacity(lexicon.len());
        for c in lexicon.concepts() {
            let mut anchor = bases[c.id.index()].clone();
            for &rel in &c.related {
                add_scaled(&mut anchor, &bases[rel.index()], 0.45);
            }
            let same_domain: Vec<usize> = lexicon
                .concepts()
                .iter()
                .filter(|o| o.domain == c.domain && o.id != c.id)
                .map(|o| o.id.index())
                .collect();
            // Crowding models interference inside a *large* vocabulary;
            // with only a handful of domain concepts it would just erase
            // the signal, so require a realistic neighbourhood size.
            if same_domain.len() >= 8 {
                let h = fnv1a(c.canonical_phrase().as_bytes());
                for k in 0..3u64 {
                    let pick = same_domain[(h.wrapping_mul(2654435761).wrapping_add(k * 40503)
                        % same_domain.len() as u64)
                        as usize];
                    add_scaled(&mut anchor, &bases[pick], 0.30);
                }
            }
            normalize(&mut anchor);
            concept_anchors.push(anchor);
        }
        let mut phrase_concepts: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut token_concepts: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for c in lexicon.concepts() {
            for phrasing in c.public_phrasings() {
                phrase_concepts.entry(phrasing.join(" ")).or_default().push(c.id.index());
                for token in phrasing {
                    let entry = token_concepts.entry(token.clone()).or_default();
                    if !entry.contains(&c.id.index()) {
                        entry.push(c.id.index());
                    }
                }
            }
        }
        EmbeddingSpace {
            config,
            concept_anchors,
            phrase_concepts,
            token_concepts,
            identifier_cache: Arc::new(RwLock::new(HashMap::new())),
            token_cache: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// The subword (character n-gram) component of a token's vector.
    fn subword_vector(&self, token: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.config.dim];
        let padded: Vec<char> =
            std::iter::once('<').chain(token.chars()).chain(std::iter::once('>')).collect();
        let mut grams = 0usize;
        for n in self.config.min_gram..=self.config.max_gram {
            if padded.len() < n {
                continue;
            }
            for w in padded.windows(n) {
                let s: String = w.iter().collect();
                let v =
                    unit_vector_from_seed(self.config.seed ^ fnv1a(s.as_bytes()), self.config.dim);
                add_scaled(&mut acc, &v, 1.0);
                grams += 1;
            }
        }
        if grams == 0 {
            // Token shorter than every gram size: hash the whole token.
            let v =
                unit_vector_from_seed(self.config.seed ^ fnv1a(token.as_bytes()), self.config.dim);
            acc = v;
        }
        normalize(&mut acc);
        acc
    }

    /// The embedding of one token: subword vector plus concept anchors of
    /// every concept whose public vocabulary mentions the token. Memoized.
    pub fn token_vector(&self, token: &str) -> Vec<f32> {
        if let Some(v) = self.token_cache.read().expect("token cache poisoned").get(token) {
            return v.clone();
        }
        let v = self.token_vector_uncached(token);
        self.token_cache
            .write()
            .expect("token cache poisoned")
            .insert(token.to_string(), v.clone());
        v
    }

    fn token_vector_uncached(&self, token: &str) -> Vec<f32> {
        let mut acc = self.subword_vector(token);
        for x in acc.iter_mut() {
            *x *= self.config.subword_weight;
        }
        if let Some(cs) = self.token_concepts.get(token) {
            let share = self.config.concept_weight / cs.len() as f32;
            for &ci in cs {
                add_scaled(&mut acc, &self.concept_anchors[ci], share);
            }
        }
        normalize(&mut acc);
        acc
    }

    /// The embedding of a token sequence: mean of token vectors, plus a
    /// strong concept anchor when the *whole phrase* is a public surface
    /// form (multi-word synonymy: "unit count" → *quantity*).
    pub fn phrase_vector(&self, tokens: &[String]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.config.dim];
        if tokens.is_empty() {
            return acc;
        }
        for t in tokens {
            let v = self.token_vector(t);
            add_scaled(&mut acc, &v, 1.0 / tokens.len() as f32);
        }
        if let Some(cs) = self.phrase_concepts.get(&tokens.join(" ")) {
            let share = self.config.concept_weight / cs.len() as f32;
            for &ci in cs {
                add_scaled(&mut acc, &self.concept_anchors[ci], share);
            }
        }
        normalize(&mut acc);
        acc
    }

    /// The embedding of a raw identifier (`TransactionLine.discount_pct`
    /// style): tokenized via [`lsm_text::tokenize()`], then
    /// [`phrase_vector`](Self::phrase_vector). Memoized.
    pub fn identifier_vector(&self, identifier: &str) -> Vec<f32> {
        if let Some(v) =
            self.identifier_cache.read().expect("identifier cache poisoned").get(identifier)
        {
            return v.clone();
        }
        let v = self.phrase_vector(&tokenize(identifier));
        self.identifier_cache
            .write()
            .expect("identifier cache poisoned")
            .insert(identifier.to_string(), v.clone());
        v
    }

    /// Cosine similarity between two identifiers — the word-embedding
    /// featurizer of Section IV-C2.
    pub fn name_similarity(&self, a: &str, b: &str) -> f64 {
        cosine(&self.identifier_vector(a), &self.identifier_vector(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_lexicon::{ConceptBuilder, Domain, Lexicon};

    fn lex() -> Lexicon {
        Lexicon::assemble(vec![
            ConceptBuilder::attribute(Domain::Retail, "quantity")
                .syn("unit count")
                .private("item amount")
                .desc("units"),
            ConceptBuilder::attribute(Domain::Retail, "price change percentage")
                .syn("markdown rate")
                .private("discount")
                .desc("reduction"),
            ConceptBuilder::attribute(Domain::Retail, "store name").desc("name of store"),
        ])
    }

    fn space() -> EmbeddingSpace {
        EmbeddingSpace::new(&lex(), EmbeddingConfig::default())
    }

    #[test]
    fn identical_names_have_similarity_one() {
        let s = space();
        assert!((s.name_similarity("quantity", "quantity") - 1.0).abs() < 1e-5);
    }

    #[test]
    fn public_synonyms_are_close() {
        let s = space();
        let syn = s.name_similarity("unit_count", "quantity");
        let unrelated = s.name_similarity("store_name", "quantity");
        assert!(syn > 0.5, "synonym similarity {syn}");
        assert!(syn > unrelated + 0.2, "syn {syn} vs unrelated {unrelated}");
    }

    #[test]
    fn private_jargon_gets_no_anchor() {
        let s = space();
        // "discount" is private jargon for price change percentage: the
        // embedding space (FastText surrogate) must NOT connect them.
        let private = s.name_similarity("discount", "price_change_percentage");
        let public = s.name_similarity("markdown_rate", "price_change_percentage");
        assert!(public > private + 0.2, "public {public} vs private {private}");
    }

    #[test]
    fn morphological_variants_share_subwords() {
        let s = space();
        let close = s.name_similarity("pricing", "price");
        let far = s.name_similarity("zebra", "price");
        assert!(close > far, "close {close} vs far {far}");
    }

    #[test]
    fn vectors_are_unit_length_and_deterministic() {
        let s = space();
        let v = s.identifier_vector("unit_count");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
        let s2 = space();
        assert_eq!(v, s2.identifier_vector("unit_count"));
    }

    #[test]
    fn empty_identifier_yields_zero_similarity() {
        let s = space();
        assert_eq!(s.name_similarity("", "quantity"), 0.0);
        assert_eq!(s.name_similarity("--", "quantity"), 0.0);
    }

    #[test]
    fn short_tokens_still_embed() {
        let s = space();
        let v = s.identifier_vector("id");
        assert!(v.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn similarity_is_symmetric() {
        let s = space();
        let ab = s.name_similarity("unit_count", "price_change_percentage");
        let ba = s.name_similarity("price_change_percentage", "unit_count");
        assert!((ab - ba).abs() < 1e-6);
    }
}
