//! Retrieval-quality properties of the embedding space over the full
//! lexicon — the FastText surrogate must behave like a distributional
//! embedding: public synonyms retrieve well, private jargon does not, and
//! the space is deterministic.

use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::{full_lexicon, ConceptKind};

#[test]
fn public_synonyms_retrieve_their_concept_better_than_chance() {
    let lexicon = full_lexicon();
    let space = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    // For each attribute concept with a public synonym, check that the
    // canonical phrase is ranked above the median against 40 distractors.
    let attrs: Vec<_> = lexicon
        .concepts()
        .iter()
        .filter(|c| c.kind == ConceptKind::Attribute && !c.public_synonyms.is_empty())
        .collect();
    let mut wins = 0;
    let mut total = 0;
    for (i, c) in attrs.iter().enumerate().take(60) {
        let query = space.phrase_vector(&c.public_synonyms[0]);
        let own = lsm_embedding::space::cosine(&query, &space.phrase_vector(&c.canonical));
        let mut beaten = 0;
        let mut n = 0;
        for (j, other) in attrs.iter().enumerate().take(60) {
            if i == j {
                continue;
            }
            let d = lsm_embedding::space::cosine(&query, &space.phrase_vector(&other.canonical));
            if own > d {
                beaten += 1;
            }
            n += 1;
        }
        total += 1;
        if beaten * 2 > n {
            wins += 1;
        }
    }
    assert!(
        wins * 10 >= total * 9,
        "public synonyms should retrieve their concept: {wins}/{total}"
    );
}

#[test]
fn private_jargon_retrieves_worse_than_public_synonyms() {
    let lexicon = full_lexicon();
    let space = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let mut public_sims = Vec::new();
    let mut private_sims = Vec::new();
    for c in lexicon.concepts() {
        let canonical = space.phrase_vector(&c.canonical);
        for syn in &c.public_synonyms {
            public_sims.push(lsm_embedding::space::cosine(&space.phrase_vector(syn), &canonical));
        }
        for syn in &c.private_synonyms {
            private_sims.push(lsm_embedding::space::cosine(&space.phrase_vector(syn), &canonical));
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&public_sims) > mean(&private_sims) + 0.15,
        "public {:.3} vs private {:.3}",
        mean(&public_sims),
        mean(&private_sims)
    );
}

#[test]
fn space_is_deterministic_across_instances() {
    let lexicon = full_lexicon();
    let a = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let b = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    for name in ["order_total_amount", "discount", "qty", "European_Article_Number"] {
        assert_eq!(a.identifier_vector(name), b.identifier_vector(name), "{name}");
    }
}
