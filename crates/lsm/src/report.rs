//! Session transcripts and human-readable reports.
//!
//! [`RecordingOracle`] wraps any [`Oracle`] and records the interaction —
//! which attributes the user was asked to label and what they answered —
//! without touching the session driver. [`render_report`] turns the
//! recording plus the [`SessionOutcome`] into the kind of summary an
//! operator would attach to an onboarding ticket.

use lsm_core::metrics::SessionOutcome;
use lsm_core::Oracle;
use lsm_schema::{AttrId, GroundTruth, Schema};

/// One recorded labeling interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelEvent {
    /// The source attribute the strategy selected.
    pub source: AttrId,
    /// The target the (possibly noisy) user answered with.
    pub answered: AttrId,
    /// Whether the answer matches the ground truth.
    pub correct: bool,
}

/// An [`Oracle`] wrapper that records every labeling request.
pub struct RecordingOracle<O: Oracle> {
    inner: O,
    events: Vec<LabelEvent>,
}

impl<O: Oracle> RecordingOracle<O> {
    /// Wraps an oracle.
    pub fn new(inner: O) -> Self {
        RecordingOracle { inner, events: Vec::new() }
    }

    /// The recorded labeling events, in order.
    pub fn events(&self) -> &[LabelEvent] {
        &self.events
    }

    /// Unwraps the inner oracle.
    pub fn into_inner(self) -> (O, Vec<LabelEvent>) {
        (self.inner, self.events)
    }
}

impl<O: Oracle> Oracle for RecordingOracle<O> {
    fn label(&mut self, source_attr: AttrId) -> AttrId {
        let answered = self.inner.label(source_attr);
        let correct = self.inner.truth().is_correct(source_attr, answered);
        self.events.push(LabelEvent { source: source_attr, answered, correct });
        answered
    }

    fn confirms(&self, source_attr: AttrId, target_attr: AttrId) -> bool {
        self.inner.confirms(source_attr, target_attr)
    }

    fn truth(&self) -> &GroundTruth {
        self.inner.truth()
    }
}

/// Renders a human-readable session report: headline savings, the learning
/// curve, and the list of attributes the user had to label by hand.
pub fn render_report(
    title: &str,
    outcome: &SessionOutcome,
    events: &[LabelEvent],
    source: &Schema,
    target: &Schema,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("# Matching session: {title}\n\n"));
    let last = outcome.curve.last();
    out.push_str(&format!(
        "- attributes matched correctly: {}/{}\n",
        last.map(|p| p.matched_correct).unwrap_or(0),
        outcome.total_attributes
    ));
    out.push_str(&format!(
        "- labels provided: {} ({:.0}% of the schema; {:.0}% saved vs manual labeling)\n",
        outcome.labels_used,
        outcome.labeling_cost_pct(),
        100.0 - outcome.labeling_cost_pct()
    ));
    out.push_str(&format!("- suggestion reviews: {}\n", outcome.reviews_done));
    out.push_str(&format!(
        "- mean response time: {:.2}s over {} rounds\n",
        outcome.mean_response_time(),
        outcome.response_times.len()
    ));

    out.push_str("\n## Learning curve (labels% → correct%)\n\n");
    for p in &outcome.curve {
        out.push_str(&format!("- {:>5.1}% → {:>5.1}%\n", p.labels_pct(), p.correct_pct()));
    }

    if !events.is_empty() {
        out.push_str("\n## Attributes labeled by the user\n\n");
        for e in events {
            out.push_str(&format!(
                "- {} → {}{}\n",
                source.qualified_name(e.source),
                target.qualified_name(e.answered),
                if e.correct { "" } else { "  (incorrect label!)" }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_core::session::PinnedBaselineEngine;
    use lsm_core::{run_session, PerfectOracle, SessionConfig};
    use lsm_schema::{DataType, ScoreMatrix};

    fn fixture() -> (Schema, Schema, GroundTruth, ScoreMatrix) {
        let source = Schema::builder("s")
            .entity("A")
            .attr("x", DataType::Text)
            .attr("y", DataType::Text)
            .attr("z", DataType::Text)
            .build()
            .unwrap();
        let target = Schema::builder("t")
            .entity("B")
            .attr("u", DataType::Text)
            .attr("v", DataType::Text)
            .attr("w", DataType::Text)
            .attr("q", DataType::Text)
            .build()
            .unwrap();
        let truth = GroundTruth::from_pairs([
            (AttrId(0), AttrId(0)),
            (AttrId(1), AttrId(1)),
            (AttrId(2), AttrId(2)),
        ]);
        // Only row 0's truth is suggested; rows 1-2 rank three wrong
        // candidates on top and therefore need direct labels.
        let mut scores = ScoreMatrix::zeros(3, 4);
        scores.set(AttrId(0), AttrId(0), 0.9);
        scores.set(AttrId(1), AttrId(3), 0.9);
        scores.set(AttrId(1), AttrId(0), 0.5);
        scores.set(AttrId(1), AttrId(2), 0.4);
        scores.set(AttrId(2), AttrId(3), 0.8);
        scores.set(AttrId(2), AttrId(0), 0.5);
        scores.set(AttrId(2), AttrId(1), 0.4);
        (source, target, truth, scores)
    }

    #[test]
    fn recording_oracle_captures_label_events() {
        let (source, target, truth, scores) = fixture();
        let mut engine = PinnedBaselineEngine::new(source.clone(), scores);
        let mut oracle = RecordingOracle::new(PerfectOracle::new(truth));
        let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
        assert_eq!(outcome.labels_used, 2);
        assert_eq!(oracle.events().len(), 2);
        assert!(oracle.events().iter().all(|e| e.correct));
        let _ = target;
    }

    #[test]
    fn report_contains_headline_and_labeled_attrs() {
        let (source, target, truth, scores) = fixture();
        let mut engine = PinnedBaselineEngine::new(source.clone(), scores);
        let mut oracle = RecordingOracle::new(PerfectOracle::new(truth));
        let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
        let report = render_report("fixture", &outcome, oracle.events(), &source, &target);
        assert!(report.contains("attributes matched correctly: 3/3"));
        assert!(report.contains("Attributes labeled by the user"));
        assert!(report.contains("A.y"));
        assert!(!report.contains("incorrect label"));
    }
}
