//! # lsm
//!
//! The facade crate of the Learned Schema Matcher (LSM) reproduction —
//! re-exports the full public API so downstream users depend on one crate.
//!
//! LSM (Zhang et al., *Schema Matching using Pre-Trained Language Models*,
//! ICDE 2023) maps a customer's relational schema onto a large
//! industry-specific schema without touching the customer's data, combining
//! a fine-tuned language-model featurizer with active learning.
//!
//! ## Quick start
//!
//! ```
//! use lsm::prelude::*;
//!
//! // A matching task: customer schema, ISS, reference matches.
//! let dataset = lsm::datasets::public_data::movielens_imdb();
//!
//! // Shared pre-trained artifacts.
//! let lexicon = lsm::lexicon::full_lexicon();
//! let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
//!
//! // A fast, BERT-less matcher (enable BERT for full quality).
//! let config = LsmConfig { use_bert: false, ..Default::default() };
//! let matcher = LsmMatcher::new(&dataset.source, &dataset.target, &embedding, None, config);
//! let scores = matcher.predict(&LabelStore::new());
//! let sources: Vec<_> = dataset.source.attr_ids().collect();
//! let top3 = scores.top_k_accuracy(&dataset.ground_truth, &sources, 3);
//! assert!(top3 > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use lsm_baselines as baselines;
pub use lsm_core as core;
pub use lsm_datasets as datasets;
pub use lsm_embedding as embedding;
pub use lsm_lexicon as lexicon;
pub use lsm_nn as nn;
pub use lsm_schema as schema;
pub use lsm_store as store;
pub use lsm_text as text;

/// The most common imports in one place.
pub mod prelude {
    pub use lsm_baselines::{MatchContext, Matcher};
    pub use lsm_core::{
        run_session, BertFeaturizer, BertFeaturizerConfig, LabelStore, LsmConfig, LsmMatcher,
        NoisyOracle, Oracle, PerfectOracle, SelectionStrategy, SessionConfig,
    };
    pub use lsm_datasets::Dataset;
    pub use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
    pub use lsm_lexicon::{full_lexicon, Lexicon};
    pub use lsm_schema::{
        AttrId, DataType, EntityId, GroundTruth, Schema, SchemaStats, ScoreMatrix,
    };
}
