//! # lsm-serve
//!
//! A long-lived matching daemon multiplexing concurrent active-learning
//! sessions over shared read-only model state.
//!
//! The interactive CLI (`lsm session`) builds the embedding space and the
//! pre-trained featurizer, runs exactly one simulated session, and exits
//! — fine for experiments, wasteful for serving: a deployment matches
//! many customer schemata against the *same* target ISS, so the expensive
//! state (lexicon, embedding space, MLM + classifier pre-training, and
//! the pooled encodings of every ISS attribute) is identical across
//! sessions. This crate keeps all of it resident:
//!
//! * [`SharedState`] — lexicon, embedding space, and memoized pre-trained
//!   featurizers behind an `Arc`, cloned per session so fine-tuning stays
//!   session-local;
//! * [`EncodingCache`] — a bounded, deterministically-evicting (FIFO)
//!   cross-session cache of pooled attribute encodings, plugged into
//!   `LsmMatcher::new_with_cache`; hits are bitwise identical to what an
//!   uncached session would compute;
//! * [`ServeSession`] — one journal-backed session whose event stream
//!   follows the in-process driver exactly, so a killed daemon resumes
//!   mid-protocol from `<journal_dir>/<id>.journal`;
//! * [`registry`] — the TCP-free concurrency core: the
//!   [`SessionRegistry`] (two-level map/slot locking) and the
//!   [`ShutdownFlag`] handshake, built on `lsm_check::sync` so the model
//!   checker explores their interleavings exhaustively (`tests/model.rs`);
//! * [`server`] — a dependency-free TCP line protocol
//!   (`OPEN`/`SUGGEST`/`LABEL`/`EXPORT`/`CLOSE`, JSON payloads) with
//!   per-connection read timeouts and clock-free graceful shutdown.
//!
//! `serve_load` in `lsm-bench` drives N concurrent sessions against a
//! spawned daemon and records label-round latency percentiles, session
//! throughput, and the cache hit rate into `results/BENCH_serve.json`.

#![forbid(unsafe_code)]

pub mod cache;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod session;
pub mod state;

pub use cache::{CacheStats, EncodingCache};
pub use protocol::ProtocolError;
pub use registry::{OpenError, SessionRegistry, ShutdownFlag};
pub use server::{spawn, ServeConfig, ServerHandle};
pub use session::ServeSession;
pub use state::{ServeModel, SharedState};

#[cfg(test)]
mod send_assertions {
    //! The daemon moves sessions and shared state across threads; these
    //! compile-time assertions pin the auto-traits that makes sound.
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_state_and_sessions_cross_threads() {
        assert_send_sync::<SharedState>();
        assert_send_sync::<EncodingCache>();
        assert_send::<ServeSession>();
        assert_send_sync::<ServerHandle>();
    }
}
