//! The shared, bounded pooled-encoding cache.
//!
//! Every concurrent session of the daemon encodes its attribute texts
//! through the same frozen encoder, so the pooled vector of a repeated
//! attribute (the target ISS is shared by every customer session) is
//! identical work done over and over. [`EncodingCache`] is the
//! cross-session store [`lsm_core::PooledCache`] plugs into
//! `pooled_many_cached`: keyed by the active encoder backend plus the
//! exact token-id sequence, so a hit returns a vector the encoder itself
//! produced earlier through the identical code path — bitwise equal to
//! what an uncached session would compute.
//!
//! ## Determinism
//!
//! The cache never *changes* a result, only skips recomputing it, so the
//! matching pipeline stays bitwise reproducible under any interleaving of
//! sessions. Internally:
//!
//! * entries live in a `BTreeMap` keyed by a 64-bit FNV-1a hash of
//!   `(backend, ids)`; the full key is stored and verified on every hit,
//!   so a hash collision degrades to a miss instead of returning another
//!   attribute's vector,
//! * a colliding *insert* (same hash, different key) is declined rather
//!   than overwriting — first writer wins, deterministically,
//! * eviction is FIFO in insertion order (a `VecDeque` of hashes), not
//!   LRU: the eviction sequence depends only on the order of first
//!   insertion, which every interleaving of identical sessions produces
//!   the same way once the cache is driven single-threaded, and which
//!   never affects results in any case — only hit rates.
//!
//! Hits, misses, insertions, and evictions are counted per-instance
//! *under the same lock as the map* (readable via [`CacheStats`]) and
//! mirrored to the process-wide `lsm-obs` counters
//! (`serve_cache_hits`/`…_misses`/`…_evictions`) so the serve bench and
//! the obs snapshot agree. Keeping the counters inside the lock makes
//! every [`CacheStats`] a *consistent* snapshot: `insertions − evictions`
//! always equals the entry count, and a lookup is never visible in the
//! map without being visible in the stats. (An earlier revision bumped
//! per-instance atomics after dropping the lock; the model checker found
//! the torn snapshots that allows — see `tests/model.rs`.)

use lsm_check::sync::Mutex;
use lsm_core::PooledCache;
use lsm_nn::Tensor;
use std::collections::{BTreeMap, VecDeque};

/// One cached pooled vector plus the full key that produced it.
struct Entry {
    backend: String,
    ids: Vec<u32>,
    pooled: Tensor,
}

struct Inner {
    map: BTreeMap<u64, Entry>,
    /// Insertion order of the hashes in `map` — the FIFO eviction queue.
    order: VecDeque<u64>,
    /// Per-instance counters, updated under this lock so a [`CacheStats`]
    /// snapshot is always internally consistent.
    stats: CacheStats,
}

/// Counter snapshot of one cache instance. Taken under the cache lock,
/// so the fields are mutually consistent: `insertions - evictions` is
/// the entry count at the moment of the snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Bounded cross-session pooled-encoding cache (see module docs).
pub struct EncodingCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

/// 64-bit FNV-1a over the backend name and the token-id bytes. Stable
/// across processes (no `RandomState`), cheap, and collision-checked at
/// the call sites.
fn key_hash(backend: &str, ids: &[u32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in backend.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h = (h ^ 0xff).wrapping_mul(PRIME); // separator: backend | ids
    for &id in ids {
        for b in id.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    h
}

impl EncodingCache {
    /// A cache holding at most `capacity` pooled vectors. Capacity 0 is a
    /// pass-through (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        EncodingCache {
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                order: VecDeque::new(),
                stats: CacheStats::default(),
            }),
            capacity,
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consistent snapshot of the per-instance counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

impl PooledCache for EncodingCache {
    fn get(&self, backend: &str, ids: &[u32]) -> Option<Tensor> {
        let h = key_hash(backend, ids);
        let mut inner = self.inner.lock();
        // Full-key verification: a hash collision is a miss, never a
        // wrong vector.
        let pooled = match inner.map.get(&h) {
            Some(e) if e.backend == backend && e.ids == ids => Some(e.pooled.clone()),
            _ => None,
        };
        if pooled.is_some() {
            inner.stats.hits += 1;
        } else {
            inner.stats.misses += 1;
        }
        drop(inner);
        // The process-wide obs mirrors stay outside the lock: they are
        // monotonic totals with their own synchronization, not part of
        // this instance's consistent snapshot.
        if pooled.is_some() {
            lsm_obs::add(lsm_obs::Counter::ServeCacheHits, 1);
        } else {
            lsm_obs::add(lsm_obs::Counter::ServeCacheMisses, 1);
        }
        pooled
    }

    fn put(&self, backend: &str, ids: &[u32], pooled: &Tensor) {
        if self.capacity == 0 {
            return;
        }
        let h = key_hash(backend, ids);
        let mut evicted = 0u64;
        {
            let mut inner = self.inner.lock();
            // First writer wins: an existing entry — same key (concurrent
            // sessions racing on the same attribute compute identical
            // vectors anyway) or a colliding one — is never overwritten.
            if inner.map.contains_key(&h) {
                return;
            }
            while inner.map.len() >= self.capacity {
                match inner.order.pop_front() {
                    Some(old) => {
                        inner.map.remove(&old);
                        evicted += 1;
                    }
                    None => break,
                }
            }
            inner.map.insert(
                h,
                Entry { backend: backend.to_string(), ids: ids.to_vec(), pooled: pooled.clone() },
            );
            inner.order.push_back(h);
            inner.stats.insertions += 1;
            inner.stats.evictions += evicted;
        }
        if evicted > 0 {
            lsm_obs::add(lsm_obs::Counter::ServeCacheEvictions, evicted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(seed: f32) -> Tensor {
        Tensor::from_vec(1, 4, vec![seed, seed + 1.0, seed + 2.0, seed + 3.0])
    }

    #[test]
    fn get_after_put_returns_the_same_bits() {
        let cache = EncodingCache::new(8);
        let v = vec_of(0.5);
        cache.put("f32", &[1, 2, 3], &v);
        let got = cache.get("f32", &[1, 2, 3]).expect("hit");
        let same = got.data().iter().zip(v.data()).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "cached vector must be bitwise identical");
    }

    #[test]
    fn backend_is_part_of_the_key() {
        let cache = EncodingCache::new(8);
        cache.put("f32", &[1, 2, 3], &vec_of(0.0));
        assert!(cache.get("int8", &[1, 2, 3]).is_none(), "other backend must miss");
        assert!(cache.get("f32", &[1, 2]).is_none(), "other ids must miss");
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn eviction_is_fifo_in_insertion_order() {
        let cache = EncodingCache::new(2);
        cache.put("f32", &[1], &vec_of(1.0));
        cache.put("f32", &[2], &vec_of(2.0));
        cache.put("f32", &[3], &vec_of(3.0)); // evicts [1], the oldest
        assert!(cache.get("f32", &[1]).is_none(), "oldest entry must be evicted first");
        assert!(cache.get("f32", &[2]).is_some());
        assert!(cache.get("f32", &[3]).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn first_writer_wins_on_duplicate_put() {
        let cache = EncodingCache::new(8);
        cache.put("f32", &[7], &vec_of(1.0));
        cache.put("f32", &[7], &vec_of(9.0)); // declined, not overwritten
        let got = cache.get("f32", &[7]).expect("hit");
        assert_eq!(got.data()[0].to_bits(), 1.0f32.to_bits());
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn zero_capacity_is_a_pass_through() {
        let cache = EncodingCache::new(0);
        cache.put("f32", &[1], &vec_of(1.0));
        assert!(cache.get("f32", &[1]).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn stats_track_lookups() {
        let cache = EncodingCache::new(4);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.put("f32", &[1], &vec_of(1.0));
        cache.get("f32", &[1]);
        cache.get("f32", &[2]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }
}
