//! The TCP daemon: accept loop, per-connection threads, and the session
//! manager multiplexing every open session over one [`SharedState`].
//!
//! ## Locking discipline
//!
//! The concurrency core lives in [`crate::registry`], TCP-free so the
//! model checker can explore it exhaustively: a [`SessionRegistry`]
//! enforcing the two-level map-then-slot lock order (`OPEN` locks the
//! fresh slot before the map unlocks, so same-id requests queue without
//! blocking other sessions), and a [`ShutdownFlag`] for the graceful,
//! clock-free shutdown handshake. The shared featurizer-memo and
//! encoding-cache locks sit strictly below the slot lock in the order.
//!
//! ## Shutdown
//!
//! A `SHUTDOWN` request (or [`ServerHandle::shutdown`]) sets the flag;
//! the *first* requester pokes the listener with a loopback connect to
//! wake the blocking `accept`. Connection threads poll the flag between
//! reads (their sockets carry a read timeout), so the whole daemon
//! quiesces within one poll interval and every thread is joined. Open
//! sessions are *not* finalized — their journals stay at the last
//! committed iteration, which is exactly the crash-safe state `OPEN`
//! resumes from.

use crate::protocol::{parse_request, validate_session_id, ProtocolError, Request};
use crate::registry::{OpenError, SessionRegistry, ShutdownFlag};
use crate::session::ServeSession;
use crate::state::SharedState;
use lsm_check::sync::{Arc, Mutex};
use lsm_core::SessionConfig;
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Directory of per-session journals (`<id>.journal` + checkpoint).
    pub journal_dir: PathBuf,
    /// Pooled-encoding cache capacity, in entries.
    pub cache_capacity: usize,
    /// Threads each session's matcher may use. Sessions are already
    /// concurrent with each other, so the default keeps each engine
    /// single-threaded.
    pub engine_threads: usize,
    /// Seed for the generated customer datasets (the CLI uses 1).
    pub dataset_seed: u64,
    /// Session parameters for fresh sessions (resumed ones keep their
    /// journaled configuration).
    pub session: SessionConfig,
    /// Socket read timeout — the granularity at which idle connection
    /// threads notice a shutdown.
    pub read_timeout_ms: u64,
    /// Consecutive read timeouts before an idle connection is dropped
    /// (`read_timeout_ms × idle_timeout_polls` of silence).
    pub idle_timeout_polls: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7400".to_string(),
            journal_dir: PathBuf::from("serve-journals"),
            cache_capacity: 4096,
            engine_threads: 1,
            dataset_seed: 1,
            session: SessionConfig::default(),
            read_timeout_ms: 200,
            idle_timeout_polls: 1500,
        }
    }
}

struct Daemon {
    shared: SharedState,
    sessions: SessionRegistry<ServeSession>,
    config: ServeConfig,
    shutdown: ShutdownFlag,
    local_addr: Mutex<Option<SocketAddr>>,
}

impl Daemon {
    fn new(config: ServeConfig) -> Self {
        Daemon {
            shared: SharedState::new(config.cache_capacity),
            sessions: SessionRegistry::new(),
            config,
            shutdown: ShutdownFlag::new(),
            local_addr: Mutex::new(None),
        }
    }

    fn begin_shutdown(&self) {
        if self.shutdown.request() {
            // First requester: wake the blocking accept with a throwaway
            // loopback connection.
            let addr = *self.local_addr.lock();
            if let Some(addr) = addr {
                drop(TcpStream::connect(addr));
            }
        }
    }

    fn open(&self, req: crate::protocol::OpenRequest) -> Result<Value, ProtocolError> {
        validate_session_id(&req.session)?;
        let mut reply = None;
        let opened = self.sessions.open(&req.session, || {
            let session = ServeSession::open(
                &self.shared,
                &self.config.journal_dir,
                &req,
                self.config.session,
                self.config.engine_threads,
                self.config.dataset_seed,
            )?;
            reply = Some(session.open_reply());
            Ok(session)
        });
        match opened {
            Ok(()) => Ok(reply.expect("successful open built a reply")),
            Err(OpenError::Conflict) => {
                Err(ProtocolError::conflict(format!("session {:?} is already open", req.session)))
            }
            Err(OpenError::Build(e)) => Err(e),
        }
    }

    fn with_session<R>(
        &self,
        id: &str,
        f: impl FnOnce(&mut ServeSession) -> Result<R, ProtocolError>,
    ) -> Result<R, ProtocolError> {
        self.sessions
            .with(id, f)
            .ok_or_else(|| ProtocolError::not_found(format!("no open session {id:?}")))?
    }

    fn close(&self, id: &str) -> Result<Value, ProtocolError> {
        match self.sessions.close(id, |session| session.close()) {
            None => Err(ProtocolError::not_found(format!("no open session {id:?}"))),
            Some(Some(Err(e))) => Err(e),
            Some(_) => Ok(json!({ "ok": true, "session": id, "closed": true })),
        }
    }

    fn handle(&self, req: Request) -> Result<Value, ProtocolError> {
        match req {
            Request::Ping => Ok(json!({ "ok": true })),
            Request::Open(o) => self.open(o),
            Request::Suggest(r) => self.with_session(&r.session, |s| Ok(s.suggest_reply())),
            Request::Label(r) => self.with_session(&r.session, |s| s.label(&r.source, &r.target)),
            Request::Export(r) => self.with_session(&r.session, |s| Ok(s.export_reply())),
            Request::Close(r) => self.close(&r.session),
            Request::Shutdown => {
                self.begin_shutdown();
                Ok(json!({ "ok": true, "shutting_down": true }))
            }
        }
    }

    fn dispatch(&self, line: &str) -> Value {
        match parse_request(line) {
            Ok(req) => self.handle(req).unwrap_or_else(|e| e.to_reply()),
            Err(e) => e.to_reply(),
        }
    }
}

fn serve_connection(daemon: &Daemon, stream: TcpStream) {
    let poll = Duration::from_millis(daemon.config.read_timeout_ms.max(1));
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let clone = match stream.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    let mut reader = BufReader::new(clone);
    let mut writer = stream;
    let mut line = String::new();
    let mut idle = 0u32;
    loop {
        if daemon.shutdown.is_requested() {
            return;
        }
        // `line` is NOT cleared on a timeout: a partially received request
        // stays buffered and completes on a later read.
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed the connection
            Ok(_) => {
                idle = 0;
                let reply = daemon.dispatch(line.trim_end());
                line.clear();
                let mut text = reply.to_string();
                text.push('\n');
                if writer.write_all(text.as_bytes()).is_err() {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                idle += 1;
                if idle >= daemon.config.idle_timeout_polls {
                    return; // per-connection read timeout: drop the idler
                }
            }
            Err(_) => return,
        }
    }
}

fn accept_loop(daemon: Arc<Daemon>, listener: TcpListener) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if daemon.shutdown.is_requested() {
                    break; // the wake-up connect, or a straggler during shutdown
                }
                let d = Arc::clone(&daemon);
                connections.push(std::thread::spawn(move || serve_connection(&d, stream)));
            }
            Err(_) => {
                if daemon.shutdown.is_requested() {
                    break;
                }
            }
        }
    }
    for c in connections {
        drop(c.join());
    }
}

/// A running daemon: its bound address plus shutdown/join control.
pub struct ServerHandle {
    addr: SocketAddr,
    daemon: Arc<Daemon>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The address the daemon is listening on (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot of the shared pooled-encoding cache (the
    /// `serve_load` bench reads the hit rate from here so its numbers
    /// match this daemon instance, not the process-wide obs counters).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.daemon.shared.cache().stats()
    }

    /// Pre-trains `model`'s base featurizer now instead of on the first
    /// `OPEN` that asks for it. Blocks the caller; the daemon keeps
    /// accepting meanwhile.
    pub fn preload(&self, model: crate::state::ServeModel) {
        self.daemon.shared.preload(model);
    }

    /// Requests a graceful shutdown and waits for every connection thread
    /// to drain.
    pub fn shutdown(self) {
        self.daemon.begin_shutdown();
        drop(self.thread.join());
    }

    /// Blocks until the daemon shuts down (via the `SHUTDOWN` verb or
    /// [`shutdown`](Self::shutdown) from another thread).
    pub fn join(self) {
        drop(self.thread.join());
    }
}

/// Binds `config.addr`, builds the shared state, and starts the accept
/// loop on a background thread.
pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let daemon = Arc::new(Daemon::new(config));
    *daemon.local_addr.lock() = Some(addr);
    let d = Arc::clone(&daemon);
    let thread = std::thread::spawn(move || accept_loop(d, listener));
    Ok(ServerHandle { addr, daemon, thread })
}
