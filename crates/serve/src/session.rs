//! One journal-backed active-learning session, driven by protocol
//! requests instead of an in-process loop.
//!
//! The daemon replays the exact event discipline of
//! `lsm_core::session::drive`: every mutation is a [`SessionEvent`]
//! applied through [`SessionState::apply`] and mirrored to a
//! [`JournalSink`], with `IterationEnd` as the durability boundary. One
//! *round* is one paper iteration:
//!
//! 1. [`ServeSession::start_round`] — retrain + predict (the timed
//!    response), server-side review of every unmatched attribute's top-k
//!    against the dataset's ground truth (the datasets are generated, so
//!    truth is known by construction — the daemon plays the reviewing
//!    user the way the CLI simulation does), one curve point, and the
//!    selection strategy's picks for this round;
//! 2. `LABEL` requests supply the direct labels (the client plays the
//!    labeling user — answering the picks reproduces the in-process
//!    session exactly; labeling other unmatched attributes is allowed and
//!    simply journals a different, equally valid trajectory);
//! 3. once `labels_per_iter` labels arrive, `IterationEnd` commits the
//!    round and the next one starts eagerly, so the `LABEL` reply carries
//!    the next round's suggestions cost — the *label-round latency* the
//!    serve bench measures.
//!
//! A killed daemon restarts from the journal: recovery truncates any
//! uncommitted round, `OPEN` resumes at the boundary, and `start_round`
//! recomputes the identical respond/review/curve events (engines are
//! deterministic functions of the label state; the per-iteration RNG is
//! re-derived via [`iteration_rng`]). Response-time *values* differ — as
//! they do for any wall-clock re-run — but every other field of the
//! stream is bitwise identical.

use crate::protocol::{OpenRequest, ProtocolError};
use crate::state::{ServeModel, SharedState};
use lsm_core::{active::select_attributes, CurvePoint};
use lsm_core::{
    iteration_rng, LsmConfig, LsmMatcher, ReviewOutcome, SessionConfig, SessionEvent, SessionSink,
    SessionState,
};
use lsm_datasets::Dataset;
use lsm_schema::{AttrId, ScoreMatrix};
use lsm_store::{JournalOptions, JournalSink};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// One live session (see module docs).
pub struct ServeSession {
    id: String,
    dataset_key: String,
    model: ServeModel,
    dataset: Dataset,
    config: SessionConfig,
    engine: LsmMatcher,
    state: SessionState,
    sink: JournalSink,
    anchors: Vec<AttrId>,
    /// The open round's predictions; `None` when no round is open
    /// (complete, stalled, or out of iteration budget).
    scores: Option<ScoreMatrix>,
    /// The strategy's picks awaiting labels this round.
    picked: Vec<AttrId>,
    labels_this_round: usize,
    resumed: bool,
    source_by_name: BTreeMap<String, AttrId>,
    target_by_name: BTreeMap<String, AttrId>,
}

impl ServeSession {
    /// Opens (or resumes, when its journal already exists) the session
    /// described by `req`, journaling under `journal_dir/<id>.journal`.
    pub fn open(
        shared: &SharedState,
        journal_dir: &Path,
        req: &OpenRequest,
        session_config: SessionConfig,
        engine_threads: usize,
        dataset_seed: u64,
    ) -> Result<ServeSession, ProtocolError> {
        let model_name = req.model.as_deref().unwrap_or("off");
        let model = ServeModel::parse(model_name).ok_or_else(|| {
            ProtocolError::bad_request(format!(
                "unknown model {model_name:?}; expected off|tiny|small"
            ))
        })?;
        let dataset = lsm_datasets::by_name(&req.dataset, dataset_seed).ok_or_else(|| {
            ProtocolError::not_found(format!(
                "unknown dataset {:?}; expected one of {}",
                req.dataset,
                lsm_datasets::DATASET_NAMES.join("|")
            ))
        })?;

        std::fs::create_dir_all(journal_dir)
            .map_err(|e| ProtocolError::internal(format!("journal dir: {e}")))?;
        let journal = journal_dir.join(format!("{}.journal", req.session));
        let checkpoint = journal_dir.join(format!("{}.journal.ckpt", req.session));
        let resumable = journal.exists() || checkpoint.exists();

        let (sink, config, resumed) = if resumable {
            let (sink, recovered) =
                JournalSink::resume(&journal, Some(&checkpoint), JournalOptions::default())
                    .map_err(|e| ProtocolError::internal(format!("journal resume: {e}")))?;
            let config = recovered.config.unwrap_or(session_config);
            if recovered.state.started
                && recovered.state.outcome.total_attributes != dataset.source.attr_count()
            {
                return Err(ProtocolError::conflict(format!(
                    "journal for session {:?} belongs to a different task ({} attributes, dataset {:?} has {})",
                    req.session,
                    recovered.state.outcome.total_attributes,
                    req.dataset,
                    dataset.source.attr_count()
                )));
            }
            (sink, config, true)
        } else {
            let sink = JournalSink::create(&journal, Some(&checkpoint), JournalOptions::default())
                .map_err(|e| ProtocolError::internal(format!("journal create: {e}")))?;
            (sink, session_config, false)
        };

        let featurizer = shared.featurizer_for(model, &req.dataset, &dataset);
        let lsm_config = LsmConfig {
            use_bert: featurizer.is_some(),
            threads: engine_threads,
            ..Default::default()
        };
        let engine = LsmMatcher::new_with_cache(
            &dataset.source,
            &dataset.target,
            shared.embedding(),
            featurizer,
            lsm_config,
            Some(shared.cache() as &dyn lsm_core::PooledCache),
        );

        let source_by_name =
            dataset.source.attr_ids().map(|a| (dataset.source.qualified_name(a), a)).collect();
        let target_by_name =
            dataset.target.attr_ids().map(|a| (dataset.target.qualified_name(a), a)).collect();
        let anchors = dataset.source.anchor_set();
        let state = sink.state().clone();

        let mut session = ServeSession {
            id: req.session.clone(),
            dataset_key: req.dataset.clone(),
            model,
            dataset,
            config,
            engine,
            state,
            sink,
            anchors,
            scores: None,
            picked: Vec::new(),
            labels_this_round: 0,
            resumed,
            source_by_name,
            target_by_name,
        };
        if !session.state.started {
            let total = session.total();
            session.emit(SessionEvent::SessionStart { total_attributes: total, config })?;
        }
        session.start_round()?;
        Ok(session)
    }

    /// The session id.
    pub fn id(&self) -> &str {
        &self.id
    }

    fn total(&self) -> usize {
        self.dataset.source.attr_count()
    }

    fn emit(&mut self, event: SessionEvent) -> Result<(), ProtocolError> {
        self.state.apply(&event);
        self.sink
            .on_event(&event)
            .map_err(|e| ProtocolError::internal(format!("session {:?}: {e}", self.id)))
    }

    fn curve_point(&self) -> CurvePoint {
        let matched = self.state.labels.matched_count();
        let matched_correct = self
            .state
            .labels
            .positives()
            .filter(|&(s, t)| self.dataset.ground_truth.is_correct(s, t))
            .count();
        CurvePoint {
            labels_provided: self.state.outcome.labels_used,
            matched,
            matched_correct,
            total: self.total(),
        }
    }

    /// Opens the next round: respond (timed retrain + predict), reviews,
    /// curve point, and the strategy's picks — the exact event order of
    /// the in-process driver. No-op when the session cannot progress or a
    /// round is already open.
    fn start_round(&mut self) -> Result<(), ProtocolError> {
        if self.scores.is_some()
            || self.state.stalled
            || self.state.is_complete()
            || self.state.iterations_done >= self.config.max_iterations
        {
            return Ok(());
        }
        let it = self.state.iterations_done;
        let (scores, secs) = {
            let engine = &mut self.engine;
            let labels = &self.state.labels;
            lsm_obs::timed("serve.respond", || {
                engine.retrain(labels);
                engine.predict(labels)
            })
        };
        self.emit(SessionEvent::Respond { iteration: it, secs })?;

        let attrs: Vec<AttrId> = self.dataset.source.attr_ids().collect();
        for s in attrs {
            if self.state.labels.is_matched(s) {
                continue;
            }
            let top = scores.top_k(s, self.config.top_k);
            let outcome =
                match top.iter().find(|&&(t, _)| self.dataset.ground_truth.is_correct(s, t)) {
                    Some(&(t, _)) => ReviewOutcome::Confirmed(t),
                    None => ReviewOutcome::RejectedAll(top.iter().map(|&(t, _)| t).collect()),
                };
            self.emit(SessionEvent::Review { iteration: it, source: s, outcome })?;
        }

        let point = self.curve_point();
        self.emit(SessionEvent::Curve { iteration: it, point })?;
        if point.matched == self.total() {
            self.emit(SessionEvent::IterationEnd { iteration: it })?;
            return Ok(());
        }

        let mut rng = iteration_rng(self.config.seed, it);
        let picked = select_attributes(
            self.config.strategy,
            &self.dataset.source,
            &scores,
            &self.state.labels,
            &self.anchors,
            self.config.labels_per_iter,
            &mut rng,
        );
        if picked.is_empty() {
            self.emit(SessionEvent::Stalled { iteration: it })?;
            self.emit(SessionEvent::IterationEnd { iteration: it })?;
            return Ok(());
        }
        self.picked = picked;
        self.labels_this_round = 0;
        self.scores = Some(scores);
        Ok(())
    }

    fn resolve_source(&self, name: &str) -> Result<AttrId, ProtocolError> {
        self.source_by_name.get(name).copied().ok_or_else(|| {
            ProtocolError::not_found(format!("unknown source attribute {name:?} (qualified name)"))
        })
    }

    fn resolve_target(&self, name: &str) -> Result<AttrId, ProtocolError> {
        self.target_by_name.get(name).copied().ok_or_else(|| {
            ProtocolError::not_found(format!("unknown target attribute {name:?} (qualified name)"))
        })
    }

    /// Applies one direct label. When the round's label budget is filled,
    /// commits the iteration and eagerly opens the next round (the
    /// label-round cost). Returns the post-label status reply.
    pub fn label(&mut self, source: &str, target: &str) -> Result<Value, ProtocolError> {
        if self.state.is_complete() {
            return Err(ProtocolError::conflict("session is already complete"));
        }
        if self.state.stalled {
            return Err(ProtocolError::conflict("session is stalled"));
        }
        if self.scores.is_none() {
            return Err(ProtocolError::conflict("iteration budget exhausted"));
        }
        let s = self.resolve_source(source)?;
        let t = self.resolve_target(target)?;
        if self.state.labels.is_matched(s) {
            return Err(ProtocolError::conflict(format!("{source:?} is already matched")));
        }
        let it = self.state.iterations_done;
        let strategy = self.config.strategy;
        self.emit(SessionEvent::DirectLabel { iteration: it, source: s, target: t, strategy })?;
        self.labels_this_round += 1;
        if self.labels_this_round >= self.config.labels_per_iter.max(1) {
            self.emit(SessionEvent::IterationEnd { iteration: it })?;
            self.scores = None;
            self.picked.clear();
            self.start_round()?;
        }
        Ok(self.status_reply())
    }

    fn status_fields(&self) -> Value {
        json!({
            "session": self.id.clone(),
            "dataset": self.dataset_key.clone(),
            "model": self.model.name(),
            "iteration": self.state.iterations_done,
            "total_attributes": self.total(),
            "matched": self.state.labels.matched_count(),
            "labels_used": self.state.outcome.labels_used,
            "reviews_done": self.state.outcome.reviews_done,
            "complete": self.state.is_complete(),
            "stalled": self.state.stalled,
        })
    }

    fn status_reply(&self) -> Value {
        let mut v = self.status_fields();
        v["ok"] = json!(true);
        v
    }

    /// The `OPEN` reply.
    pub fn open_reply(&self) -> Value {
        let mut v = self.status_reply();
        v["resumed"] = json!(self.resumed);
        v
    }

    /// The `SUGGEST` reply: top-k candidates for every unmatched source
    /// attribute plus the strategy's picks for this round.
    pub fn suggest_reply(&self) -> Value {
        let mut suggestions = Vec::new();
        if let Some(scores) = &self.scores {
            for s in self.dataset.source.attr_ids() {
                if self.state.labels.is_matched(s) {
                    continue;
                }
                let candidates: Vec<Value> = scores
                    .top_k(s, self.config.top_k)
                    .into_iter()
                    .map(|(t, score)| {
                        json!({ "target": self.dataset.target.qualified_name(t), "score": score })
                    })
                    .collect();
                suggestions.push(json!({
                    "source": self.dataset.source.qualified_name(s),
                    "candidates": candidates,
                }));
            }
        }
        let pick: Vec<String> =
            self.picked.iter().map(|&s| self.dataset.source.qualified_name(s)).collect();
        let mut v = self.status_reply();
        v["suggestions"] = json!(suggestions);
        v["pick"] = json!(pick);
        v
    }

    /// The `EXPORT` reply: the confirmed mapping, top-1 predictions for
    /// whatever is still unmatched, and the learning curve. Response
    /// times are deliberately excluded — they are wall-clock and would
    /// make otherwise identical sessions compare unequal.
    pub fn export_reply(&self) -> Value {
        let mut mapping = Vec::new();
        for (s, t) in self.state.labels.positives() {
            mapping.push(json!({
                "source": self.dataset.source.qualified_name(s),
                "target": self.dataset.target.qualified_name(t),
                "correct": self.dataset.ground_truth.is_correct(s, t),
            }));
        }
        let mut predictions = Vec::new();
        if let Some(scores) = &self.scores {
            for s in self.dataset.source.attr_ids() {
                if self.state.labels.is_matched(s) {
                    continue;
                }
                if let Some((t, score)) = scores.top_k(s, 1).into_iter().next() {
                    predictions.push(json!({
                        "source": self.dataset.source.qualified_name(s),
                        "target": self.dataset.target.qualified_name(t),
                        "score": score,
                    }));
                }
            }
        }
        let curve: Vec<Value> = self
            .state
            .outcome
            .curve
            .iter()
            .map(|p| json!([p.labels_provided, p.matched, p.matched_correct, p.total]))
            .collect();
        let mut v = self.status_reply();
        v["mapping"] = json!(mapping);
        v["predictions"] = json!(predictions);
        v["curve"] = json!(curve);
        v
    }

    /// Finalizes the journal (flush + checkpoint). Called by `CLOSE`; a
    /// dropped-without-close session simply keeps its journal resumable.
    pub fn close(&mut self) -> Result<(), ProtocolError> {
        self.sink
            .finish()
            .map_err(|e| ProtocolError::internal(format!("session {:?}: {e}", self.id)))
    }
}
