//! The dependency-free TCP line protocol.
//!
//! One request per line: an upper-case verb, optionally followed by a
//! single space and a JSON object payload. One JSON object per line back:
//! `{"ok":true, …}` on success, `{"ok":false,"code":…,"error":…}` on
//! failure. HTTP-flavoured codes, carried inside the JSON (the transport
//! itself is bare TCP):
//!
//! | verb       | payload                                        |
//! |------------|------------------------------------------------|
//! | `PING`     | —                                              |
//! | `OPEN`     | `{"session","dataset","model"?}`               |
//! | `SUGGEST`  | `{"session"}`                                  |
//! | `LABEL`    | `{"session","source","target"}`                |
//! | `EXPORT`   | `{"session"}`                                  |
//! | `CLOSE`    | `{"session"}`                                  |
//! | `SHUTDOWN` | —                                              |
//!
//! Attribute references are qualified names (`Entity.attribute`), exactly
//! as the CLI prints them. Session ids are `[A-Za-z0-9_-]{1,64}` — they
//! become journal file names, so anything path-like is rejected up front.

use serde_json::{json, Value};

/// Error reply: an HTTP-flavoured code plus a message. `4xx` are request
/// problems (bad JSON, unknown dataset, conflicting state), `5xx` are
/// server-side failures (journal I/O).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    pub code: u16,
    pub message: String,
}

impl ProtocolError {
    pub fn bad_request(message: impl Into<String>) -> Self {
        ProtocolError { code: 400, message: message.into() }
    }

    pub fn not_found(message: impl Into<String>) -> Self {
        ProtocolError { code: 404, message: message.into() }
    }

    pub fn conflict(message: impl Into<String>) -> Self {
        ProtocolError { code: 409, message: message.into() }
    }

    pub fn internal(message: impl Into<String>) -> Self {
        ProtocolError { code: 500, message: message.into() }
    }

    /// The one-line JSON reply for this error.
    pub fn to_reply(&self) -> Value {
        json!({ "ok": false, "code": self.code, "error": self.message.clone() })
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// `OPEN` payload.
#[derive(Debug, Clone)]
pub struct OpenRequest {
    pub session: String,
    pub dataset: String,
    /// `"off"` (default), `"tiny"`, or `"small"`.
    pub model: Option<String>,
}

/// `SUGGEST` / `EXPORT` / `CLOSE` payload.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    pub session: String,
}

/// `LABEL` payload: one direct label, attribute names qualified.
#[derive(Debug, Clone)]
pub struct LabelRequest {
    pub session: String,
    pub source: String,
    pub target: String,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    Ping,
    Open(OpenRequest),
    Suggest(SessionRequest),
    Label(LabelRequest),
    Export(SessionRequest),
    Close(SessionRequest),
    Shutdown,
}

/// Parses a verb's payload into its JSON object. Fields are extracted by
/// hand (no `Deserialize` derives) so every failure names the verb and
/// the offending field, and an unknown field is rejected rather than
/// silently dropped — the payload-level analogue of the CLI refusing
/// unknown flags.
fn payload_fields(verb: &str, rest: &str) -> Result<serde_json::Map<String, Value>, ProtocolError> {
    if rest.trim().is_empty() {
        return Err(ProtocolError::bad_request(format!("{verb} requires a JSON payload")));
    }
    let parsed: Value = serde_json::from_str(rest)
        .map_err(|e| ProtocolError::bad_request(format!("{verb} payload: {e}")))?;
    match parsed {
        Value::Object(map) => Ok(map),
        _ => Err(ProtocolError::bad_request(format!("{verb} payload must be a JSON object"))),
    }
}

/// Removes a required string field from a payload object.
fn take_string(
    fields: &mut serde_json::Map<String, Value>,
    verb: &str,
    name: &str,
) -> Result<String, ProtocolError> {
    match fields.remove(name) {
        Some(Value::String(s)) => Ok(s),
        Some(_) => {
            Err(ProtocolError::bad_request(format!("{verb} field {name:?} must be a string")))
        }
        None => Err(ProtocolError::bad_request(format!("{verb} payload is missing {name:?}"))),
    }
}

/// Removes an optional string field (absent and `null` both mean `None`).
fn take_opt_string(
    fields: &mut serde_json::Map<String, Value>,
    verb: &str,
    name: &str,
) -> Result<Option<String>, ProtocolError> {
    match fields.remove(name) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s)),
        Some(_) => {
            Err(ProtocolError::bad_request(format!("{verb} field {name:?} must be a string")))
        }
    }
}

/// Rejects whatever is left in the payload once the verb's fields are out.
fn reject_unknown_fields(
    fields: &serde_json::Map<String, Value>,
    verb: &str,
) -> Result<(), ProtocolError> {
    match fields.keys().next() {
        None => Ok(()),
        Some(key) => {
            Err(ProtocolError::bad_request(format!("{verb} payload has unknown field {key:?}")))
        }
    }
}

fn session_request(verb: &str, rest: &str) -> Result<SessionRequest, ProtocolError> {
    let mut fields = payload_fields(verb, rest)?;
    let session = take_string(&mut fields, verb, "session")?;
    reject_unknown_fields(&fields, verb)?;
    Ok(SessionRequest { session })
}

/// Parses one request line (without the trailing newline).
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r),
        None => (line, ""),
    };
    match verb {
        "PING" => Ok(Request::Ping),
        "OPEN" => {
            let mut fields = payload_fields(verb, rest)?;
            let session = take_string(&mut fields, verb, "session")?;
            let dataset = take_string(&mut fields, verb, "dataset")?;
            let model = take_opt_string(&mut fields, verb, "model")?;
            reject_unknown_fields(&fields, verb)?;
            Ok(Request::Open(OpenRequest { session, dataset, model }))
        }
        "SUGGEST" => Ok(Request::Suggest(session_request(verb, rest)?)),
        "LABEL" => {
            let mut fields = payload_fields(verb, rest)?;
            let session = take_string(&mut fields, verb, "session")?;
            let source = take_string(&mut fields, verb, "source")?;
            let target = take_string(&mut fields, verb, "target")?;
            reject_unknown_fields(&fields, verb)?;
            Ok(Request::Label(LabelRequest { session, source, target }))
        }
        "EXPORT" => Ok(Request::Export(session_request(verb, rest)?)),
        "CLOSE" => Ok(Request::Close(session_request(verb, rest)?)),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "" => Err(ProtocolError::bad_request("empty request line")),
        other => Err(ProtocolError::bad_request(format!(
            "unknown verb {other:?}; expected PING|OPEN|SUGGEST|LABEL|EXPORT|CLOSE|SHUTDOWN"
        ))),
    }
}

/// Validates a session id for use as a journal file name.
pub fn validate_session_id(id: &str) -> Result<(), ProtocolError> {
    let ok = !id.is_empty()
        && id.len() <= 64
        && id.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(ProtocolError::bad_request(format!(
            "invalid session id {id:?}: expected [A-Za-z0-9_-]{{1,64}}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse_with_and_without_payload() {
        assert!(matches!(parse_request("PING"), Ok(Request::Ping)));
        assert!(matches!(parse_request("SHUTDOWN"), Ok(Request::Shutdown)));
        let open = parse_request(r#"OPEN {"session":"s1","dataset":"movielens"}"#);
        match open {
            Ok(Request::Open(o)) => {
                assert_eq!(o.session, "s1");
                assert_eq!(o.dataset, "movielens");
                assert!(o.model.is_none());
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn malformed_payload_is_a_400() {
        let err = parse_request("OPEN not-json").unwrap_err();
        assert_eq!(err.code, 400);
        let err = parse_request(r#"SUGGEST {"nope":1}"#).unwrap_err();
        assert_eq!(err.code, 400);
        let err = parse_request("LABEL").unwrap_err();
        assert_eq!(err.code, 400);
    }

    #[test]
    fn unknown_verb_is_a_400() {
        let err = parse_request("DELETE {}").unwrap_err();
        assert_eq!(err.code, 400);
        assert!(err.message.contains("unknown verb"));
    }

    #[test]
    fn session_ids_are_path_safe() {
        assert!(validate_session_id("user-42_a").is_ok());
        assert!(validate_session_id("").is_err());
        assert!(validate_session_id("../escape").is_err());
        assert!(validate_session_id("a/b").is_err());
        assert!(validate_session_id(&"x".repeat(65)).is_err());
    }

    #[test]
    fn error_reply_shape() {
        let e = ProtocolError::not_found("no such session");
        let v = e.to_reply();
        assert_eq!(v["ok"], serde_json::json!(false));
        assert_eq!(v["code"], serde_json::json!(404));
    }
}
