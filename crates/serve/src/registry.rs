//! TCP-free concurrency core of the daemon: the session registry and the
//! shutdown handshake.
//!
//! [`server`](crate::server) used to hold both protocols inline in the
//! `Daemon` struct, welded to sockets and connection threads. They are
//! extracted here, generic over the session payload, for two reasons:
//!
//! * the lock-order discipline (map lock strictly before slot lock,
//!   slot lock acquired *before* the map lock is released on open) and
//!   the shutdown flag/wake protocol are the parts of the daemon where
//!   an interleaving bug hides — pulling them out of the socket code
//!   lets `tests/model.rs` drive them under the `lsm-check` model
//!   checker's exhaustive interleaving exploration,
//! * the protocols don't depend on TCP at all; keeping them payload-
//!   generic makes that explicit and keeps the model small.
//!
//! Everything here synchronizes through [`lsm_check::sync`]: a plain
//! parking_lot/std re-export in normal builds (bitwise-identical to the
//! previous inline code), the model scheduler under
//! `--cfg lsm_model_check`.

use lsm_check::sync::{Arc, AtomicBool, Mutex, MutexGuard, Ordering};
use std::collections::BTreeMap;

/// One session's slot: `None` between insertion and a successful open
/// (or after a close raced the slot out from under a request).
pub type Slot<S> = Arc<Mutex<Option<S>>>;

/// Why an [`SessionRegistry::open`] did not produce a session.
#[derive(Debug)]
pub enum OpenError<E> {
    /// The id is already registered.
    Conflict,
    /// The builder failed; the slot was removed again.
    Build(E),
}

/// Concurrent id → session map with the daemon's locking discipline.
///
/// Two lock levels, acquired strictly in this order:
///
/// 1. the *map* lock — held only to look up / insert / remove a slot,
///    never across session work,
/// 2. a session *slot* lock — held for the duration of one request
///    against that session.
///
/// [`open`](Self::open) inserts an empty slot and acquires its lock
/// *before* releasing the map lock, so concurrent requests for the same
/// id queue on the slot while the (potentially expensive) build runs —
/// without blocking requests for other sessions.
pub struct SessionRegistry<S> {
    slots: Mutex<BTreeMap<String, Slot<S>>>,
}

impl<S> Default for SessionRegistry<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> SessionRegistry<S> {
    /// An empty registry.
    pub fn new() -> Self {
        SessionRegistry { slots: Mutex::new(BTreeMap::new()) }
    }

    /// Number of registered ids (including opens still building).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether no id is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers `id` and runs `build` to produce its session.
    ///
    /// The fresh slot's lock is acquired before the map lock is
    /// released, then `build` runs with the map unlocked: same-id
    /// requests block on the slot until the open resolves; other ids are
    /// never blocked. On build failure the id is removed again and the
    /// error handed back.
    pub fn open<E>(
        &self,
        id: &str,
        build: impl FnOnce() -> Result<S, E>,
    ) -> Result<(), OpenError<E>> {
        let slot: Slot<S> = Arc::new(Mutex::new(None));
        let mut guard: MutexGuard<'_, Option<S>> = {
            let mut map = self.slots.lock();
            if map.contains_key(id) {
                return Err(OpenError::Conflict);
            }
            map.insert(id.to_string(), Arc::clone(&slot));
            // Lock the fresh slot before the map unlocks: same-id
            // requests queue here until the open finishes (or the slot
            // is removed).
            slot.lock()
        };
        match build() {
            Ok(session) => {
                *guard = Some(session);
                Ok(())
            }
            Err(e) => {
                drop(guard);
                self.slots.lock().remove(id);
                Err(OpenError::Build(e))
            }
        }
    }

    /// Runs `f` on `id`'s session under its slot lock. `None` when the
    /// id is unknown or its open failed after registration.
    pub fn with<R>(&self, id: &str, f: impl FnOnce(&mut S) -> R) -> Option<R> {
        let slot = self.slots.lock().get(id).cloned()?;
        let mut guard = slot.lock();
        guard.as_mut().map(f)
    }

    /// Unregisters `id` and runs `finalize` on its session (if its open
    /// ever completed). `None` when the id is unknown. Requests that
    /// already cloned the slot observe an empty slot afterwards, never a
    /// dangling session.
    pub fn close<R>(&self, id: &str, finalize: impl FnOnce(&mut S) -> R) -> Option<Option<R>> {
        let slot = self.slots.lock().remove(id)?;
        let mut guard = slot.lock();
        let result = guard.as_mut().map(finalize);
        *guard = None;
        Some(result)
    }
}

/// The clock-free shutdown handshake.
///
/// A shutdown request sets the flag (release) and reports whether this
/// call was the *first* request — the caller fires its wake-up exactly
/// once (the daemon pokes the blocking `accept` with a loopback
/// connect). Pollers ([`is_requested`](Self::is_requested), acquire)
/// observe the flag at their next check; the acquire/release pairing
/// guarantees a poller that sees the flag also sees everything the
/// requester wrote before requesting.
#[derive(Debug, Default)]
pub struct ShutdownFlag {
    requested: AtomicBool,
}

impl ShutdownFlag {
    /// A flag in the running (not-requested) state.
    pub const fn new() -> Self {
        ShutdownFlag { requested: AtomicBool::new(false) }
    }

    /// Requests shutdown. Returns `true` for the first request only —
    /// the winner owns firing the (single) wake-up; later requests are
    /// idempotent no-ops.
    pub fn request(&self) -> bool {
        !self.requested.swap(true, Ordering::AcqRel)
    }

    /// Has a shutdown been requested? (Acquire: pairs with the `AcqRel`
    /// swap in [`request`](Self::request).)
    pub fn is_requested(&self) -> bool {
        self.requested.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_with_then_close_round_trip() {
        let reg: SessionRegistry<u32> = SessionRegistry::new();
        reg.open("a", || Ok::<_, ()>(7)).expect("open");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.with("a", |s| *s), Some(7));
        assert_eq!(reg.close("a", |s| *s + 1), Some(Some(8)));
        assert!(reg.is_empty());
        assert_eq!(reg.with("a", |s| *s), None);
        assert_eq!(reg.close("a", |_| ()), None);
    }

    #[test]
    fn duplicate_open_conflicts_without_running_build() {
        let reg: SessionRegistry<u32> = SessionRegistry::new();
        reg.open("a", || Ok::<_, ()>(1)).expect("open");
        let mut built = false;
        match reg.open("a", || {
            built = true;
            Ok::<_, ()>(2)
        }) {
            Err(OpenError::Conflict) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert!(!built, "conflicting open must not build");
        assert_eq!(reg.with("a", |s| *s), Some(1));
    }

    #[test]
    fn failed_build_unregisters_the_id() {
        let reg: SessionRegistry<u32> = SessionRegistry::new();
        match reg.open("a", || Err::<u32, _>("boom")) {
            Err(OpenError::Build("boom")) => {}
            other => panic!("expected build error, got {other:?}"),
        }
        assert!(reg.is_empty(), "failed open must remove the slot");
        reg.open("a", || Ok::<_, ()>(3)).expect("id reusable after failed open");
    }

    #[test]
    fn shutdown_flag_first_request_wins() {
        let f = ShutdownFlag::new();
        assert!(!f.is_requested());
        assert!(f.request(), "first request owns the wake-up");
        assert!(!f.request(), "later requests are no-ops");
        assert!(f.is_requested());
    }
}
