//! Process-wide read-mostly state shared by every session.
//!
//! Built once when the daemon starts and handed to connection threads
//! behind an `Arc`:
//!
//! * the retail lexicon and the word-embedding space (immutable after
//!   construction — plain shared reads),
//! * the [`EncodingCache`] every session's matcher consults,
//! * a memo of pre-trained featurizers: the expensive MLM pre-training is
//!   done once per model size, the classifier pre-training once per
//!   `(model, dataset)` pair, and each session then *clones* the finished
//!   featurizer so its fine-tuning stays session-local — exactly the
//!   contract `LsmMatcher::new` documents.
//!
//! The memo lock is held across a pre-training build on purpose: two
//! concurrent `OPEN`s of the same model would otherwise both pay the
//! multi-second pre-training. Serializing them means the second opener
//! waits and then clones. Pre-training is deterministic, so which opener
//! builds is unobservable in the results.

use crate::cache::EncodingCache;
use lsm_check::sync::Mutex;
use lsm_core::{BertFeaturizer, BertFeaturizerConfig};
use lsm_datasets::Dataset;
use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::{full_lexicon, Lexicon};
use std::collections::BTreeMap;

/// Encoder model a session runs with, mirroring the CLI's `--model` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeModel {
    /// Cheap featurizers only (no BERT column).
    Off,
    /// The fast CI model.
    Tiny,
    /// The experiment model.
    Small,
}

impl ServeModel {
    /// Parses the protocol/CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(ServeModel::Off),
            "tiny" => Some(ServeModel::Tiny),
            "small" => Some(ServeModel::Small),
            _ => None,
        }
    }

    /// Stable protocol spelling.
    pub fn name(self) -> &'static str {
        match self {
            ServeModel::Off => "off",
            ServeModel::Tiny => "tiny",
            ServeModel::Small => "small",
        }
    }

    fn featurizer_config(self) -> Option<BertFeaturizerConfig> {
        match self {
            ServeModel::Off => None,
            ServeModel::Tiny => Some(BertFeaturizerConfig::tiny()),
            ServeModel::Small => Some(BertFeaturizerConfig::small()),
        }
    }
}

/// Featurizer memo: MLM-pre-trained bases per model, classifier-tuned
/// clones per `(model, dataset)`.
#[derive(Default)]
struct FeaturizerMemo {
    bases: BTreeMap<&'static str, BertFeaturizer>,
    tuned: BTreeMap<String, BertFeaturizer>,
}

/// The shared state (see module docs).
pub struct SharedState {
    lexicon: Lexicon,
    embedding: EmbeddingSpace,
    cache: EncodingCache,
    memo: Mutex<FeaturizerMemo>,
}

impl SharedState {
    /// Builds the lexicon, the embedding space, and an empty cache of
    /// `cache_capacity` pooled vectors. Featurizers are built lazily on
    /// the first `OPEN` that needs them.
    pub fn new(cache_capacity: usize) -> Self {
        let lexicon = full_lexicon();
        let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
        SharedState {
            lexicon,
            embedding,
            cache: EncodingCache::new(cache_capacity),
            memo: Mutex::new(FeaturizerMemo::default()),
        }
    }

    /// The shared embedding space.
    pub fn embedding(&self) -> &EmbeddingSpace {
        &self.embedding
    }

    /// The shared pooled-encoding cache.
    pub fn cache(&self) -> &EncodingCache {
        &self.cache
    }

    /// Pre-trains and memoizes `model`'s base featurizer ahead of the
    /// first `OPEN` that needs it, so that open doesn't pay the
    /// multi-second MLM pre-training. No-op for [`ServeModel::Off`] or
    /// when the base is already built.
    pub fn preload(&self, model: ServeModel) {
        let Some(config) = model.featurizer_config() else { return };
        let mut memo = self.memo.lock();
        if !memo.bases.contains_key(model.name()) {
            let built = BertFeaturizer::pretrain(&self.lexicon, config);
            memo.bases.insert(model.name(), built);
        }
    }

    /// A classifier-pre-trained featurizer for `model` on `dataset`'s
    /// target, cloned from the memo (building the memo entries on first
    /// use). `None` for [`ServeModel::Off`]. `dataset_key` is the protocol
    /// dataset name, which keys the tuned memo.
    pub fn featurizer_for(
        &self,
        model: ServeModel,
        dataset_key: &str,
        dataset: &Dataset,
    ) -> Option<BertFeaturizer> {
        let config = model.featurizer_config()?;
        let tuned_key = format!("{}/{dataset_key}", model.name());
        let mut memo = self.memo.lock();
        if let Some(f) = memo.tuned.get(&tuned_key) {
            return Some(f.clone());
        }
        let base = match memo.bases.get(model.name()) {
            Some(b) => b.clone(),
            None => {
                let built = BertFeaturizer::pretrain(&self.lexicon, config);
                memo.bases.insert(model.name(), built.clone());
                built
            }
        };
        let mut tuned = base;
        tuned.pretrain_classifier(&dataset.target);
        memo.tuned.insert(tuned_key, tuned.clone());
        Some(tuned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_round_trip() {
        for m in [ServeModel::Off, ServeModel::Tiny, ServeModel::Small] {
            assert_eq!(ServeModel::parse(m.name()), Some(m));
        }
        assert_eq!(ServeModel::parse("large"), None);
    }
}
