//! Tier-1 smoke test of the serve daemon: spawn on an ephemeral port,
//! run one scripted movielens session over real TCP to completion
//! (answering the strategy's picks from the generated ground truth),
//! check the export, close, and shut the daemon down cleanly.
//!
//! ```text
//! serve_smoke [--model off|tiny|small]
//! ```
//!
//! Exits 0 and prints `serve_smoke: OK …` on success; any protocol or
//! invariant failure panics (non-zero exit), which is what the tier-1
//! script keys on.

use lsm_serve::{spawn, ServeConfig};
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client { reader, writer: stream }
    }

    fn request(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).expect("send request");
        self.writer.write_all(b"\n").expect("send newline");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        serde_json::from_str(reply.trim_end()).expect("reply is one JSON object")
    }

    fn ok(&mut self, line: &str) -> Value {
        let v = self.request(line);
        assert_eq!(v["ok"], Value::Bool(true), "request {line:?} failed: {v}");
        v
    }
}

fn main() {
    let mut model = "off".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--model" => model = args.next().expect("--model requires a value"),
            other => panic!("serve_smoke: unknown argument {other:?}"),
        }
    }

    let dir = std::env::temp_dir().join(format!("lsm-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create smoke journal dir");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        journal_dir: dir.clone(),
        ..Default::default()
    };
    let handle = spawn(config).expect("spawn daemon");
    let addr = handle.addr();
    eprintln!("serve_smoke: daemon on {addr}");

    // The client answers labels from its own copy of the generated
    // dataset — the daemon and the client derive the same truth.
    let dataset = lsm_datasets::by_name("movielens", 1).expect("movielens dataset");
    let truth_by_name: BTreeMap<String, String> = dataset
        .source
        .attr_ids()
        .map(|s| {
            let t = dataset.ground_truth.target_of(s).expect("total ground truth");
            (dataset.source.qualified_name(s), dataset.target.qualified_name(t))
        })
        .collect();

    let mut c = Client::connect(addr);
    c.ok("PING");

    // Unknown dataset must be a protocol error, not a dead daemon.
    let bad = c.request(r#"OPEN {"session":"bad","dataset":"customer-f"}"#);
    assert_eq!(bad["ok"], Value::Bool(false), "customer-f must be rejected: {bad}");
    assert_eq!(bad["code"], Value::from(404), "out-of-range dataset is a 404: {bad}");

    let open =
        c.ok(&format!(r#"OPEN {{"session":"smoke","dataset":"movielens","model":{model:?}}}"#));
    assert_eq!(open["resumed"], Value::Bool(false));
    let total = open["total_attributes"].as_u64().expect("total_attributes");

    let mut rounds = 0usize;
    loop {
        let s = c.ok(r#"SUGGEST {"session":"smoke"}"#);
        if s["complete"] == Value::Bool(true) {
            break;
        }
        let pick = s["pick"][0].as_str().expect("an incomplete session has a pick").to_string();
        let target = truth_by_name.get(&pick).expect("pick resolves in ground truth");
        c.ok(&format!(r#"LABEL {{"session":"smoke","source":{pick:?},"target":{target:?}}}"#));
        rounds += 1;
        assert!(rounds <= total as usize, "session must converge within {total} label rounds");
    }

    let export = c.ok(r#"EXPORT {"session":"smoke"}"#);
    assert_eq!(export["matched"].as_u64(), Some(total), "export must cover the schema: {export}");
    let mapping = export["mapping"].as_array().expect("mapping array");
    assert_eq!(mapping.len() as u64, total);
    assert!(
        mapping.iter().all(|m| m["correct"] == Value::Bool(true)),
        "perfect labels must yield a correct mapping"
    );

    c.ok(r#"CLOSE {"session":"smoke"}"#);
    let gone = c.request(r#"SUGGEST {"session":"smoke"}"#);
    assert_eq!(gone["code"], Value::from(404), "closed session must be gone: {gone}");

    let down = c.ok("SHUTDOWN");
    assert_eq!(down["shutting_down"], Value::Bool(true));
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
    println!("serve_smoke: OK — {rounds} label rounds to {total}/{total} matched (model {model})");
}
