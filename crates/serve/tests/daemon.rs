//! End-to-end daemon tests over real loopback TCP: protocol errors must
//! come back as error replies (never kill the daemon), and a daemon
//! killed mid-protocol must resume its sessions from the journal and
//! finish with exactly the trajectory an uninterrupted run produces.

use lsm_serve::{spawn, ServeConfig, ServerHandle};
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client { reader, writer: stream }
    }

    fn request(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).expect("send request");
        self.writer.write_all(b"\n").expect("send newline");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        serde_json::from_str(reply.trim_end()).expect("reply is one JSON object")
    }

    fn ok(&mut self, line: &str) -> Value {
        let v = self.request(line);
        assert_eq!(v["ok"], Value::Bool(true), "request {line:?} failed: {v}");
        v
    }
}

fn temp_journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsm-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create journal dir");
    dir
}

fn spawn_on(dir: &std::path::Path) -> ServerHandle {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        journal_dir: dir.to_path_buf(),
        ..Default::default()
    };
    spawn(config).expect("spawn daemon")
}

/// Qualified-name ground truth of the movielens task — the labels the
/// simulated user answers with (clients derive the same generated data
/// as the daemon).
fn movielens_truth() -> BTreeMap<String, String> {
    let dataset = lsm_datasets::by_name("movielens", 1).expect("movielens dataset");
    dataset
        .source
        .attr_ids()
        .map(|s| {
            let t = dataset.ground_truth.target_of(s).expect("total ground truth");
            (dataset.source.qualified_name(s), dataset.target.qualified_name(t))
        })
        .collect()
}

/// Answers the strategy's first pick with ground truth until the session
/// completes or `max_rounds` labels were given; returns the label count.
fn label_rounds(
    c: &mut Client,
    session: &str,
    truth: &BTreeMap<String, String>,
    max_rounds: usize,
) -> usize {
    let mut rounds = 0;
    while rounds < max_rounds {
        let s = c.ok(&format!(r#"SUGGEST {{"session":{session:?}}}"#));
        if s["complete"] == Value::Bool(true) {
            break;
        }
        let pick = s["pick"][0].as_str().expect("incomplete session has a pick").to_string();
        let target = &truth[&pick];
        c.ok(&format!(r#"LABEL {{"session":{session:?},"source":{pick:?},"target":{target:?}}}"#));
        rounds += 1;
    }
    rounds
}

#[test]
fn protocol_errors_do_not_kill_the_daemon() {
    let dir = temp_journal_dir("errors");
    let handle = spawn_on(&dir);
    let mut c = Client::connect(handle.addr());

    let bad = c.request(r#"OPEN {"session":"x","dataset":"no-such-dataset"}"#);
    assert_eq!(bad["ok"], Value::Bool(false));
    assert_eq!(bad["code"], Value::from(404), "unknown dataset: {bad}");
    assert!(
        bad["error"].as_str().unwrap_or("").contains("movielens"),
        "the error must list valid datasets: {bad}"
    );

    let bad_id = c.request(r#"OPEN {"session":"../escape","dataset":"movielens"}"#);
    assert_eq!(bad_id["code"], Value::from(400), "path-like session id: {bad_id}");

    let garbage = c.request("OPEN this-is-not-json");
    assert_eq!(garbage["code"], Value::from(400), "malformed payload: {garbage}");

    let unknown = c.request(r#"FROBNICATE {"session":"x"}"#);
    assert_eq!(unknown["code"], Value::from(400), "unknown verb: {unknown}");

    let gone = c.request(r#"SUGGEST {"session":"never-opened"}"#);
    assert_eq!(gone["code"], Value::from(404), "unopened session: {gone}");

    // The daemon is still fully functional after every rejected request.
    c.ok("PING");
    let open = c.ok(r#"OPEN {"session":"ok1","dataset":"movielens"}"#);
    assert_eq!(open["resumed"], Value::Bool(false));

    let dup = c.request(r#"OPEN {"session":"ok1","dataset":"movielens"}"#);
    assert_eq!(dup["code"], Value::from(409), "duplicate open: {dup}");

    let bad_attr =
        c.request(r#"LABEL {"session":"ok1","source":"Nope.nope","target":"Nope.nope"}"#);
    assert_eq!(bad_attr["code"], Value::from(404), "unknown attribute: {bad_attr}");

    c.ok(r#"CLOSE {"session":"ok1"}"#);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_daemon_resumes_sessions_from_the_journal() {
    let truth = movielens_truth();

    // Reference: one uninterrupted session driven to completion.
    let ref_dir = temp_journal_dir("reference");
    let handle = spawn_on(&ref_dir);
    let mut c = Client::connect(handle.addr());
    c.ok(r#"OPEN {"session":"ref","dataset":"movielens"}"#);
    let ref_rounds = label_rounds(&mut c, "ref", &truth, usize::MAX);
    let reference = c.ok(r#"EXPORT {"session":"ref"}"#);
    assert_eq!(reference["complete"], Value::Bool(true));
    c.ok(r#"CLOSE {"session":"ref"}"#);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&ref_dir);

    assert!(
        ref_rounds >= 2,
        "movielens must need at least two label rounds for this test to interrupt one \
         (took {ref_rounds})"
    );
    let interrupt_after = (ref_rounds / 2).max(1);

    // Interrupted: same session, killed mid-protocol without CLOSE.
    let dir = temp_journal_dir("resume");
    let handle = spawn_on(&dir);
    let mut c = Client::connect(handle.addr());
    let open = c.ok(r#"OPEN {"session":"s","dataset":"movielens"}"#);
    assert_eq!(open["resumed"], Value::Bool(false));
    let done_before = label_rounds(&mut c, "s", &truth, interrupt_after);
    assert_eq!(done_before, interrupt_after);
    drop(c);
    handle.shutdown(); // no CLOSE: the journal stays at the last committed iteration

    assert!(
        dir.join("s.journal").exists(),
        "the interrupted session must leave its journal behind"
    );

    // Resume on a fresh daemon over the same journal directory.
    let handle = spawn_on(&dir);
    let mut c = Client::connect(handle.addr());
    let reopened = c.ok(r#"OPEN {"session":"s","dataset":"movielens"}"#);
    assert_eq!(reopened["resumed"], Value::Bool(true), "must resume from the journal: {reopened}");
    assert_eq!(
        reopened["labels_used"],
        Value::from(interrupt_after),
        "every committed label survives the kill: {reopened}"
    );

    label_rounds(&mut c, "s", &truth, usize::MAX);
    let resumed = c.ok(r#"EXPORT {"session":"s"}"#);
    c.ok(r#"CLOSE {"session":"s"}"#);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // The kill is invisible in the result: identical mapping, identical
    // learning curve, identical label spend. (Response times are excluded
    // from EXPORT precisely because they are wall-clock.)
    assert_eq!(resumed["complete"], Value::Bool(true));
    assert_eq!(resumed["mapping"], reference["mapping"], "mapping diverged after resume");
    assert_eq!(resumed["curve"], reference["curve"], "learning curve diverged after resume");
    assert_eq!(resumed["labels_used"], reference["labels_used"]);
    assert_eq!(resumed["reviews_done"], reference["reviews_done"]);
}

#[test]
fn resuming_under_a_different_dataset_is_a_conflict() {
    let dir = temp_journal_dir("conflict");
    let handle = spawn_on(&dir);
    let mut c = Client::connect(handle.addr());
    c.ok(r#"OPEN {"session":"s","dataset":"movielens"}"#);
    c.ok(r#"CLOSE {"session":"s"}"#);
    handle.shutdown();

    let handle = spawn_on(&dir);
    let mut c = Client::connect(handle.addr());
    let clash = c.request(r#"OPEN {"session":"s","dataset":"rdb-star"}"#);
    if clash["ok"] == Value::Bool(true) {
        // Same attribute count: indistinguishable by shape, resume is
        // allowed. Different count: must be rejected as a conflict.
        assert_eq!(clash["resumed"], Value::Bool(true));
    } else {
        assert_eq!(clash["code"], Value::from(409), "mismatched journal: {clash}");
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
