//! Model checks of the daemon's concurrency core.
//!
//! Under `RUSTFLAGS="--cfg lsm_model_check"` each `lsm_check::model` call
//! exhaustively explores every bounded interleaving of its closure; in a
//! normal build the closures run once with real threads as smoke tests.
//!
//! Covered protocols (all TCP-free, see `crate::registry` and
//! `crate::cache`):
//!
//! * the [`EncodingCache`]'s stats-under-the-same-lock discipline — a
//!   `CacheStats` snapshot always agrees with the map it summarizes
//!   (this model is the one that caught the earlier bump-atomics-after-
//!   unlock revision), and concurrent use is bitwise equal to sequential,
//! * the [`SessionRegistry`]'s two-level map → slot lock order: same-id
//!   opens admit exactly one winner, a request racing an open sees a
//!   fully built session or nothing (never a half-open), a failed build
//!   leaks nothing, and close racing a request never dangles. Every
//!   acquisition here also feeds the checker's runtime lock-order graph,
//!   so a map/slot order inversion fails these models with an R11
//!   cross-reference instead of deadlocking CI,
//! * the [`ShutdownFlag`] handshake: with the listener parked on a
//!   condvar, two concurrent requesters produce exactly one wake-up and
//!   the woken listener observes the flag (the acquire/release pairing).

use lsm_check::sync::{thread, Arc, AtomicUsize, Condvar, Mutex, Ordering};
use lsm_core::PooledCache;
use lsm_nn::Tensor;
use lsm_serve::{EncodingCache, OpenError, SessionRegistry, ShutdownFlag};

/// Model explorations drive the process-global scheduler, so the suite
/// is serialized.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn vec_of(seed: f32) -> Tensor {
    Tensor::from_vec(1, 4, vec![seed, seed + 1.0, seed + 2.0, seed + 3.0])
}

/// `len()` and `stats()` are separate lock acquisitions, but because the
/// counters live under the same lock as the map, the derived entry count
/// `insertions - evictions` is sandwiched by any two surrounding `len`
/// reads. The pre-fix revision (per-instance atomics bumped after the
/// lock dropped) has an interleaving where `len` is already 1 while
/// `insertions` still reads 0 — the checker finds it and prints the
/// schedule.
#[test]
fn cache_stats_agree_with_the_map_in_every_interleaving() {
    let _g = serial();
    lsm_check::model(|| {
        let cache = Arc::new(EncodingCache::new(8));
        let c = Arc::clone(&cache);
        let t = thread::spawn(move || c.put("f32", &[1], &vec_of(1.0)));
        let l1 = cache.len() as u64;
        let s = cache.stats();
        let l2 = cache.len() as u64;
        let derived = s.insertions - s.evictions;
        assert!(
            l1 <= derived && derived <= l2,
            "stats tore away from the map: len {l1} -> stats {derived} -> len {l2}"
        );
        t.join().unwrap();
        let s = cache.stats();
        assert_eq!((s.insertions, s.evictions), (1, 0));
        assert_eq!(cache.len(), 1);
    });
}

/// Concurrent puts of distinct keys are bitwise equal to the sequential
/// cache: both vectors retrievable bit-for-bit, stats exact.
#[test]
fn concurrent_cache_use_is_bitwise_sequential() {
    let _g = serial();
    lsm_check::model(|| {
        let cache = Arc::new(EncodingCache::new(8));
        let c1 = Arc::clone(&cache);
        let t1 = thread::spawn(move || c1.put("f32", &[1], &vec_of(1.5)));
        let c2 = Arc::clone(&cache);
        let t2 = thread::spawn(move || c2.put("f32", &[2], &vec_of(2.5)));
        t1.join().unwrap();
        t2.join().unwrap();
        for (ids, seed) in [([1u32], 1.5f32), ([2u32], 2.5)] {
            let got = cache.get("f32", &ids).expect("both inserts must be visible after join");
            let want = vec_of(seed);
            let same = got.data().iter().zip(want.data()).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "cached vector for ids {ids:?} is not bitwise identical");
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (2, 0, 2, 0));
    });
}

/// Two concurrent `OPEN`s of the same id: exactly one wins, the loser
/// gets `Conflict`, and the surviving session is one of the two builds —
/// never a blend, never zero or two registrations.
#[test]
fn same_id_double_open_admits_exactly_one() {
    let _g = serial();
    lsm_check::model(|| {
        let reg: Arc<SessionRegistry<u32>> = Arc::new(SessionRegistry::new());
        let r1 = Arc::clone(&reg);
        let t1 = thread::spawn(move || r1.open("s", || Ok::<_, ()>(1)).is_ok());
        let r2 = Arc::clone(&reg);
        let t2 = thread::spawn(move || r2.open("s", || Ok::<_, ()>(2)).is_ok());
        let (ok1, ok2) = (t1.join().unwrap(), t2.join().unwrap());
        assert!(ok1 ^ ok2, "same-id opens must admit exactly one (got {ok1}, {ok2})");
        assert_eq!(reg.len(), 1);
        let v = reg.with("s", |s| *s).expect("winner's session must be present");
        assert!(v == 1 || v == 2, "session payload {v} is neither build's result");
    });
}

/// A request racing an `OPEN` of the same id either misses the map
/// entirely or queues on the slot lock until the build resolves — it can
/// never observe a registered-but-unbuilt session. This is exactly what
/// the lock-the-slot-before-the-map-unlocks discipline buys.
#[test]
fn request_racing_open_sees_built_session_or_nothing() {
    let _g = serial();
    lsm_check::model(|| {
        let reg: Arc<SessionRegistry<u32>> = Arc::new(SessionRegistry::new());
        let r = Arc::clone(&reg);
        let t = thread::spawn(move || {
            r.open("s", || Ok::<_, ()>(7)).expect("sole opener cannot conflict");
        });
        match reg.with("s", |s| *s) {
            None => {} // looked up before the open registered the id
            Some(v) => assert_eq!(v, 7, "request saw a half-built session"),
        }
        t.join().unwrap();
        assert_eq!(reg.with("s", |s| *s), Some(7));
    });
}

/// A failed build unregisters the id in every interleaving: a concurrent
/// request sees nothing (it either misses the map or drains the emptied
/// slot), and the registry ends empty with the id reusable.
#[test]
fn failed_open_leaks_nothing() {
    let _g = serial();
    lsm_check::model(|| {
        let reg: Arc<SessionRegistry<u32>> = Arc::new(SessionRegistry::new());
        let r = Arc::clone(&reg);
        let t = thread::spawn(move || match r.open("s", || Err::<u32, _>("boom")) {
            Err(OpenError::Build("boom")) => {}
            other => panic!("expected build failure, got {other:?}"),
        });
        assert_eq!(reg.with("s", |s| *s), None, "request observed a failed open's session");
        t.join().unwrap();
        assert!(reg.is_empty(), "failed open must unregister the id");
        reg.open("s", || Ok::<_, ()>(3)).expect("id must be reusable after a failed open");
    });
}

/// `CLOSE` racing a request: either the request lands first (the close
/// finalizes the mutated session) or the close wins (the request misses
/// or drains an emptied slot) — never a dangling session, never a lost
/// finalize.
#[test]
fn close_racing_request_never_dangles() {
    let _g = serial();
    lsm_check::model(|| {
        let reg: Arc<SessionRegistry<u32>> = Arc::new(SessionRegistry::new());
        reg.open("s", || Ok::<_, ()>(1)).expect("open");
        let r = Arc::clone(&reg);
        let t = thread::spawn(move || r.close("s", |s| *s));
        let seen = reg.with("s", |s| {
            *s += 1;
            *s
        });
        let closed = t.join().unwrap();
        match (seen, closed) {
            (Some(2), Some(Some(2))) => {} // request first, close finalized the mutation
            (None, Some(Some(1))) => {}    // close first, request missed
            other => panic!("unexplainable close/request outcome {other:?}"),
        }
        assert!(reg.is_empty());
    });
}

/// The shutdown handshake, with the blocking `accept` modeled as a
/// condvar wait: two concurrent `SHUTDOWN` requesters fire exactly one
/// wake-up (first-request-wins on the flag's `AcqRel` swap), the parked
/// listener always wakes (no lost-wakeup interleaving exists — the
/// checker's deadlock detector would find one), and on waking it
/// observes the flag via the acquire/release pairing.
#[test]
fn shutdown_wakeup_is_never_lost_and_fires_once() {
    let _g = serial();
    lsm_check::model(|| {
        let flag = Arc::new(ShutdownFlag::new());
        let poked = Arc::new((Mutex::new(false), Condvar::new()));
        let wakes = Arc::new(AtomicUsize::new(0));

        let (f, p) = (Arc::clone(&flag), Arc::clone(&poked));
        let listener = thread::spawn(move || {
            let (woke, cv) = &*p;
            let mut woke = woke.lock();
            while !*woke {
                cv.wait(&mut woke);
            }
            assert!(f.is_requested(), "wake-up arrived before the flag was visible");
        });

        let requesters: Vec<_> = (0..2)
            .map(|_| {
                let (f, p, w) = (Arc::clone(&flag), Arc::clone(&poked), Arc::clone(&wakes));
                thread::spawn(move || {
                    if f.request() {
                        w.fetch_add(1, Ordering::AcqRel);
                        let (woke, cv) = &*p;
                        *woke.lock() = true;
                        cv.notify_one();
                    }
                })
            })
            .collect();
        for r in requesters {
            r.join().unwrap();
        }
        listener.join().unwrap();
        assert_eq!(wakes.load(Ordering::Acquire), 1, "exactly one requester owns the wake-up");
        assert!(flag.is_requested());
    });
}
