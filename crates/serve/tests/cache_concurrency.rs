//! Concurrency and determinism tests for the shared pooled-encoding
//! cache: N threads hammering one [`EncodingCache`] through the real
//! featurizer path must produce vectors bitwise identical to the
//! uncached single-session path, whether they hit or miss — and a
//! capacity-starved cache must only ever cost recomputation, never
//! correctness.

use lsm_core::{BertFeaturizer, BertFeaturizerConfig, PooledCache};
use lsm_lexicon::full_lexicon;
use lsm_serve::EncodingCache;
use std::sync::OnceLock;

/// One tiny MLM-pre-trained featurizer for the whole test binary
/// (pre-training dominates the runtime; every test shares it read-only).
fn featurizer() -> &'static BertFeaturizer {
    static F: OnceLock<BertFeaturizer> = OnceLock::new();
    F.get_or_init(|| BertFeaturizer::pretrain(&full_lexicon(), BertFeaturizerConfig::tiny()))
}

/// Token-id sequences for the movielens source attributes — the real
/// shape of what sessions encode — deduplicated so per-sequence counter
/// arithmetic below is exact.
fn attribute_ids(f: &BertFeaturizer) -> Vec<Vec<u32>> {
    let dataset = lsm_datasets::by_name("movielens", 1).expect("movielens dataset");
    let mut out: Vec<Vec<u32>> = Vec::new();
    for a in dataset.source.attr_ids() {
        let ids = f.attr_token_ids(&dataset.source, a);
        if !out.contains(&ids) {
            out.push(ids);
        }
    }
    out
}

fn bits(t: &lsm_nn::Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn concurrent_same_attributes_are_bitwise_identical_to_uncached() {
    let f = featurizer();
    let ids = attribute_ids(f);
    let reference: Vec<Vec<u32>> = ids.iter().map(|i| bits(&f.single_pooled(i))).collect();

    let cache = EncodingCache::new(1024);
    // Warm the cache on one thread so every worker below is guaranteed to
    // exercise the hit path.
    let refs: Vec<&[u32]> = ids.iter().map(|i| i.as_slice()).collect();
    let warm = f.pooled_many_cached(&refs, 1, Some(&cache as &dyn PooledCache));
    for (w, r) in warm.iter().zip(&reference) {
        assert_eq!(&bits(w), r, "warm-up must match the uncached path");
    }
    let warm_stats = cache.stats();
    assert!(warm_stats.insertions > 0, "warm-up must populate the cache");

    std::thread::scope(|scope| {
        for worker in 0..8 {
            let refs = &refs;
            let reference = &reference;
            let cache = &cache;
            scope.spawn(move || {
                let out = f.pooled_many_cached(refs, 1, Some(cache as &dyn PooledCache));
                for (i, t) in out.iter().enumerate() {
                    assert_eq!(
                        bits(t),
                        reference[i],
                        "worker {worker}: cached vector {i} diverged from single_pooled"
                    );
                }
            });
        }
    });

    let stats = cache.stats();
    assert!(
        stats.hits >= warm_stats.misses * 8,
        "every worker lookup after warm-up must hit (stats: {stats:?})"
    );
    assert_eq!(
        stats.misses, warm_stats.misses,
        "no worker may miss on a warmed cache (stats: {stats:?})"
    );
}

#[test]
fn concurrent_disjoint_attributes_fill_the_cache_once() {
    let f = featurizer();
    let ids = attribute_ids(f);
    let reference: Vec<Vec<u32>> = ids.iter().map(|i| bits(&f.single_pooled(i))).collect();

    let cache = EncodingCache::new(1024);
    // Each worker encodes a disjoint slice; together they cover the set.
    let workers = 4;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let ids = &ids;
            let reference = &reference;
            let cache = &cache;
            scope.spawn(move || {
                for (i, seq) in ids.iter().enumerate() {
                    if i % workers != w {
                        continue;
                    }
                    let refs = [seq.as_slice()];
                    let out = f.pooled_many_cached(&refs, 1, Some(cache as &dyn PooledCache));
                    assert_eq!(bits(&out[0]), reference[i], "vector {i} diverged");
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(
        stats.insertions,
        ids.len() as u64,
        "disjoint workers insert each unique attribute exactly once (stats: {stats:?})"
    );
    assert_eq!(stats.evictions, 0, "capacity 1024 must not evict {} entries", ids.len());

    // A second pass over everything is all hits, still bitwise identical.
    let refs: Vec<&[u32]> = ids.iter().map(|i| i.as_slice()).collect();
    let before = cache.stats();
    let out = f.pooled_many_cached(&refs, 1, Some(&cache as &dyn PooledCache));
    for (i, t) in out.iter().enumerate() {
        assert_eq!(bits(t), reference[i], "second-pass vector {i} diverged");
    }
    let after = cache.stats();
    assert_eq!(after.misses, before.misses, "second pass must be all hits");
}

#[test]
fn capacity_starved_cache_stays_correct_under_threads() {
    let f = featurizer();
    let ids = attribute_ids(f);
    let reference: Vec<Vec<u32>> = ids.iter().map(|i| bits(&f.single_pooled(i))).collect();

    // Room for two entries: almost every access evicts, so the test walks
    // the miss → insert → evict path constantly while threads interleave.
    let cache = EncodingCache::new(2);
    let refs: Vec<&[u32]> = ids.iter().map(|i| i.as_slice()).collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let refs = &refs;
            let reference = &reference;
            let cache = &cache;
            scope.spawn(move || {
                for _ in 0..3 {
                    let out = f.pooled_many_cached(refs, 1, Some(cache as &dyn PooledCache));
                    for (i, t) in out.iter().enumerate() {
                        assert_eq!(bits(t), reference[i], "starved-cache vector {i} diverged");
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert!(stats.evictions > 0, "capacity 2 must evict under this load (stats: {stats:?})");
}
