//! End-to-end tests of the dataflow-aware rules (R9–R12) over generated
//! fixture workspaces, plus the inline-suppression edge cases the new
//! rules rely on: same-line vs line-above comments, several rules in one
//! comment, parenthesized reasons, and missing-reason rejection for each
//! new rule.

mod common;

use lsm_lint::{lint_root, Violation};

fn lint(fixture: &common::Fixture) -> Vec<Violation> {
    lint_root(fixture.root()).expect("fixture root lints")
}

fn active_of<'a>(violations: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.suppressed.is_none() && v.rule == rule).collect()
}

// ------------------------------------------------------------------ R9

const R9_TRIGGER_CORE: &str = "\
//! R9 triggers: clock taint laundered through a helper and a binding hop.

#![forbid(unsafe_code)]

/// Ad-hoc jitter helper: the clock read itself is R2's finding.
fn jitter() -> f64 {
    std::time::Instant::now().elapsed().as_secs_f64()
}

/// The laundered value lands in a score: R2 sees nothing here.
pub fn score(base: f64) -> f64 {
    let eps = jitter();
    base + eps
}

/// A binding hop inside one function is still a hop.
pub fn skewed(base: f64) -> f64 {
    let t0 = std::time::Instant::now();
    let warm = t0;
    base + warm.elapsed().as_secs_f64()
}
";

#[test]
fn r9_flags_laundered_clock_values_with_their_chains() {
    let fixture =
        common::clean_builder("r9-trigger").file("crates/core/src/lib.rs", R9_TRIGGER_CORE).build();
    let violations = lint(&fixture);
    let r9 = active_of(&violations, "R9-taint");
    let lines: Vec<usize> = r9.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![12, 19], "{r9:?}");
    // The call-laundered finding names the hop through `jitter` and
    // carries the chain as related locations for SARIF.
    let through_call = r9.iter().find(|v| v.line == 12).expect("laundered call finding");
    assert!(through_call.message.contains("jitter"), "{}", through_call.message);
    assert!(!through_call.related.is_empty());
    // Direct source bindings stay R2's findings: `t0` itself is not R9.
    assert!(!lines.contains(&18));
    let r2_lines: Vec<usize> = active_of(&violations, "R2-wall-clock")
        .iter()
        .filter(|v| v.file == "crates/core/src/lib.rs")
        .map(|v| v.line)
        .collect();
    assert_eq!(r2_lines, vec![7, 18]);
}

// ----------------------------------------------------------------- R10

const R10_TRIGGER_KERNELS: &str = "\
//! R10 triggers: unchecked narrowing and wrapping arithmetic on kernel
//! paths.

#![forbid(unsafe_code)]

/// The packed header width silently truncates large inputs.
pub fn pack(xs: &[f32]) -> Vec<u16> {
    let n = xs.len();
    let mut out = Vec::new();
    for i in 0..n {
        out.push(i as u16);
    }
    out.push(n as u16);
    out
}

/// Checked narrowing passes: `min` bounds the value in-statement.
pub fn bounded(xs: &[f32]) -> u16 {
    let n = xs.len();
    n.min(u16::MAX as usize) as u16
}

/// Wrapping arithmetic outside tests must state its invariant.
pub fn fold(xs: &[u32]) -> u32 {
    let mut acc = 0u32;
    for x in xs {
        acc = acc.wrapping_add(*x);
    }
    acc
}
";

#[test]
fn r10_flags_unchecked_narrowing_and_wrapping_only() {
    let fixture = common::clean_builder("r10-trigger")
        .file("crates/nn/src/kernels.rs", R10_TRIGGER_KERNELS)
        .build();
    let violations = lint(&fixture);
    let r10 = active_of(&violations, "R10-cast-discipline");
    let lines: Vec<usize> = r10.iter().map(|v| v.line).collect();
    // Loop counter narrowed, length narrowed, wrapping accumulator — and
    // nothing on the `min`-bounded cast in `bounded`.
    assert_eq!(lines, vec![11, 13, 27], "{r10:?}");
    assert!(r10[0].message.contains("as u16"), "{}", r10[0].message);
    assert!(r10[2].message.contains("wrapping_add"), "{}", r10[2].message);
}

// ----------------------------------------------------------------- R11

const R11_TRIGGER_STORE: &str = "\
//! R11 triggers: unpaired Acquire, opposite lock orders, relaxed spin.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A counter whose snapshot load claims Acquire with nothing to pair.
pub struct Stats {
    hits: AtomicU64,
}

impl Stats {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> u64 {
        self.hits.load(Ordering::Acquire)
    }
}

/// Two locks the API takes in opposite orders.
pub struct Pair {
    left: Mutex<u64>,
    right: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let a = self.left.lock().unwrap();
        let b = self.right.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u64 {
        let b = self.right.lock().unwrap();
        let a = self.left.lock().unwrap();
        *a + *b
    }
}

/// A relaxed spin-wait can spin forever and orders nothing.
pub fn wait_ready(flag: &AtomicU64) {
    while flag.load(Ordering::Relaxed) == 0 {
        std::hint::spin_loop();
    }
}
";

#[test]
fn r11_flags_unpaired_acquire_lock_cycles_and_relaxed_spins() {
    let fixture = common::clean_builder("r11-trigger")
        .file("crates/store/src/lib.rs", R11_TRIGGER_STORE)
        .build();
    let violations = lint(&fixture);
    let r11 = active_of(&violations, "R11-lock-discipline");
    assert_eq!(r11.len(), 3, "{r11:?}");
    let acquire = r11.iter().find(|v| v.message.contains("Acquire")).expect("atomics finding");
    assert_eq!(acquire.line, 19);
    // The unpaired writes ride along as related locations.
    assert!(acquire.related.iter().any(|r| r.line == 15), "{:?}", acquire.related);
    let cycle = r11.iter().find(|v| v.message.contains("cycle")).expect("lock-order finding");
    assert!(cycle.related.len() >= 2, "{:?}", cycle.related);
    let spin = r11.iter().find(|v| v.message.contains("spin")).expect("spin finding");
    assert_eq!(spin.line, 45);
}

#[test]
fn r11_is_silent_on_consistent_order_and_paired_atomics() {
    let clean = "\
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Stats {
    hits: AtomicU64,
}

impl Stats {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::AcqRel);
    }

    pub fn snapshot(&self) -> u64 {
        self.hits.load(Ordering::Acquire)
    }
}

pub struct Pair {
    left: Mutex<u64>,
    right: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let a = self.left.lock().unwrap();
        let b = self.right.lock().unwrap();
        *a + *b
    }

    pub fn also_forward(&self) -> u64 {
        let a = self.left.lock().unwrap();
        let b = self.right.lock().unwrap();
        *a - *b
    }
}
";
    let fixture = common::clean_builder("r11-clean").file("crates/store/src/lib.rs", clean).build();
    let violations = lint(&fixture);
    assert!(active_of(&violations, "R11-lock-discipline").is_empty(), "{violations:?}");
}

// ----------------------------------------------------------------- R12

const R12_TRIGGER_JOURNAL: &str = "\
//! R12 triggers: fresh allocations inside instrumented spans.

#![forbid(unsafe_code)]

/// The span times the flush; the per-call Vec is measured noise.
pub fn flush(frames: &[u64]) -> usize {
    let _span = lsm_obs::span(\"journal.flush\");
    let staged: Vec<u64> = frames.to_vec();
    staged.len()
}

/// The closure body allocates inside `timed`.
pub fn drain() -> usize {
    lsm_obs::timed(\"journal.drain\", || {
        let buf = vec![0u8; 4096];
        buf.len()
    })
}

/// Reuse passes: `resize` on a caller-owned buffer is the pattern the
/// rule pushes toward, and allocation outside the span is out of scope.
pub fn reuse(frames: &[u64], scratch: &mut Vec<u64>) -> usize {
    let staged: Vec<u64> = frames.to_vec();
    let _span = lsm_obs::span(\"journal.reuse\");
    scratch.resize(staged.len(), 0);
    scratch.len()
}
";

#[test]
fn r12_flags_allocations_inside_spans_and_names_the_span() {
    let fixture = common::clean_builder("r12-trigger")
        .file("crates/store/src/journal.rs", R12_TRIGGER_JOURNAL)
        .build();
    let violations = lint(&fixture);
    let r12 = active_of(&violations, "R12-alloc-in-span");
    let lines: Vec<usize> = r12.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![8, 15], "{r12:?}");
    assert!(r12[0].message.contains("journal.flush"), "{}", r12[0].message);
    assert!(r12[1].message.contains("journal.drain"), "{}", r12[1].message);
    // The span-open site rides along as a related location.
    assert_eq!(r12[0].related.first().map(|r| r.line), Some(7));
}

// ---------------------------------------------------- suppression edges

const SUPPRESSED_KERNELS: &str = "\
//! Suppression placement: same-line and line-above, with a parenthesized
//! reason.

#![forbid(unsafe_code)]

pub fn pack(xs: &[f32]) -> Vec<u16> {
    let n = xs.len();
    let mut out = Vec::new();
    for i in 0..n {
        // lsm-lint: allow(R10-cast-discipline, bounded (see pack docs) by construction)
        out.push(i as u16);
    }
    out.push(n as u16); // lsm-lint: allow(R10-cast-discipline, header count is caller-bounded)
    out
}
";

#[test]
fn suppressions_work_on_the_same_line_and_the_line_above() {
    let fixture = common::clean_builder("suppress-placement")
        .file("crates/nn/src/kernels.rs", SUPPRESSED_KERNELS)
        .build();
    let violations = lint(&fixture);
    assert!(active_of(&violations, "R10-cast-discipline").is_empty(), "{violations:?}");
    let mut reasons: Vec<&str> = violations
        .iter()
        .filter(|v| v.rule == "R10-cast-discipline")
        .filter_map(|v| v.suppressed.as_deref())
        .collect();
    reasons.sort_unstable();
    // The parenthesized reason survives in full — the close paren is
    // matched from the right, not the first `)` in the text.
    assert_eq!(
        reasons,
        vec!["bounded (see pack docs) by construction", "header count is caller-bounded"],
    );
}

const SUPPRESSED_MULTI_RULE: &str = "\
//! One allow comment covering two rules that fire on the same line.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

pub fn wait_ready(flag: &AtomicU64) {
    // lsm-lint: allow(R7-concurrency, R11-lock-discipline, startup handshake; bounded by the init barrier)
    while flag.load(Ordering::Relaxed) == 0 {
        std::hint::spin_loop();
    }
}
";

#[test]
fn one_comment_suppresses_several_rules() {
    let fixture = common::clean_builder("suppress-multi")
        .file("crates/store/src/lib.rs", SUPPRESSED_MULTI_RULE)
        .build();
    let violations = lint(&fixture);
    assert!(active_of(&violations, "R7-concurrency").is_empty(), "{violations:?}");
    assert!(active_of(&violations, "R11-lock-discipline").is_empty(), "{violations:?}");
    let suppressed: Vec<&str> =
        violations.iter().filter(|v| v.line == 9).filter_map(|v| v.suppressed.as_deref()).collect();
    assert_eq!(suppressed.len(), 2, "{violations:?}");
    for reason in suppressed {
        assert_eq!(reason, "startup handshake; bounded by the init barrier");
    }
}

#[test]
fn missing_reason_rejection_for_each_new_rule() {
    let r9 = R9_TRIGGER_CORE.replace(
        "    let eps = jitter();",
        "    // lsm-lint: allow(R9-taint)\n    let eps = jitter();",
    );
    let r10 = R10_TRIGGER_KERNELS.replace(
        "    out.push(n as u16);",
        "    // lsm-lint: allow(R10-cast-discipline)\n    out.push(n as u16);",
    );
    let r11 = R11_TRIGGER_STORE.replace(
        "        self.hits.load(Ordering::Acquire)",
        "        // lsm-lint: allow(R11-lock-discipline)\n        self.hits.load(Ordering::Acquire)",
    );
    let r12 = R12_TRIGGER_JOURNAL.replace(
        "    let staged: Vec<u64> = frames.to_vec();\n    staged.len()",
        "    // lsm-lint: allow(R12-alloc-in-span)\n    let staged: Vec<u64> = frames.to_vec();\n    staged.len()",
    );
    let fixture = common::clean_builder("suppress-no-reason")
        .file("crates/core/src/lib.rs", &r9)
        .file("crates/nn/src/kernels.rs", &r10)
        .file("crates/store/src/lib.rs", &r11)
        .file("crates/store/src/journal.rs", &r12)
        .build();
    let violations = lint(&fixture);
    for rule in ["R9-taint", "R10-cast-discipline", "R11-lock-discipline", "R12-alloc-in-span"] {
        let hit = violations
            .iter()
            .find(|v| v.rule == rule && v.message.contains("lacks a reason"))
            .unwrap_or_else(|| panic!("no missing-reason note for {rule}: {violations:#?}"));
        assert!(hit.suppressed.is_none(), "{rule} must stay active");
    }
}
