//! R8 reachability verdicts over the on-disk fixture workspace in
//! `tests/fixtures/callgraph/`: a `pub use` re-export out of a private
//! module (plus a cross-crate re-export of the same fn), trait-method
//! dispatch behind `dyn`, and a recursion cycle — and one dead private
//! loader that must stay un-flagged.

use lsm_lint::{lint_root, Violation};
use std::path::PathBuf;

fn manifest_dir() -> PathBuf {
    PathBuf::from(option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/lint"))
}

fn lint_callgraph_fixture() -> Vec<Violation> {
    let root = manifest_dir().join("tests/fixtures/callgraph");
    assert!(root.is_dir(), "missing fixture root {}", root.display());
    lint_root(&root).expect("fixture root lints")
}

fn r8(violations: &[Violation]) -> Vec<&Violation> {
    violations.iter().filter(|v| v.rule == "R8-panic-reachability").collect()
}

#[test]
fn r8_fires_on_exactly_the_reachable_sites() {
    let violations = lint_callgraph_fixture();
    let located: Vec<(&str, usize)> =
        r8(&violations).iter().map(|v| (v.file.as_str(), v.line)).collect();
    assert_eq!(
        located,
        vec![
            ("crates/engine/src/lib.rs", 17),
            ("crates/gateway/src/internal.rs", 5),
            ("crates/pipeline/src/lib.rs", 19),
        ],
    );
}

#[test]
fn reexport_out_of_a_private_module_makes_the_fn_a_root() {
    let violations = lint_callgraph_fixture();
    let v = r8(&violations)
        .into_iter()
        .find(|v| v.file == "crates/gateway/src/internal.rs")
        .expect("gateway finding");
    // `internal` is a private module; only the `pub use` makes the loader
    // part of the public API, so the path starts (and ends) at the fn.
    assert!(v.message.contains("public API: gateway::internal::load_manifest;"), "{}", v.message);
}

#[test]
fn trait_dispatch_reaches_the_io_backed_impl_only() {
    let violations = lint_callgraph_fixture();
    let v = r8(&violations)
        .into_iter()
        .find(|v| v.file == "crates/engine/src/lib.rs")
        .expect("engine finding");
    assert!(v.message.contains("engine::run -> engine::JsonCodec::decode"), "{}", v.message);
}

#[test]
fn cycles_do_not_break_reachability_or_path_reporting() {
    let violations = lint_callgraph_fixture();
    let v = r8(&violations)
        .into_iter()
        .find(|v| v.file == "crates/pipeline/src/lib.rs")
        .expect("pipeline finding");
    assert!(
        v.message
            .contains("pipeline::ingest -> pipeline::parse_chunk -> pipeline::resolve_include"),
        "{}",
        v.message
    );
}

#[test]
fn unreachable_private_site_gets_r5_but_not_r8() {
    let violations = lint_callgraph_fixture();
    let dead_line = 25; // `dead_loader`'s unwrap in crates/pipeline/src/lib.rs
    assert!(violations.iter().any(|v| v.rule == "R5-panic-policy" && v.line == dead_line));
    assert!(!r8(&violations).iter().any(|v| v.line == dead_line));
}

#[test]
fn violations_carry_fully_qualified_items() {
    let violations = lint_callgraph_fixture();
    let v = r8(&violations)
        .into_iter()
        .find(|v| v.file == "crates/engine/src/lib.rs")
        .expect("engine finding");
    assert_eq!(v.item.as_deref(), Some("engine::JsonCodec::decode"));
}
