//! End-to-end SARIF export over the generated trigger fixture: the log must
//! be syntactically valid JSON and carry the structure SARIF 2.1.0 requires
//! (`version`, `runs[].tool.driver`, per-result `ruleId`/`message`/
//! `locations`). The crate is dependency-free, so a tiny JSON reader lives
//! here instead of a schema-validation library.

mod common;

use lsm_lint::{baseline, lint_root, sarif};

/// A minimal JSON value — just enough to check the SARIF shape.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut i = 0;
    let v = value(bytes, &mut i)?;
    ws(bytes, &mut i);
    if i != bytes.len() {
        return Err(format!("trailing bytes at {i}"));
    }
    Ok(v)
}

fn ws(b: &[u8], i: &mut usize) {
    while b.get(*i).is_some_and(|c| c.is_ascii_whitespace()) {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            let mut fields = Vec::new();
            ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                ws(b, i);
                let Json::Str(key) = value(b, i)? else {
                    return Err(format!("non-string object key at {i}"));
                };
                ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at {i}"));
                }
                *i += 1;
                fields.push((key, value(b, i)?));
                ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}' at {i}, got {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(value(b, i)?);
                ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']' at {i}, got {other:?}")),
                }
            }
        }
        Some(b'"') => {
            *i += 1;
            let mut s = String::new();
            loop {
                match b.get(*i) {
                    Some(b'"') => {
                        *i += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *i += 1;
                        match b.get(*i) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*i + 1..*i + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated \\u escape")?;
                                let code =
                                    u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                                *i += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *i += 1;
                    }
                    Some(&c) if c < 0x20 => {
                        return Err(format!("raw control byte {c:#x} in string at {i}"));
                    }
                    Some(&c) if c < 0x80 => {
                        s.push(c as char);
                        *i += 1;
                    }
                    Some(_) => {
                        let rest = std::str::from_utf8(&b[*i..]).map_err(|e| e.to_string())?;
                        let c = rest.chars().next().ok_or("truncated string")?;
                        s.push(c);
                        *i += c.len_utf8();
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            *i += 1;
            while b.get(*i).is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at {start}"))
        }
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        other => Err(format!("unexpected byte {other:?} at {i}")),
    }
}

fn trigger_sarif() -> Json {
    let fixture = common::trigger_fixture();
    let violations = lint_root(fixture.root()).expect("fixture lints");
    assert!(!violations.is_empty());
    let covered = baseline::covered_flags(&violations, &baseline::Counts::new());
    let log = sarif::to_sarif(&violations, &covered);
    parse(&log).expect("SARIF log is valid JSON")
}

#[test]
fn sarif_log_has_the_required_2_1_0_structure() {
    let log = trigger_sarif();
    assert_eq!(log.get("version").expect("version").str(), "2.1.0");
    assert!(log.get("$schema").expect("$schema").str().contains("sarif-2.1.0.json"));

    let runs = log.get("runs").expect("runs").arr();
    assert_eq!(runs.len(), 1);
    let driver = runs[0].get("tool").and_then(|t| t.get("driver")).expect("tool.driver");
    assert_eq!(driver.get("name").expect("driver name").str(), "lsm-lint");
    // The full catalog, R1 through R12, rides in the driver rules, each
    // with help text and a default severity.
    let rules = driver.get("rules").expect("driver rules").arr();
    assert_eq!(rules.len(), 12);
    for rule in rules {
        let id = rule.get("id").expect("rule id").str();
        rule.get("shortDescription").and_then(|d| d.get("text")).expect("shortDescription");
        assert!(
            rule.get("help").and_then(|h| h.get("text")).is_some(),
            "rule {id} lacks help text"
        );
        let level = rule
            .get("defaultConfiguration")
            .and_then(|c| c.get("level"))
            .expect("defaultConfiguration.level")
            .str();
        let expected = if id.starts_with("R12") { "warning" } else { "error" };
        assert_eq!(level, expected, "rule {id}");
    }
}

#[test]
fn related_locations_survive_the_json_round_trip() {
    let mut v = lsm_lint::Violation {
        rule: "R9-taint",
        file: "crates/core/src/score.rs".into(),
        line: 10,
        message: "clock taint reaches a score".into(),
        suppressed: None,
        related: Vec::new(),
        item: None,
    };
    v.related.push(lsm_lint::Related {
        file: "crates/core/src/util.rs".into(),
        line: 4,
        note: "Instant::now() (crates/core/src/util.rs:4)".into(),
    });
    let log = parse(&sarif::to_sarif(&[v], &[false])).expect("valid JSON");
    let results = log.get("runs").expect("runs").arr()[0].get("results").expect("results").arr();
    let related = results[0].get("relatedLocations").expect("relatedLocations").arr();
    assert_eq!(related.len(), 1);
    let phys = related[0].get("physicalLocation").expect("physicalLocation");
    assert_eq!(
        phys.get("artifactLocation").and_then(|a| a.get("uri")).expect("uri").str(),
        "crates/core/src/util.rs"
    );
    assert!(matches!(
        phys.get("region").and_then(|r| r.get("startLine")),
        Some(Json::Num(n)) if *n == 4.0
    ));
    related[0].get("message").and_then(|m| m.get("text")).expect("related message");
}

#[test]
fn every_result_is_locatable_and_typed() {
    let log = trigger_sarif();
    let results = log.get("runs").expect("runs").arr()[0].get("results").expect("results").arr();
    assert!(!results.is_empty());
    for r in results {
        let rule_id = r.get("ruleId").expect("ruleId").str();
        assert!(rule_id.starts_with('R'), "odd ruleId {rule_id}");
        r.get("message").and_then(|m| m.get("text")).expect("message.text");
        let locations = r.get("locations").expect("locations").arr();
        assert_eq!(locations.len(), 1);
        let phys = locations[0].get("physicalLocation").expect("physicalLocation");
        let uri = phys
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .expect("artifactLocation.uri")
            .str();
        assert!(uri.ends_with(".rs"), "odd uri {uri}");
        let line =
            phys.get("region").and_then(|reg| reg.get("startLine")).expect("region.startLine");
        assert!(matches!(line, Json::Num(n) if *n >= 1.0));
    }
}

#[test]
fn unbaselined_findings_are_errors_and_frozen_ones_warnings() {
    let fixture = common::trigger_fixture();
    let violations = lint_root(fixture.root()).expect("fixture lints");
    // Freeze the fixture's own debt: everything becomes a suppressed warning.
    let frozen = baseline::count(&violations);
    let covered = baseline::covered_flags(&violations, &frozen);
    let log = parse(&sarif::to_sarif(&violations, &covered)).expect("valid JSON");
    let results = log.get("runs").expect("runs").arr()[0].get("results").expect("results").arr();
    for r in results {
        assert_eq!(r.get("level").expect("level").str(), "warning");
        let kind =
            r.get("suppressions").expect("suppressions").arr()[0].get("kind").expect("kind").str();
        assert_eq!(kind, "external");
    }
}
