//! Cross-crate re-export: forwards `gateway`'s loader and calls it across
//! the crate boundary.

#![forbid(unsafe_code)]

pub use lsm_gateway::load_manifest;

/// A cross-crate call edge into `gateway`.
pub fn fetch(path: &str) -> String {
    load_manifest(path)
}
