//! Private module; `load_manifest` escapes only via the re-export.

/// Reachable from outside solely through `pub use` in `lib.rs`.
pub fn load_manifest(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}
