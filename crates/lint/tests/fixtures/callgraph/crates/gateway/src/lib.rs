//! Public surface: the loader lives in a private module and is visible
//! outside the crate only through the `pub use` re-export below.

#![forbid(unsafe_code)]

mod internal;

pub use internal::load_manifest;
