//! A recursion cycle between two private helpers, reachable from `ingest`,
//! plus a dead loader no public path reaches.

#![forbid(unsafe_code)]

/// The only public entry point.
pub fn ingest(path: &str) -> String {
    parse_chunk(path, 0)
}

fn parse_chunk(path: &str, depth: usize) -> String {
    if depth > 4 {
        return String::new();
    }
    resolve_include(path, depth)
}

fn resolve_include(path: &str, depth: usize) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    parse_chunk(&text, depth + 1)
}

/// Never called and not `pub`: R5 still applies, R8 must stay quiet.
fn dead_loader(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}
