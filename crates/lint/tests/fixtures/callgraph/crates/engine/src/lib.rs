//! Trait dispatch: the panic site hides behind `dyn Codec`, so reaching it
//! requires the call graph's dispatch over-approximation.

#![forbid(unsafe_code)]

/// Decoding interface the pipeline is generic over.
pub trait Codec {
    /// Decodes the file at `path`.
    fn decode(&self, path: &str) -> String;
}

/// The io-backed implementation.
pub struct JsonCodec;

impl Codec for JsonCodec {
    fn decode(&self, path: &str) -> String {
        std::fs::read_to_string(path).unwrap()
    }
}

/// An implementation with no io at all.
pub struct NullCodec;

impl Codec for NullCodec {
    fn decode(&self, _path: &str) -> String {
        String::new()
    }
}

/// The dynamic call site: every `decode` impl is a possible callee.
pub fn run(codec: &dyn Codec, path: &str) -> String {
    codec.decode(path)
}
