//! Suppression fixtures: one justified allow, one missing its reason.

#![forbid(unsafe_code)]

use std::collections::HashMap;

/// Iteration feeding an order-insensitive count — a justified allow.
pub fn count(scores: &HashMap<String, f64>) -> usize {
    // lsm-lint: allow(R1-hash-iter, count is order-insensitive)
    scores.values().count()
}

/// An allow() without a reason does not silence anything.
pub fn sum(scores: &HashMap<String, f64>) -> f64 {
    // lsm-lint: allow(R1-hash-iter)
    scores.values().sum()
}
