//! R5 clean: io errors are propagated, and `unwrap` away from io/serde
//! is out of scope.

#![forbid(unsafe_code)]

use std::io;

/// The read error reaches the caller.
pub fn slurp(path: &str) -> Result<String, io::Error> {
    std::fs::read_to_string(path)
}

/// `unwrap` with no io/serde in the statement is not R5's business.
pub fn answer() -> u32 {
    "42".parse().unwrap()
}
