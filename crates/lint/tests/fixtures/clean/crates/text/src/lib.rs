//! R3 clean: the RNG takes an explicit seed.

#![forbid(unsafe_code)]

/// Replayable: the caller decides the seed.
pub fn roll(seed: u64) -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.next_u64()
}
