//! R2 clean: the observability crate owns the wall clock.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Timing belongs here; every other crate goes through `lsm_obs::span`.
pub fn stamp() -> Instant {
    Instant::now()
}
