//! R1 clean: lookups on a `HashMap` are fine; iteration goes through a
//! `BTreeMap`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

/// A point lookup never observes bucket order.
pub fn lookup(scores: &HashMap<String, f64>, key: &str) -> Option<f64> {
    scores.get(key).copied()
}

/// Iteration is fine because the map is ordered.
pub fn total(ordered: &BTreeMap<String, f64>) -> f64 {
    ordered.values().sum()
}
