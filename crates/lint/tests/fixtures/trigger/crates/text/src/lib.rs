//! R3 trigger: an entropy-seeded RNG.

#![forbid(unsafe_code)]

/// A run seeded from process entropy can never be replayed.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
