//! R5 trigger: `unwrap` on an io result in library code.

#![forbid(unsafe_code)]

/// Panics on any read error instead of propagating it.
pub fn slurp(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}
