//! R4 trigger (crate level): zero unsafe code but no `#![forbid(unsafe_code)]`.

/// Nothing unsafe anywhere in this crate — the compiler should be told
/// to keep it that way.
pub fn double(x: u32) -> u32 {
    x * 2
}
