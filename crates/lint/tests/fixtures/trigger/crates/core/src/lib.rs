//! R1 trigger: iterating a `HashMap` in a deterministic crate.

#![forbid(unsafe_code)]

use std::collections::HashMap;

/// Summing over `.values()` observes bucket order: the result is an
/// f64 fold whose rounding depends on visit order.
pub fn sum_scores(scores: &HashMap<String, f64>) -> f64 {
    scores.values().sum()
}

/// A `for` loop over the map observes the same bucket order.
pub fn count_pairs(scores: &HashMap<String, f64>) -> usize {
    let mut n = 0;
    for _pair in scores {
        n += 1;
    }
    n
}
