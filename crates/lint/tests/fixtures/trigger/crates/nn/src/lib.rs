//! R4 trigger: an `unsafe` block whose soundness argument is missing.

/// First byte without a bounds check and without a safety argument.
pub fn first(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
