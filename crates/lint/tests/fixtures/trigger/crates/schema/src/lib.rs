//! R2 trigger: a wall-clock read outside the observability layer.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Matching latency measured ad hoc instead of through `lsm_obs::span`.
pub fn stamp() -> Instant {
    Instant::now()
}
