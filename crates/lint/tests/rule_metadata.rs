//! Rule-catalog metadata completeness: every rule the gate can fire must
//! be documented everywhere a contributor meets it — `--explain`, the
//! one-line `--list-rules` summary, and the SARIF `rules` descriptor CI
//! uploads to code scanning. A rule added without its metadata fails
//! here, not in a reviewer's browser.

use lsm_lint::{config, explain, sarif};

/// The catalog is exactly R1..R12, each id numbered and kebab-styled.
#[test]
fn catalog_is_contiguous_r1_to_r12() {
    let numbers: Vec<usize> = config::RULE_IDS
        .iter()
        .map(|id| {
            let bare = id.split('-').next().expect("rule id has a number part");
            bare.strip_prefix('R')
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("malformed rule id {id:?}"))
        })
        .collect();
    assert_eq!(numbers, (1..=12).collect::<Vec<_>>(), "rule ids must be contiguous R1..R12");
}

/// Every rule id resolves through `--explain`, in both spellings, with
/// non-trivial text that leads with the rule's own id.
#[test]
fn every_rule_has_explain_text() {
    for id in config::RULE_IDS {
        let text =
            explain::explain(id).unwrap_or_else(|| panic!("no --explain entry for {id} (full id)"));
        assert!(text.len() > 80, "--explain {id} is a stub ({} bytes)", text.len());
        assert!(text.contains(id), "--explain {id} must lead with its id");
        let bare = id.split('-').next().expect("id number");
        assert_eq!(
            explain::explain(bare),
            Some(text),
            "--explain {bare} (bare number) must resolve to the same text"
        );
    }
}

/// Every rule has a one-line summary, and the summary table is in the
/// same order as the id list (SARIF `ruleIndex` relies on that).
#[test]
fn every_rule_has_a_summary_in_catalog_order() {
    assert_eq!(config::RULE_SUMMARIES.len(), config::RULE_IDS.len());
    for (id, (summary_id, summary)) in config::RULE_IDS.iter().zip(config::RULE_SUMMARIES) {
        assert_eq!(id, summary_id, "RULE_SUMMARIES order must match RULE_IDS");
        assert!(!summary.is_empty(), "empty summary for {id}");
    }
}

/// The SARIF driver carries a full descriptor per rule: id,
/// shortDescription, long-form help (the `--explain` text), and a default
/// level. Checked on an empty report so this is about the catalog, not
/// any particular finding.
#[test]
fn sarif_rules_descriptors_are_complete() {
    let s = sarif::to_sarif(&[], &[]);
    for id in config::RULE_IDS {
        assert!(
            s.contains(&format!("\"id\": \"{id}\"")),
            "SARIF rules[] is missing a descriptor for {id}"
        );
    }
    let n = config::RULE_IDS.len();
    assert_eq!(
        s.matches("\"shortDescription\":").count(),
        n,
        "every SARIF rule descriptor needs a shortDescription"
    );
    assert_eq!(
        s.matches("\"help\":").count(),
        n,
        "every SARIF rule descriptor needs help text (the --explain entry)"
    );
    assert_eq!(
        s.matches("\"defaultConfiguration\":").count(),
        n,
        "every SARIF rule descriptor needs a defaultConfiguration level"
    );
    for level in ["\"error\"", "\"warning\""] {
        assert!(s.contains(level), "catalog must export both error and advisory levels");
    }
}

/// The R11 explanation cross-references its dynamic complement, the
/// lsm-check model checker — the failure message a contributor gets from
/// a lock-order finding points at how to *prove* the fix.
#[test]
fn r11_explain_cross_references_the_model_checker() {
    let text = explain::explain("R11").expect("R11 explanation");
    assert!(text.contains("lsm-check"), "R11 --explain must point at the model checker");
    assert!(text.contains("LSM_CHECK_REPLAY"), "R11 --explain must mention trace replay");
}
