//! Shared fixture builder for the lint integration tests.
//!
//! The clean/trigger/suppressed corpora used to live as three checked-in
//! directory trees that drifted apart; they are now generated into a temp
//! directory from the snippet constants below, so every test sees the same
//! base workspace and a trigger fixture is "clean plus the one bad file".
//! The call-graph fixture stays on disk under `tests/fixtures/callgraph/`
//! (its multi-file module structure is the thing under test).

#![allow(dead_code)] // each integration test binary uses a subset

use std::path::{Path, PathBuf};

/// A generated fixture workspace, removed on drop.
pub struct Fixture {
    root: PathBuf,
}

impl Fixture {
    pub fn root(&self) -> &Path {
        &self.root
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Builds fixture workspaces from `(root-relative path, contents)` pairs.
pub struct FixtureBuilder {
    root: PathBuf,
    files: Vec<(String, String)>,
}

impl FixtureBuilder {
    /// A fresh builder rooted in a unique temp directory.
    ///
    /// The root embeds a process-wide counter on top of the pid: two tests
    /// in one binary can build same-named fixtures concurrently, and a
    /// shared path would let one fixture's `Drop` delete the directory out
    /// from under the other mid-build.
    pub fn new(name: &str) -> FixtureBuilder {
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let root = std::env::temp_dir()
            .join(format!("lsm-lint-fixture-{name}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        FixtureBuilder { root, files: Vec::new() }
    }

    /// Adds (or overrides) one file.
    pub fn file(mut self, rel: &str, contents: &str) -> FixtureBuilder {
        self.files.retain(|(r, _)| r != rel);
        self.files.push((rel.to_string(), contents.to_string()));
        self
    }

    /// Writes everything to disk.
    pub fn build(self) -> Fixture {
        for (rel, contents) in &self.files {
            let path = self.root.join(rel);
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).expect("fixture dir");
            }
            std::fs::write(&path, contents).expect("fixture file");
        }
        Fixture { root: self.root }
    }
}

// ------------------------------------------------------------- snippets

pub const CLEAN_CORE: &str = "\
//! R1 clean: lookups on a `HashMap` are fine; iteration goes through a
//! `BTreeMap`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

/// A point lookup never observes bucket order.
pub fn lookup(scores: &HashMap<String, f64>, key: &str) -> Option<f64> {
    scores.get(key).copied()
}

/// Iteration is fine because the map is ordered.
pub fn total(ordered: &BTreeMap<String, f64>) -> f64 {
    ordered.values().sum()
}
";

pub const CLEAN_MATCHERS: &str = "\
//! R5/R8 clean: io errors are propagated, and `unwrap` away from io/serde
//! is out of scope.

#![forbid(unsafe_code)]

use std::io;

/// The read error reaches the caller.
pub fn slurp(path: &str) -> Result<String, io::Error> {
    std::fs::read_to_string(path)
}

/// `unwrap` with no io/serde in the statement is not R5's business.
pub fn answer() -> u32 {
    \"42\".parse().unwrap()
}
";

pub const CLEAN_NN: &str = "\
//! R4 clean: the `unsafe` block documents its invariant.

/// First byte of a slice the caller has already length-checked.
pub fn first(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}
";

pub const CLEAN_OBS: &str = "\
//! R2 clean: the observability crate owns the wall clock.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Timing belongs here; every other crate goes through `lsm_obs::span`.
pub fn stamp() -> Instant {
    Instant::now()
}
";

pub const CLEAN_TEXT: &str = "\
//! R3 clean: the RNG takes an explicit seed.

#![forbid(unsafe_code)]

/// Replayable: the caller decides the seed.
pub fn roll(seed: u64) -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.next_u64()
}
";

pub const TRIGGER_CORE: &str = "\
//! R1 trigger: iterating a `HashMap` in a deterministic crate.

#![forbid(unsafe_code)]

use std::collections::HashMap;

/// Summing over `.values()` observes bucket order: the result is an
/// f64 fold whose rounding depends on visit order.
pub fn sum_scores(scores: &HashMap<String, f64>) -> f64 {
    scores.values().sum()
}

/// A `for` loop over the map observes the same bucket order.
pub fn count_pairs(scores: &HashMap<String, f64>) -> usize {
    let mut n = 0;
    for _pair in scores {
        n += 1;
    }
    n
}
";

pub const TRIGGER_MATCHERS: &str = "\
//! R5/R8 trigger: a `pub` fn that panics on an io error.

#![forbid(unsafe_code)]

/// Panics on any read error instead of propagating it.
pub fn slurp(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}
";

pub const TRIGGER_NN: &str = "\
//! R4 trigger: an `unsafe` block whose soundness argument is missing.

/// First byte without a bounds check and without a safety argument.
pub fn first(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
";

pub const TRIGGER_NOFORBID: &str = "\
//! R4 trigger (crate level): zero unsafe code but no `#![forbid(unsafe_code)]`.

/// Nothing unsafe anywhere in this crate — the compiler should be told
/// to keep it that way.
pub fn double(x: u32) -> u32 {
    x * 2
}
";

pub const TRIGGER_SCHEMA: &str = "\
//! R2 trigger: a wall-clock read outside the observability layer.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Matching latency measured ad hoc instead of through `lsm_obs::span`.
pub fn stamp() -> Instant {
    Instant::now()
}
";

pub const TRIGGER_TEXT: &str = "\
//! R3 trigger: an entropy-seeded RNG.

#![forbid(unsafe_code)]

/// A run seeded from process entropy can never be replayed.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
";

pub const TRIGGER_EMBEDDING: &str = "\
//! R6 trigger: order-sensitive float operations on a score path.

#![forbid(unsafe_code)]

/// NaN hits the fallback arm, so the ranking depends on data order.
pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
}

/// Scheduling decides the fold order of this parallel float sum.
pub fn energy(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * x).sum()
}
";

pub const TRIGGER_STORE: &str = "\
//! R7 trigger: concurrency-discipline hazards.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);
static mut LAST: u64 = 0;

/// A relaxed snapshot compared against a cap can run stale.
pub fn over_cap(cap: u64) -> bool {
    HITS.load(Ordering::Relaxed) >= cap
}

/// A lock inside an `#[inline]` fn serializes every caller.
#[inline]
pub fn hot(m: &std::sync::Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}
";

pub const SUPPRESSED_CORE: &str = "\
//! Suppression fixtures: one justified allow, one missing its reason.

#![forbid(unsafe_code)]

use std::collections::HashMap;

/// Iteration feeding an order-insensitive count — a justified allow.
pub fn count(scores: &HashMap<String, f64>) -> usize {
    // lsm-lint: allow(R1-hash-iter, count is order-insensitive)
    scores.values().count()
}

/// An allow() without a reason does not silence anything.
pub fn sum(scores: &HashMap<String, f64>) -> f64 {
    // lsm-lint: allow(R1-hash-iter)
    scores.values().sum()
}
";

// ------------------------------------------------------------- workspaces

/// The rule-abiding base workspace every corpus starts from.
pub fn clean_builder(name: &str) -> FixtureBuilder {
    FixtureBuilder::new(name)
        .file("crates/core/src/lib.rs", CLEAN_CORE)
        .file("crates/matchers/src/lib.rs", CLEAN_MATCHERS)
        .file("crates/nn/src/lib.rs", CLEAN_NN)
        .file("crates/obs/src/lib.rs", CLEAN_OBS)
        .file("crates/text/src/lib.rs", CLEAN_TEXT)
}

/// Clean base workspace.
pub fn clean_fixture() -> Fixture {
    clean_builder("clean").build()
}

/// The clean base with every rule's trigger layered on top.
pub fn trigger_fixture() -> Fixture {
    clean_builder("trigger")
        .file("crates/core/src/lib.rs", TRIGGER_CORE)
        .file("crates/matchers/src/lib.rs", TRIGGER_MATCHERS)
        .file("crates/nn/src/lib.rs", TRIGGER_NN)
        .file("crates/noforbid/src/lib.rs", TRIGGER_NOFORBID)
        .file("crates/schema/src/lib.rs", TRIGGER_SCHEMA)
        .file("crates/text/src/lib.rs", TRIGGER_TEXT)
        .file("crates/embedding/src/lib.rs", TRIGGER_EMBEDDING)
        .file("crates/store/src/lib.rs", TRIGGER_STORE)
        .build()
}

/// The clean base with the suppression corpus in `core`.
pub fn suppressed_fixture() -> Fixture {
    clean_builder("suppressed").file("crates/core/src/lib.rs", SUPPRESSED_CORE).build()
}
