//! End-to-end tests of the lint over generated fixture workspaces (see
//! `common.rs` for the shared builder and snippets), plus the guarantee
//! that the repository itself is lint-clean modulo the checked-in baseline.

mod common;

use lsm_lint::baseline;
use lsm_lint::{lint_root, Violation};
use std::path::PathBuf;

/// `CARGO_MANIFEST_DIR` under cargo; the in-repo path when the test binary
/// is built with bare rustc and run from the workspace root.
fn manifest_dir() -> PathBuf {
    PathBuf::from(option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/lint"))
}

fn lint_fixture(fixture: &common::Fixture) -> Vec<Violation> {
    lint_root(fixture.root()).expect("fixture root lints")
}

fn active(violations: &[Violation]) -> Vec<(&str, &str, usize)> {
    violations
        .iter()
        .filter(|v| v.suppressed.is_none())
        .map(|v| (v.rule, v.file.as_str(), v.line))
        .collect()
}

#[test]
fn trigger_root_flags_every_rule_with_location() {
    let fixture = common::trigger_fixture();
    let violations = lint_fixture(&fixture);
    assert_eq!(
        active(&violations),
        vec![
            ("R1-hash-iter", "crates/core/src/lib.rs", 10),
            ("R1-hash-iter", "crates/core/src/lib.rs", 16),
            ("R6-float-determinism", "crates/embedding/src/lib.rs", 7),
            ("R6-float-determinism", "crates/embedding/src/lib.rs", 12),
            ("R5-panic-policy", "crates/matchers/src/lib.rs", 7),
            ("R8-panic-reachability", "crates/matchers/src/lib.rs", 7),
            ("R4-unsafe-safety", "crates/nn/src/lib.rs", 5),
            ("R4-unsafe-safety", "crates/noforbid/src/lib.rs", 1),
            ("R2-wall-clock", "crates/schema/src/lib.rs", 9),
            ("R7-concurrency", "crates/store/src/lib.rs", 8),
            ("R7-concurrency", "crates/store/src/lib.rs", 12),
            ("R7-concurrency", "crates/store/src/lib.rs", 18),
            ("R3-entropy", "crates/text/src/lib.rs", 7),
        ],
    );
}

#[test]
fn trigger_messages_name_the_problem() {
    let fixture = common::trigger_fixture();
    let violations = lint_fixture(&fixture);
    let by_rule = |rule: &str| {
        violations.iter().find(|v| v.rule == rule).map(|v| v.message.as_str()).unwrap_or("")
    };
    assert!(by_rule("R1-hash-iter").contains("bucket order"));
    assert!(by_rule("R2-wall-clock").contains("Instant::now()"));
    assert!(by_rule("R3-entropy").contains("thread_rng"));
    assert!(by_rule("R4-unsafe-safety").contains("SAFETY"));
    assert!(by_rule("R5-panic-policy").contains("fs::"));
    assert!(by_rule("R6-float-determinism").contains("total_cmp"));
    assert!(by_rule("R7-concurrency").contains("static mut"));
    assert!(by_rule("R8-panic-reachability").contains("public API: matchers::slurp"));
}

#[test]
fn violations_are_attributed_to_their_enclosing_item() {
    let fixture = common::trigger_fixture();
    let violations = lint_fixture(&fixture);
    let item_of = |rule: &str, line: usize| {
        violations.iter().find(|v| v.rule == rule && v.line == line).and_then(|v| v.item.as_deref())
    };
    assert_eq!(item_of("R1-hash-iter", 10), Some("core::sum_scores"));
    assert_eq!(item_of("R6-float-determinism", 7), Some("embedding::rank"));
    assert_eq!(item_of("R7-concurrency", 18), Some("store::hot"));
    assert_eq!(item_of("R8-panic-reachability", 7), Some("matchers::slurp"));
    // A crate-level finding has no enclosing fn; the baseline keys it by file.
    assert_eq!(item_of("R4-unsafe-safety", 1), None);
}

#[test]
fn clean_root_is_clean() {
    let fixture = common::clean_fixture();
    let violations = lint_fixture(&fixture);
    assert!(violations.is_empty(), "unexpected violations: {violations:?}");
}

#[test]
fn suppression_with_reason_silences_and_records_the_reason() {
    let fixture = common::suppressed_fixture();
    let violations = lint_fixture(&fixture);
    let suppressed: Vec<_> = violations.iter().filter(|v| v.suppressed.is_some()).collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].line, 10);
    assert_eq!(suppressed[0].suppressed.as_deref(), Some("count is order-insensitive"));
}

#[test]
fn suppression_without_reason_stays_active() {
    let fixture = common::suppressed_fixture();
    let violations = lint_fixture(&fixture);
    let still_active = active(&violations);
    assert_eq!(still_active, vec![("R1-hash-iter", "crates/core/src/lib.rs", 16)]);
    let v = violations.iter().find(|v| v.line == 16).unwrap();
    assert!(v.message.contains("lacks a reason"), "no missing-reason note in {:?}", v.message);
}

#[test]
fn baseline_freeze_round_trips_and_silences_frozen_debt() {
    let fixture = common::trigger_fixture();
    let violations = lint_fixture(&fixture);
    let counts = baseline::count(&violations);
    assert!(!counts.is_empty());
    // The baseline keys on items where the resolver attributed one.
    assert!(counts.contains_key(&("R1-hash-iter".into(), "core::sum_scores".into())), "{counts:?}");

    // Freeze to disk the way --fix-baseline does, then load it back.
    let json = baseline::to_json(&counts);
    let path = std::env::temp_dir().join(format!("lsm-lint-baseline-{}.json", std::process::id()));
    std::fs::write(&path, &json).expect("write temp baseline");
    let loaded = baseline::load(&path).expect("load temp baseline");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, counts);

    // With the debt frozen, a re-run of the same tree reports nothing new.
    assert!(baseline::over_baseline(&counts, &loaded).is_empty());

    // One *new* violation beyond the frozen count does fail.
    let mut more = counts.clone();
    if let Some(v) = more.values_mut().next() {
        *v += 1;
    }
    let over = baseline::over_baseline(&more, &loaded);
    assert_eq!(over.len(), 1);
}

#[test]
fn repository_tree_is_lint_clean() {
    let repo = manifest_dir().join("../..");
    let violations = lint_root(&repo).expect("repo lints");
    let counts = baseline::count(&violations);
    let frozen = baseline::load(&repo.join("lint-baseline.json")).expect("baseline loads");
    let over = baseline::over_baseline(&counts, &frozen);
    assert!(
        over.is_empty(),
        "new violations not in lint-baseline.json: {over:?}\n{:#?}",
        violations.iter().filter(|v| v.suppressed.is_none()).collect::<Vec<_>>()
    );
}
