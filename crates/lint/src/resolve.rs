//! Module resolution: file → module path, fully-qualified item names, and
//! external visibility (including `pub use` re-exports).
//!
//! Paths are resolved structurally from the file layout (`src/lib.rs` is the
//! crate root, `src/a/b.rs` is module `a::b`) and `mod` declarations parsed
//! by [`crate::items`]. Where the tree cannot be resolved (an undeclared
//! module, a `#[path]` attribute, a glob re-export) the resolver
//! over-approximates toward *visible*, so reachability rules see more
//! roots, never fewer.

use std::collections::{BTreeMap, BTreeSet};

use crate::config;
use crate::items::{FileItems, FnItem};

/// One resolved function with its workspace-unique name.
#[derive(Debug, Clone)]
pub struct ResolvedFn {
    /// The parsed item.
    pub item: FnItem,
    /// Fully-qualified name, e.g. `core::matcher::LsmMatcher::retrain`.
    pub fq: String,
    /// Crate directory under `crates/` (`core`, `matchers`, ...), if any.
    pub crate_dir: Option<String>,
    /// Is this fn part of *library* code (`src/`, not a bin target)?
    pub library: bool,
    /// Reachable from outside its crate: bare `pub` through a `pub` module
    /// chain, or re-exported via `pub use`.
    pub external: bool,
}

/// The resolved workspace: every fn with a stable fully-qualified name.
#[derive(Debug, Default)]
pub struct Workspace {
    pub fns: Vec<ResolvedFn>,
}

impl Workspace {
    /// Resolves all parsed files. `files` maps root-relative path → items.
    pub fn resolve(files: &BTreeMap<String, FileItems>) -> Workspace {
        // (file, mod name) -> declared pub? Used for the file-module chain.
        let mut mod_vis: BTreeMap<(String, String), bool> = BTreeMap::new();
        for (file, items) in files {
            for m in &items.mods {
                let e = mod_vis.entry((file.clone(), m.name.clone())).or_insert(false);
                *e = *e || m.is_pub;
            }
        }
        // Per crate: names mentioned by a `pub use`, and whether any glob
        // re-export exists (globs over-approximate to "everything pub").
        let mut reexported: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut glob_reexport: BTreeSet<String> = BTreeSet::new();
        for (file, items) in files {
            let Some(dir) = config::crate_dir(file) else { continue };
            for re in &items.reexports {
                let set = reexported.entry(dir.to_string()).or_default();
                for n in &re.names {
                    set.insert(n.clone());
                }
                if re.glob {
                    glob_reexport.insert(dir.to_string());
                }
            }
        }

        let mut out = Workspace::default();
        for (file, items) in files {
            let crate_dir = config::crate_dir(file).map(|d| d.to_string());
            let library = config::is_library_code(file);
            let file_mods = file_module_path(file);
            let file_mods_pub =
                file_mods.iter().enumerate().all(|(k, name)| match parent_file_of(file, k) {
                    Some(parent) => mod_vis.get(&(parent, name.clone())).copied().unwrap_or(true),
                    None => true,
                });
            for f in &items.fns {
                let mut segs: Vec<&str> = Vec::new();
                if let Some(d) = crate_dir.as_deref() {
                    segs.push(d);
                }
                for m in &file_mods {
                    segs.push(m);
                }
                for m in &f.inline_mods {
                    segs.push(m);
                }
                if let Some(ty) = f.self_ty.as_deref() {
                    segs.push(ty);
                }
                segs.push(&f.name);
                let fq = if crate_dir.is_some() {
                    segs.join("::")
                } else {
                    // Non-crate files (top-level tests/, examples/) keep the
                    // path as a disambiguating prefix.
                    format!("{}::{}", file, f.name)
                };
                let re = crate_dir
                    .as_deref()
                    .and_then(|d| reexported.get(d))
                    .is_some_and(|set| set.contains(&f.name));
                let glob = crate_dir.as_deref().is_some_and(|d| glob_reexport.contains(d));
                let external = library
                    && f.is_pub
                    && !f.in_test
                    && (f.inline_mods_pub && file_mods_pub || re || glob);
                out.fns.push(ResolvedFn {
                    item: f.clone(),
                    fq,
                    crate_dir: crate_dir.clone(),
                    library,
                    external,
                });
            }
        }
        out
    }
}

/// The file-level module path of a root-relative source file:
/// `crates/x/src/lib.rs` → `[]`, `crates/x/src/a/b.rs` → `["a", "b"]`,
/// `crates/x/src/a/mod.rs` → `["a"]`. Bin targets resolve to `[]`.
pub fn file_module_path(rel_path: &str) -> Vec<String> {
    let Some(dir) = config::crate_dir(rel_path) else { return Vec::new() };
    let Some(in_src) = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.strip_prefix(dir))
        .and_then(|r| r.strip_prefix("/src/"))
    else {
        return Vec::new();
    };
    if in_src == "lib.rs" || in_src == "main.rs" || in_src.starts_with("bin/") {
        return Vec::new();
    }
    let mut segs: Vec<String> =
        in_src.trim_end_matches(".rs").split('/').map(|s| s.to_string()).collect();
    if segs.last().is_some_and(|s| s == "mod") {
        segs.pop();
    }
    segs
}

/// The file in which module segment `k` of `rel_path`'s module chain is
/// declared: segment 0 lives in the crate root, segment k>0 in the file of
/// the enclosing module (`a.rs` or `a/mod.rs` — whichever exists is the
/// caller's concern; we return the `a.rs` spelling and the `mod.rs`
/// spelling is tried by the lookup's default-pub fallback).
fn parent_file_of(rel_path: &str, k: usize) -> Option<String> {
    let dir = config::crate_dir(rel_path)?;
    let mods = file_module_path(rel_path);
    if k == 0 {
        return Some(format!("crates/{dir}/src/lib.rs"));
    }
    let prefix = mods.get(..k)?.join("/");
    Some(format!("crates/{dir}/src/{prefix}.rs"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{tokenize, FileView};

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let mut map = BTreeMap::new();
        for (path, src) in files {
            let view = FileView::new(src.to_string());
            let toks = tokenize(&view.code);
            map.insert(path.to_string(), crate::items::parse_file(path, &view, &toks, &[]));
        }
        Workspace::resolve(&map)
    }

    fn find<'a>(w: &'a Workspace, fq: &str) -> &'a ResolvedFn {
        w.fns.iter().find(|f| f.fq == fq).unwrap_or_else(|| {
            panic!("no fn {fq}; have {:?}", w.fns.iter().map(|f| &f.fq).collect::<Vec<_>>())
        })
    }

    #[test]
    fn fq_names_follow_file_layout() {
        let w = ws(&[
            ("crates/core/src/lib.rs", "pub mod a; pub fn root() {}"),
            ("crates/core/src/a.rs", "pub fn leaf() {}"),
        ]);
        assert_eq!(find(&w, "core::root").item.name, "root");
        assert!(find(&w, "core::a::leaf").external);
    }

    #[test]
    fn private_module_blocks_visibility_unless_reexported() {
        let w = ws(&[
            ("crates/core/src/lib.rs", "mod detail;"),
            ("crates/core/src/detail.rs", "pub fn hidden() {}"),
        ]);
        assert!(!find(&w, "core::detail::hidden").external);

        let w = ws(&[
            ("crates/core/src/lib.rs", "mod detail; pub use detail::hidden;"),
            ("crates/core/src/detail.rs", "pub fn hidden() {}"),
        ]);
        assert!(find(&w, "core::detail::hidden").external);
    }

    #[test]
    fn bin_targets_are_not_external() {
        let w = ws(&[("crates/cli/src/main.rs", "pub fn run() {}")]);
        assert!(!find(&w, "cli::run").external, "bin code has no library API");
    }

    #[test]
    fn methods_join_their_self_type() {
        let w = ws(&[("crates/core/src/m.rs", "pub struct S; impl S { pub fn go(&self) {} }")]);
        // `mod m;` is undeclared → resolver defaults the chain to pub.
        assert!(find(&w, "core::m::S::go").external);
    }
}
