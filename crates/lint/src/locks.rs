//! R11 — lock and atomics discipline for the lock-free layer.
//!
//! Three checks, all over the resolved workspace:
//!
//! 1. **Lock-acquisition order.** Every `.lock()` in a function body is an
//!    acquisition of the lock named by its receiver (`registry().lock()`
//!    acquires `registry`, `self.inner.lock()` acquires `inner`). While a
//!    guard is live (its `let` binding until `drop(guard)` or end of
//!    body), any further acquisition — directly, or transitively through
//!    a call-graph edge — adds an order edge. A cycle in that graph is a
//!    potential deadlock: two threads taking the same locks in opposite
//!    orders. Each cycle is reported once, with every acquisition site as
//!    a related location. Call-graph edges that point *against* the
//!    workspace dependency DAG (derived from the sources: crate `a`
//!    depends on `b` iff some file in `a` names `b`'s extern crate) are
//!    ignored — the name-keyed graph fuses identically-named methods
//!    across unrelated crates, and an upstream crate cannot call into a
//!    crate that depends on it.
//! 2. **Acquire/Release pairing.** An `Ordering::Acquire` load of an
//!    atomic cell whose writes are all `Relaxed` has nothing to pair
//!    with: the load's ordering is a lie, and readers can see torn
//!    multi-cell snapshots (count updated, bucket not). Flagged at the
//!    load, with the unpaired writes as related locations. Loop/binding
//!    aliases (`for b in &self.buckets`) are resolved through the
//!    dataflow def-use pass.
//! 3. **Relaxed spin-waits.** `while X.load(Relaxed)`-style conditions
//!    may never observe the store they wait for in bounded time and order
//!    nothing afterward; spin conditions must use `Acquire`.
//!
//! The sanctioned `ENABLED` gate (SeqCst store, Relaxed load, documented
//! zero-overhead-when-off) passes all three by construction: its loads
//! are Relaxed (not one-sided Acquire) and never spin.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::config;
use crate::dataflow::{body_token_range, fn_flow, matching_back};
use crate::items::matching;
use crate::resolve::Workspace;
use crate::rules::{Related, Violation};
use crate::scan::Tok;
use crate::semrules::FileCtx;

/// Runs R11 over the resolved workspace.
pub fn check_workspace(
    ws: &Workspace,
    cg: &CallGraph,
    files: &BTreeMap<String, FileCtx>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    check_lock_order(ws, cg, files, &mut out);
    for (rel, ctx) in files {
        if !config::is_library_code(rel) || config::is_sync_impl(rel) {
            continue;
        }
        check_atomics(rel, ctx, &mut out);
        check_spin(rel, ctx, &mut out);
    }
    out
}

// ------------------------------------------------------------ lock order

/// One `.lock()` call: the lock's name, the byte position of the call, and
/// the byte range over which its guard is held.
struct Acquisition {
    lock: String,
    pos: usize,
    held: (usize, usize),
}

fn check_lock_order(
    ws: &Workspace,
    cg: &CallGraph,
    files: &BTreeMap<String, FileCtx>,
    out: &mut Vec<Violation>,
) {
    let n = ws.fns.len();
    let mut acqs: Vec<Vec<Acquisition>> = Vec::with_capacity(n);
    for f in &ws.fns {
        let ctx = files.get(&f.item.file);
        let (lo, hi) = f.item.body;
        acqs.push(match ctx {
            Some(ctx) if lo < hi && !f.item.in_test && !config::is_sync_impl(&f.item.file) => {
                acquisitions(&ctx.toks, (lo, hi))
            }
            _ => Vec::new(),
        });
    }

    // Locks each function acquires transitively (itself or any callee).
    let mut trans: Vec<BTreeSet<String>> =
        acqs.iter().map(|a| a.iter().map(|x| x.lock.clone()).collect::<BTreeSet<_>>()).collect();
    // Propagate to a fixpoint: callers inherit callee lock sets, but only
    // along edges a real call could take. Two classes of fabricated edge
    // are excluded: (1) functions in sync-implementation crates — the
    // name-keyed call graph resolves every application `.lock()`/`.len()`/
    // `.get()` against the shim's identically-named methods, so letting
    // lock sets flow through them splices unrelated crates' acquisitions
    // into one fabricated cycle; (2) edges that contradict the crate
    // dependency DAG — `reg.events.len()` in lsm-obs cannot reach
    // `SessionRegistry::len` in lsm-serve, because serve depends on obs
    // and not the other way around.
    let sync_impl: Vec<bool> = ws.fns.iter().map(|f| config::is_sync_impl(&f.item.file)).collect();
    let deps = crate_dep_closure(files);
    let may_call = |i: usize, j: usize| -> bool {
        match (ws.fns[i].crate_dir.as_deref(), ws.fns[j].crate_dir.as_deref()) {
            (Some(a), Some(b)) if a != b => deps.get(a).is_some_and(|d| d.contains(b)),
            _ => true,
        }
    };
    loop {
        let mut changed = false;
        for i in 0..n {
            if sync_impl[i] {
                continue;
            }
            for &j in &cg.edges[i] {
                if sync_impl[j] || !may_call(i, j) {
                    continue;
                }
                if !trans[j].is_empty() && !trans[j].is_subset(&trans[i]) {
                    let add: Vec<String> = trans[j].difference(&trans[i]).cloned().collect();
                    trans[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: lock A held while lock B is acquired (directly or via a
    // call). Edge metadata keeps one witness site per edge.
    struct Edge {
        file: String,
        line: usize,
        note: String,
    }
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        let Some(ctx) = files.get(&f.item.file) else { continue };
        for a in &acqs[i] {
            // Direct nesting within this body.
            for b in &acqs[i] {
                if b.lock != a.lock && b.pos > a.held.0 && b.pos < a.held.1 {
                    edges.entry((a.lock.clone(), b.lock.clone())).or_insert_with(|| Edge {
                        file: f.item.file.clone(),
                        line: ctx.view.line_of(b.pos),
                        note: format!(
                            "`{}` acquired in `{}` while holding `{}`",
                            b.lock, f.fq, a.lock
                        ),
                    });
                }
            }
            // Calls made while the guard is held acquire the callee's
            // transitive lock set.
            let (start, end) = body_token_range(&ctx.toks, a.held);
            for k in start..end {
                let Some(name) = ctx.toks[k].ident() else { continue };
                if !ctx.toks.get(k + 1).is_some_and(|t| t.is_punct("(")) {
                    continue;
                }
                for &callee in &cg.edges[i] {
                    if ws.fns[callee].item.name != name || !may_call(i, callee) {
                        continue;
                    }
                    for lock in trans[callee].iter() {
                        if *lock == a.lock {
                            continue;
                        }
                        edges.entry((a.lock.clone(), lock.clone())).or_insert_with(|| Edge {
                            file: f.item.file.clone(),
                            line: ctx.view.line_of(ctx.toks[k].pos()),
                            note: format!(
                                "`{}` reaches `.lock()` on `{}` via `{}` while `{}` holds `{}`",
                                name, lock, ws.fns[callee].fq, f.fq, a.lock
                            ),
                        });
                    }
                }
            }
        }
    }

    // Cycle detection over the order graph, one report per cycle.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut path = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        dfs_cycles(start, &adj, &mut path, &mut on_path, &mut |cycle| {
            let mut key: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
            key.sort();
            if !reported.insert(key) {
                return;
            }
            let pairs: Vec<(&str, &str)> =
                cycle.iter().zip(cycle.iter().cycle().skip(1)).map(|(a, b)| (*a, *b)).collect();
            let first = &edges[&(pairs[0].0.to_string(), pairs[0].1.to_string())];
            out.push(Violation {
                rule: "R11-lock-discipline",
                file: first.file.clone(),
                line: first.line,
                message: format!(
                    "lock-order cycle {}: two threads interleaving these acquisitions \
                     deadlock; impose a single global acquisition order",
                    cycle.join(" -> ") + " -> " + cycle[0],
                ),
                suppressed: None,
                item: None,
                related: pairs
                    .iter()
                    .map(|(a, b)| {
                        let e = &edges[&(a.to_string(), b.to_string())];
                        Related { file: e.file.clone(), line: e.line, note: e.note.clone() }
                    })
                    .collect(),
            });
        });
    }
}

/// The transitive closure of the source-derived crate dependency DAG:
/// crate `a` depends on crate `b` iff some file in `a` mentions `b`'s
/// extern name (`use lsm_b::..`, `lsm_b::item`). Any real call from `a`
/// into `b` must name the crate somewhere in `a`'s sources, so a
/// name-keyed call-graph edge from `a` into a crate absent from this
/// closure is a fusion artifact, not a possible call.
fn crate_dep_closure(files: &BTreeMap<String, FileCtx>) -> BTreeMap<String, BTreeSet<String>> {
    let dirs: BTreeSet<&str> = files.keys().filter_map(|rel| config::crate_dir(rel)).collect();
    let extern_of: BTreeMap<String, &str> =
        dirs.iter().map(|d| (config::crate_extern_name(d), *d)).collect();
    let mut deps: BTreeMap<String, BTreeSet<String>> =
        dirs.iter().map(|d| ((*d).to_string(), BTreeSet::new())).collect();
    for (rel, ctx) in files {
        let Some(dir) = config::crate_dir(rel) else { continue };
        for t in &ctx.toks {
            let Some(name) = t.ident() else { continue };
            if let Some(dep) = extern_of.get(name).filter(|dep| **dep != dir) {
                if let Some(set) = deps.get_mut(dir) {
                    set.insert((*dep).to_string());
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for dir in &dirs {
            let direct: Vec<String> = deps[*dir].iter().cloned().collect();
            let mut add: Vec<String> = Vec::new();
            for dep in &direct {
                if let Some(next) = deps.get(dep.as_str()) {
                    add.extend(next.difference(&deps[*dir]).cloned());
                }
            }
            if !add.is_empty() {
                if let Some(set) = deps.get_mut(*dir) {
                    set.extend(add);
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    deps
}

/// DFS enumerating elementary cycles through `node` (bounded by graph size;
/// lock graphs here are tiny).
fn dfs_cycles<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    report: &mut impl FnMut(&[&str]),
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if next == path[0] {
            report(path);
        } else if !on_path.contains(next) {
            path.push(next);
            on_path.insert(next);
            dfs_cycles(next, adj, path, on_path, report);
            path.pop();
            on_path.remove(next);
        }
    }
}

/// `.lock()` calls in a body with receiver names and guard-held ranges.
fn acquisitions(toks: &[Tok], body: (usize, usize)) -> Vec<Acquisition> {
    let (start, end) = body_token_range(toks, body);
    let mut out = Vec::new();
    for k in start..end {
        if !(toks[k].is_punct(".")
            && toks.get(k + 1).is_some_and(|t| t.is_ident("lock"))
            && toks.get(k + 2).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        let Some(lock) = receiver_name(toks, k) else { continue };
        // Guard range: if the statement binds a guard, the guard lives to
        // `drop(guard)` or end of body; otherwise the temporary dies at
        // the statement's `;`.
        // The statement starts after the previous `;`/`{`/`}` — or at the
        // body's first token when the acquisition is the first statement
        // (the body range excludes the fn's opening brace).
        let stmt_start = (start..k)
            .rev()
            .find(|&j| toks[j].is_punct(";") || toks[j].is_punct("{") || toks[j].is_punct("}"))
            .map(|j| j + 1)
            .unwrap_or(start);
        let guard = {
            let mut j = stmt_start;
            if toks.get(j).is_some_and(|t| t.is_ident("let")) {
                j += 1;
                while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                toks.get(j).and_then(|t| t.ident()).map(|n| n.to_string())
            } else {
                None
            }
        };
        let held_from = toks[k].pos();
        let held_to = match &guard {
            Some(g) if g != "_" => (k..end)
                .find(|&j| {
                    toks[j].is_ident("drop")
                        && toks.get(j + 1).is_some_and(|t| t.is_punct("("))
                        && toks.get(j + 2).is_some_and(|t| t.is_ident(g))
                })
                .map(|j| toks[j].pos())
                .unwrap_or(body.1),
            _ => (k..end).find(|&j| toks[j].is_punct(";")).map(|j| toks[j].pos()).unwrap_or(body.1),
        };
        out.push(Acquisition { lock, pos: toks[k].pos(), held: (held_from, held_to) });
    }
    out
}

/// The lock name for the receiver of the `.lock()` whose dot is at `dot`:
/// the identifier before the dot, unwrapping one trailing call or index
/// group (`registry().lock()` → `registry`).
fn receiver_name(toks: &[Tok], dot: usize) -> Option<String> {
    let mut i = dot.checked_sub(1)?;
    loop {
        let t = &toks[i];
        if t.is_punct(")") || t.is_punct("]") {
            let (l, r) = if t.is_punct(")") { ("(", ")") } else { ("[", "]") };
            i = matching_back(toks, i, l, r)?.checked_sub(1)?;
        } else if let Some(n) = t.ident() {
            return Some(n.to_string());
        } else {
            return None;
        }
    }
}

// ------------------------------------------------------------- atomics

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const RELEASE_CLASS: &[&str] = &["Release", "AcqRel", "SeqCst"];
const WRITE_METHODS: &[&str] = &[
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One atomic operation on a named cell.
struct AtomicOp {
    cell: String,
    is_write: bool,
    orderings: Vec<String>,
    pos: usize,
}

/// Missing Acquire/Release pairing: an Acquire load of a cell whose writes
/// never release.
fn check_atomics(rel: &str, ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.toks;
    let cells = atomic_cells(toks);
    if cells.is_empty() {
        return;
    }
    let aliases = cell_aliases(ctx, &cells);
    let mut ops: Vec<AtomicOp> = Vec::new();
    for k in 0..toks.len() {
        if in_test(ctx, toks[k].pos()) {
            continue;
        }
        if !toks[k].is_punct(".") || !toks.get(k + 2).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let Some(method) = toks.get(k + 1).and_then(|t| t.ident()) else { continue };
        let is_write = WRITE_METHODS.contains(&method);
        if !is_write && method != "load" {
            continue;
        }
        let Some(recv) = receiver_name(toks, k) else { continue };
        let cell = if cells.contains(recv.as_str()) {
            recv
        } else if let Some(c) = aliases.get(recv.as_str()) {
            c.clone()
        } else {
            continue;
        };
        let Some(close) = matching(toks, k + 2, "(", ")") else { continue };
        let orderings: Vec<String> = toks[k + 2..close]
            .iter()
            .filter_map(|t| t.ident())
            .filter(|n| ORDERINGS.contains(n))
            .map(|n| n.to_string())
            .collect();
        ops.push(AtomicOp { cell, is_write, orderings, pos: toks[k].pos() });
    }

    let mut by_cell: BTreeMap<&str, Vec<&AtomicOp>> = BTreeMap::new();
    for op in &ops {
        by_cell.entry(op.cell.as_str()).or_default().push(op);
    }
    for (cell, ops) in by_cell {
        let writes: Vec<&&AtomicOp> = ops.iter().filter(|o| o.is_write).collect();
        if writes.is_empty() {
            continue;
        }
        let releases = writes
            .iter()
            .any(|o| o.orderings.iter().any(|ord| RELEASE_CLASS.contains(&ord.as_str())));
        if releases {
            continue;
        }
        let Some(acq_load) =
            ops.iter().find(|o| !o.is_write && o.orderings.iter().any(|ord| ord == "Acquire"))
        else {
            continue;
        };
        out.push(Violation {
            rule: "R11-lock-discipline",
            file: rel.to_string(),
            line: ctx.view.line_of(acq_load.pos),
            message: format!(
                "`{cell}` is loaded with `Ordering::Acquire` but every write to it is \
                 `Relaxed` — there is no release-class write to pair with, so the load \
                 orders nothing; upgrade the writes (strengthening an RMW costs nothing \
                 on x86) or relax the load and document the external synchronization"
            ),
            suppressed: None,
            item: None,
            related: writes
                .iter()
                .map(|o| Related {
                    file: rel.to_string(),
                    line: ctx.view.line_of(o.pos),
                    note: format!(
                        "unpaired write ({})",
                        o.orderings.first().map(String::as_str).unwrap_or("?")
                    ),
                })
                .collect(),
        });
    }
}

/// Names declared as atomic cells: `NAME: AtomicU64`, `name: [AtomicU64; N]`.
fn atomic_cells(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for k in 0..toks.len() {
        let Some(name) = toks[k].ident() else { continue };
        if !toks.get(k + 1).is_some_and(|t| t.is_punct(":")) {
            continue;
        }
        let mut j = k + 2;
        while toks.get(j).is_some_and(|t| t.is_punct("[") || t.is_punct("&") || t.is_punct("'")) {
            j += 1;
        }
        // skip a lifetime name after `'`
        if toks.get(j.wrapping_sub(1)).is_some_and(|t| t.is_punct("'")) {
            j += 1;
        }
        if toks.get(j).and_then(|t| t.ident()).is_some_and(|n| n.starts_with("Atomic")) {
            out.insert(name.to_string());
        }
    }
    out
}

/// Bindings that alias a cell: `for b in &self.buckets`, `let c = &COUNTERS[i]`.
fn cell_aliases(ctx: &FileCtx, cells: &BTreeSet<String>) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let toks = &ctx.toks;
    let flow = fn_flow(toks, (0, usize::MAX));
    for def in &flow.defs {
        if !def.has_init() {
            continue;
        }
        for t in &toks[def.init.0..def.init.1] {
            if let Some(n) = t.ident() {
                if cells.contains(n) {
                    out.insert(def.name.clone(), n.to_string());
                    break;
                }
            }
        }
    }
    out
}

// ----------------------------------------------------------- spin waits

/// `while <cond>` conditions doing a Relaxed atomic load: the spin may
/// never observe the store it waits for and orders nothing after exit.
fn check_spin(rel: &str, ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.toks;
    for k in 0..toks.len() {
        if !toks[k].is_ident("while") || in_test(ctx, toks[k].pos()) {
            continue;
        }
        // Condition: tokens to the `{` at depth zero.
        let (mut paren, mut bracket) = (0i32, 0i32);
        let mut j = k + 1;
        let mut relaxed_load = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            } else if t.is_punct("[") {
                bracket += 1;
            } else if t.is_punct("]") {
                bracket -= 1;
            } else if t.is_punct("{") && paren == 0 && bracket == 0 {
                break;
            } else if t.is_punct(";") {
                break;
            }
            if t.is_punct(".")
                && toks.get(j + 1).is_some_and(|x| x.is_ident("load"))
                && toks.get(j + 2).is_some_and(|x| x.is_punct("("))
            {
                if let Some(close) = matching(toks, j + 2, "(", ")") {
                    if toks[j + 2..close].iter().any(|x| x.is_ident("Relaxed")) {
                        relaxed_load = Some(toks[j].pos());
                    }
                }
            }
            j += 1;
        }
        if let Some(pos) = relaxed_load {
            out.push(Violation {
                rule: "R11-lock-discipline",
                file: rel.to_string(),
                line: ctx.view.line_of(pos),
                message: "Relaxed atomic load in a `while` spin condition: the loop may \
                          never observe the store it waits for in bounded time, and exit \
                          orders nothing that follows; load with `Ordering::Acquire`"
                    .to_string(),
                suppressed: None,
                item: None,
                related: Vec::new(),
            });
        }
    }
}

fn in_test(ctx: &FileCtx, pos: usize) -> bool {
    ctx.test_spans.iter().any(|&(a, b)| pos >= a && pos <= b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use crate::scan::{tokenize, FileView};

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let mut ctxs = BTreeMap::new();
        let mut items = BTreeMap::new();
        let mut toks_map = BTreeMap::new();
        for (path, src) in files {
            let view = FileView::new(src.to_string());
            let toks = tokenize(&view.code);
            let test_spans = crate::rules::cfg_test_spans(&toks);
            items.insert(path.to_string(), parse_file(path, &view, &toks, &test_spans));
            toks_map.insert(path.to_string(), toks.clone());
            ctxs.insert(path.to_string(), FileCtx { view, toks, test_spans });
        }
        let ws = Workspace::resolve(&items);
        let cg = CallGraph::build(&ws, &toks_map);
        check_workspace(&ws, &cg, &ctxs)
    }

    /// The upstream crate (obs) holds `registry` and calls `.len()` on a
    /// plain Vec; the downstream crate (serve) has a `len` method that
    /// locks `slots` and an `open` that holds `slots` while calling into
    /// obs. The name-keyed graph fuses obs's `.len()` with serve's — but
    /// obs does not depend on serve, so the fabricated `registry -> slots`
    /// edge must be pruned and no cycle reported.
    #[test]
    fn dependency_direction_prunes_fused_cross_crate_cycles() {
        let v = run(&[
            (
                "crates/obs/src/lib.rs",
                "pub fn record_span() {\n\
                 \u{20}   let mut reg = registry().lock();\n\
                 \u{20}   if reg.events.len() < 4 { reg.events.push(1); }\n\
                 }\n",
            ),
            (
                "crates/serve/src/registry.rs",
                "use lsm_obs::record_span;\n\
                 pub struct SessionRegistry;\n\
                 impl SessionRegistry {\n\
                 \u{20}   pub fn len(&self) -> usize {\n\
                 \u{20}       let g = self.slots.lock();\n\
                 \u{20}       g.len()\n\
                 \u{20}   }\n\
                 \u{20}   pub fn open(&self) {\n\
                 \u{20}       let g = self.slots.lock();\n\
                 \u{20}       record_span();\n\
                 \u{20}   }\n\
                 }\n",
            ),
        ]);
        let cycles: Vec<&Violation> =
            v.iter().filter(|x| x.message.contains("lock-order cycle")).collect();
        assert!(cycles.is_empty(), "fused cross-crate cycle not pruned: {cycles:?}");
    }

    /// Same shape, but the crates genuinely depend on each other — the
    /// dependency filter must not hide a cycle both directions can take.
    #[test]
    fn mutually_dependent_crates_still_form_cycles() {
        let v = run(&[
            (
                "crates/obs/src/lib.rs",
                "use lsm_serve::SessionRegistry;\n\
                 pub fn record_span(r: &SessionRegistry) {\n\
                 \u{20}   let mut reg = registry().lock();\n\
                 \u{20}   if r.len() < 4 { reg.events.push(1); }\n\
                 }\n",
            ),
            (
                "crates/serve/src/registry.rs",
                "use lsm_obs::record_span;\n\
                 pub struct SessionRegistry;\n\
                 impl SessionRegistry {\n\
                 \u{20}   pub fn len(&self) -> usize {\n\
                 \u{20}       let g = self.slots.lock();\n\
                 \u{20}       g.len()\n\
                 \u{20}   }\n\
                 \u{20}   pub fn open(&self) {\n\
                 \u{20}       let g = self.slots.lock();\n\
                 \u{20}       record_span(self);\n\
                 \u{20}   }\n\
                 }\n",
            ),
        ]);
        assert!(
            v.iter().any(|x| x.message.contains("lock-order cycle")),
            "genuine cross-crate cycle must survive the dependency filter: {v:?}"
        );
    }

    /// The closure is transitive: a -> b -> c puts c in a's reach.
    #[test]
    fn dep_closure_is_transitive() {
        let mut ctxs = BTreeMap::new();
        for (path, src) in [
            ("crates/serve/src/lib.rs", "use lsm_core::x;"),
            ("crates/core/src/lib.rs", "use lsm_obs::span;"),
            ("crates/obs/src/lib.rs", "pub fn span() {}"),
        ] {
            let view = FileView::new(src.to_string());
            let toks = tokenize(&view.code);
            ctxs.insert(path.to_string(), FileCtx { view, toks, test_spans: Vec::new() });
        }
        let deps = crate_dep_closure(&ctxs);
        assert!(deps["serve"].contains("core"));
        assert!(deps["serve"].contains("obs"), "transitive dep missing: {deps:?}");
        assert!(deps["obs"].is_empty());
    }
}
