//! R10 — cast discipline on kernel paths: unchecked `as` narrowing of
//! index/length/accumulator values, and wrapping arithmetic.
//!
//! Scope is [`crate::config::KERNEL_PATH_FILES`] — the SIMD microkernels,
//! the int8/f16 quantization layer, and the fast encoder. There, a value
//! that silently truncates is not a style problem: a `usize` length pushed
//! through `as u16`, or an i32 accumulator through `as i16`, corrupts the
//! score matrix without a panic, and only on inputs big enough that no
//! unit test sees them.
//!
//! The rule uses the [`crate::dataflow`] def-use pass to decide which
//! values are *risky*:
//!
//! * loop counters (`for i in 0..n`),
//! * bindings initialized from `.len()`,
//! * compound-assignment accumulators (`acc += ..`),
//!
//! and which are *checked* — defined through `clamp`/`min`/`max`/`%`/bit
//! masks, or mentioned in an `assert!`/`debug_assert!`. A narrowing `as`
//! whose operand references a risky, unchecked value is flagged. Widening
//! loads (`wt[idx] as i16` where only the *index* is risky) are fine: the
//! operand walk skips `[..]` index expressions.
//!
//! Independently, every `.wrapping_*` call outside tests is flagged:
//! intentional bit-twiddling wraps (the `to_bits` magic-rounding trick)
//! must state their invariant in a scoped allow; everything else should
//! widen or use checked arithmetic.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::config;
use crate::dataflow::{fn_flow, matching_back};
use crate::items::matching;
use crate::resolve::Workspace;
use crate::rules::Violation;
use crate::scan::Tok;
use crate::semrules::FileCtx;

/// Target widths an `as` cast can narrow into.
const NARROW_TYPES: &[&str] = &["i8", "u8", "i16", "u16", "i32", "u32"];

/// Wrapping-arithmetic methods R10 refuses without a stated invariant.
const WRAPPING: &[&str] = &[
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "wrapping_neg",
    "wrapping_shl",
    "wrapping_shr",
];

/// Runs R10 over the kernel-path files of the workspace.
pub fn check_workspace(ws: &Workspace, files: &BTreeMap<String, FileCtx>) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.fns {
        if f.item.in_test || !config::KERNEL_PATH_FILES.contains(&f.item.file.as_str()) {
            continue;
        }
        let Some(ctx) = files.get(&f.item.file) else { continue };
        let (lo, hi) = f.item.body;
        if lo >= hi {
            continue;
        }
        check_fn(&f.item.file, &f.fq, ctx, (lo, hi), &mut out);
    }
    out
}

fn check_fn(file: &str, fq: &str, ctx: &FileCtx, body: (usize, usize), out: &mut Vec<Violation>) {
    let toks = &ctx.toks;
    let flow = fn_flow(toks, body);
    let (start, end) = flow.toks;

    let mut risky: BTreeSet<&str> = BTreeSet::new();
    let mut checked: BTreeSet<&str> = BTreeSet::new();
    for def in &flow.defs {
        if def.is_loop_var || def.is_accum {
            risky.insert(def.name.as_str());
        }
        if def.has_init() {
            if init_has_len(toks, def.init) {
                risky.insert(def.name.as_str());
            }
            if init_is_checked(toks, def.init) {
                checked.insert(def.name.as_str());
            }
        }
    }
    // `assert!(..)` / `debug_assert!(..)` mentioning a name checks it.
    for k in start..end {
        let is_assert =
            toks[k].ident().is_some_and(|n| n == "assert" || n.starts_with("debug_assert"));
        if is_assert && toks.get(k + 1).is_some_and(|t| t.is_punct("!")) {
            if let Some(open) = (k + 2..end.min(k + 4)).find(|&j| toks[j].is_punct("(")) {
                if let Some(close) = matching(toks, open, "(", ")") {
                    for t in &toks[open..close.min(end)] {
                        if let Some(n) = t.ident() {
                            if let Some(name) = risky.get(n) {
                                checked.insert(name);
                            }
                        }
                    }
                }
            }
        }
    }

    for k in start..end {
        if in_test(ctx, toks[k].pos()) {
            continue;
        }
        // `.wrapping_*(` — wraps silently; either a deliberate bit trick
        // (state it in a scoped allow) or a latent overflow bug.
        if toks[k].is_punct(".")
            && toks.get(k + 1).and_then(|t| t.ident()).is_some_and(|n| WRAPPING.contains(&n))
            && toks.get(k + 2).is_some_and(|t| t.is_punct("("))
        {
            let method = toks[k + 1].ident().unwrap_or_default();
            out.push(Violation {
                rule: "R10-cast-discipline",
                file: file.to_string(),
                line: ctx.view.line_of(toks[k].pos()),
                message: format!(
                    "`.{method}(..)` in kernel code (`{fq}`) discards overflow silently; if \
                     the wrap is a deliberate bit manipulation, state the invariant in a \
                     scoped `lsm-lint: allow(R10, ..)`, otherwise widen the type or use \
                     checked arithmetic"
                ),
                suppressed: None,
                item: Some(fq.to_string()),
                related: Vec::new(),
            });
        }
        // `<operand> as <narrow>` with a risky, unchecked operand.
        if !toks[k].is_ident("as") {
            continue;
        }
        let Some(ty) = toks.get(k + 1).and_then(|t| t.ident()) else { continue };
        if !NARROW_TYPES.contains(&ty) {
            continue;
        }
        let op_start = operand_start(toks, k);
        let names = operand_value_idents(toks, op_start, k);
        // A wrapping call in the operand already got its own finding.
        if names.iter().any(|n| WRAPPING.contains(&n.as_str())) {
            continue;
        }
        let has_len = names.iter().any(|n| n == "len");
        let risk = names.iter().find(|n| risky.contains(n.as_str()));
        let (Some(what), false) = (
            risk.cloned().or_else(|| has_len.then(|| "len()".to_string())),
            risk.is_some_and(|n| checked.contains(n.as_str())),
        ) else {
            continue;
        };
        if stmt_is_checked(&ctx.view.code, toks[k].pos()) {
            continue;
        }
        out.push(Violation {
            rule: "R10-cast-discipline",
            file: file.to_string(),
            line: ctx.view.line_of(toks[k].pos()),
            message: format!(
                "narrowing `as {ty}` of index/length/accumulator value `{what}` in `{fq}` \
                 truncates silently on large inputs; clamp or mask first (and \
                 `debug_assert!` the range), or widen the target type"
            ),
            suppressed: None,
            item: Some(fq.to_string()),
            related: Vec::new(),
        });
    }
}

fn in_test(ctx: &FileCtx, pos: usize) -> bool {
    ctx.test_spans.iter().any(|&(a, b)| pos >= a && pos <= b)
}

/// Does the initializer call `.len()`?
fn init_has_len(toks: &[Tok], init: (usize, usize)) -> bool {
    (init.0..init.1)
        .any(|k| toks[k].is_ident("len") && toks.get(k + 1).is_some_and(|t| t.is_punct("(")))
}

/// Does the initializer pass through a range check (`clamp`/`min`/`max`,
/// `%`, or a bit mask)?
fn init_is_checked(toks: &[Tok], init: (usize, usize)) -> bool {
    (init.0..init.1).any(|k| {
        let t = &toks[k];
        if t.is_punct("%") {
            return true;
        }
        if t.is_punct("&") && toks.get(k + 1).and_then(|x| x.ident()).is_some_and(is_number) {
            return true;
        }
        t.ident().is_some_and(|n| n == "clamp" || n == "min" || n == "max")
            && toks.get(k + 1).is_some_and(|x| x.is_punct("("))
    })
}

/// Does the statement around the cast itself apply a check?
fn stmt_is_checked(code: &str, pos: usize) -> bool {
    let start = code[..pos].rfind([';', '{', '}']).map(|p| p + 1).unwrap_or(0);
    let end = code[pos..].find([';', '{', '}']).map(|p| pos + p).unwrap_or(code.len());
    let stmt = &code[start..end];
    ["clamp(", ".min(", ".max(", "debug_assert", "assert!", "% ", "& 0x"]
        .iter()
        .any(|m| stmt.contains(m))
}

/// The tokenizer lumps numeric literals in with identifiers; a "number" is
/// an ident starting with a digit.
fn is_number(n: &str) -> bool {
    n.starts_with(|c: char| c.is_ascii_digit())
}

/// Token index where the operand of the `as` at `as_idx` begins: walks back
/// over one postfix expression — call/index groups, `.`/`::` chains, a
/// parenthesized group.
fn operand_start(toks: &[Tok], as_idx: usize) -> usize {
    let mut k = as_idx;
    let mut i = as_idx as isize - 1;
    while i >= 0 {
        let t = &toks[i as usize];
        if t.is_punct(")") || t.is_punct("]") {
            let (l, r) = if t.is_punct(")") { ("(", ")") } else { ("[", "]") };
            match matching_back(toks, i as usize, l, r) {
                Some(open) => {
                    k = open;
                    i = open as isize - 1;
                }
                None => break,
            }
        } else if t.ident().is_some() {
            k = i as usize;
            if i >= 1
                && (toks[(i - 1) as usize].is_punct(".") || toks[(i - 1) as usize].is_punct("::"))
            {
                i -= 2;
            } else {
                break;
            }
        } else if t.is_punct(".") {
            i -= 1;
        } else {
            break;
        }
    }
    k
}

/// Identifiers in the operand that name values (not field/path segments),
/// skipping everything inside `[..]` index expressions.
fn operand_value_idents(toks: &[Tok], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut bracket = 0i32;
    for k in start..end {
        let t = &toks[k];
        if t.is_punct("[") {
            bracket += 1;
        } else if t.is_punct("]") {
            bracket -= 1;
        } else if bracket == 0 {
            if let Some(n) = t.ident() {
                if k > start && toks[k - 1].is_punct("::") {
                    continue;
                }
                if !is_number(n) {
                    out.push(n.to_string());
                }
            }
        }
    }
    out
}
