//! `lsm-lint` — workspace static analysis for determinism, panic-policy,
//! and unsafe-audit invariants.
//!
//! ```text
//! Usage: lsm-lint [--root DIR] [--baseline FILE] [--fix-baseline]
//!                 [--check-baseline] [--format human|sarif] [--out FILE]
//!                 [--verbose] [--list-rules] [--explain RULE]
//! ```
//!
//! Exits 0 when no violation exceeds the baseline, 1 when new violations
//! are found, 2 on usage or I/O errors. `--fix-baseline` rewrites the
//! baseline to the current tree and exits 0 — use it to freeze pre-existing
//! debt, never to silence a regression. `--check-baseline` fails (exit 1)
//! when the baseline carries stale entries — unknown rules, items that no
//! longer resolve, files that no longer exist — so paid-down debt cannot
//! linger as headroom; `--fix-baseline` prunes them. `--format sarif`
//! writes a SARIF 2.1.0 log (to `--out` or stdout) while keeping the same
//! exit-code gate.

use std::path::PathBuf;
use std::process::ExitCode;

use lsm_lint::{baseline, config, explain, sarif, walk};

enum Format {
    Human,
    Sarif,
}

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    fix_baseline: bool,
    check_baseline: bool,
    format: Format,
    out: Option<PathBuf>,
    verbose: bool,
    list_rules: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        fix_baseline: false,
        check_baseline: false,
        format: Format::Human,
        out: None,
        verbose: false,
        list_rules: false,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = args.next().ok_or("--baseline requires a file argument")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--fix-baseline" => opts.fix_baseline = true,
            "--check-baseline" => opts.check_baseline = true,
            "--format" => {
                let v = args.next().ok_or("--format requires `human` or `sarif`")?;
                opts.format = match v.as_str() {
                    "human" => Format::Human,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}` (human|sarif)")),
                };
            }
            "--out" => {
                let v = args.next().ok_or("--out requires a file argument")?;
                opts.out = Some(PathBuf::from(v));
            }
            "--explain" => {
                let v = args.next().ok_or("--explain requires a rule id (e.g. R6)")?;
                opts.explain = Some(v);
            }
            "--verbose" => opts.verbose = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "lsm-lint: workspace static analysis (determinism / panic policy / unsafe audit)\n\
                     \n\
                     Usage: lsm-lint [--root DIR] [--baseline FILE] [--fix-baseline]\n\
                     \x20                [--check-baseline] [--format human|sarif] [--out FILE]\n\
                     \x20                [--verbose] [--list-rules] [--explain RULE]\n\
                     \n\
                     Suppress a single finding with: // lsm-lint: allow(rule-id, reason)\n\
                     Freeze existing debt with:      lsm-lint --fix-baseline\n\
                     Audit the frozen debt with:     lsm-lint --check-baseline\n\
                     Read a rule's rationale with:   lsm-lint --explain R8"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("lsm-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for (id, summary) in config::RULE_SUMMARIES {
            println!("{id:22} {summary}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = &opts.explain {
        match explain::explain(rule) {
            Some(text) => {
                println!("{text}");
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!(
                    "lsm-lint: unknown rule `{rule}`; known rules: {}",
                    config::RULE_IDS.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }

    let root = match opts
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|d| walk::find_workspace_root(&d)))
    {
        Some(root) => root,
        None => {
            eprintln!("lsm-lint: no workspace root found; pass --root");
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts.baseline.unwrap_or_else(|| root.join("lint-baseline.json"));

    let (violations, known_items) = match lsm_lint::lint_root_with_items(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lsm-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.check_baseline {
        let frozen = match baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lsm-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let stale = baseline::stale_entries(&frozen, &known_items, &root);
        for ((rule, item), reason) in &stale {
            println!(
                "{}: stale baseline entry ({rule}, {item}): {reason}",
                baseline_path.display()
            );
        }
        return if stale.is_empty() {
            println!("lsm-lint: baseline is tight ({} entries, none stale)", frozen.len());
            ExitCode::SUCCESS
        } else {
            println!(
                "lsm-lint: {} stale baseline entr{} — run `lsm-lint --fix-baseline` to prune",
                stale.len(),
                if stale.len() == 1 { "y" } else { "ies" }
            );
            ExitCode::FAILURE
        };
    }
    let suppressed: Vec<_> = violations.iter().filter(|v| v.suppressed.is_some()).collect();
    let active: Vec<_> = violations.iter().filter(|v| v.suppressed.is_none()).cloned().collect();
    let current = baseline::count(&active);

    if opts.fix_baseline {
        let json = baseline::to_json(&current);
        if let Err(e) = std::fs::write(&baseline_path, json) {
            eprintln!("lsm-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "lsm-lint: baseline frozen to {} ({} entries, {} violations)",
            baseline_path.display(),
            current.len(),
            active.len()
        );
        return ExitCode::SUCCESS;
    }

    let frozen = match baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("lsm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let over = baseline::over_baseline(&current, &frozen);

    if let Format::Sarif = opts.format {
        let covered = baseline::covered_flags(&violations, &frozen);
        let log = sarif::to_sarif(&violations, &covered);
        match &opts.out {
            Some(path) => {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(e) = std::fs::write(path, log) {
                    eprintln!("lsm-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!("lsm-lint: SARIF written to {}", path.display());
            }
            None => print!("{log}"),
        }
        return if over.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if opts.verbose {
        for v in &suppressed {
            let reason = v.suppressed.as_deref().unwrap_or("");
            println!("{}:{}: {} suppressed ({reason})", v.file, v.line, v.rule);
        }
    }
    for ((rule, item), cur, allowed) in &over {
        for v in active.iter().filter(|v| v.rule == rule && &baseline::key_of(v).1 == item) {
            println!("{}:{}: {}: {}", v.file, v.line, v.rule, v.message);
        }
        if *allowed > 0 {
            println!(
                "  -> {item}: {cur} {rule} violations exceed the {allowed} frozen in {}",
                baseline_path.display()
            );
        }
    }

    let new_count: usize = over.iter().map(|(_, cur, allowed)| cur - allowed).sum();
    println!(
        "lsm-lint: {} new violation(s), {} baselined, {} suppressed",
        new_count,
        active.len() - new_count.min(active.len()),
        suppressed.len()
    );
    if over.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
