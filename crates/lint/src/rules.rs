//! The five lint rules (R1–R5) over a scanned file.
//!
//! Matching is token-based over the blanked code view from [`crate::scan`],
//! so string literals and comments can never trigger a rule. The engine is
//! heuristic by design — it has no type information — and errs toward the
//! patterns that actually occur in this workspace; anything it cannot prove
//! clean is flagged and can be silenced with an inline
//! `// lsm-lint: allow(rule-id, reason)` once a human has justified it.

use crate::config;
use crate::scan::{FileView, Tok};

/// One diagnostic produced by the lint.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Rule identifier, e.g. `R1-hash-iter`.
    pub rule: &'static str,
    /// Root-relative file path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
    /// `Some(reason)` when an inline suppression comment covers this
    /// violation; suppressed violations never fail the build.
    pub suppressed: Option<String>,
    /// Fully-qualified name of the enclosing function when the workspace
    /// resolver could attribute it (e.g. `core::matcher::LsmMatcher::score`);
    /// the baseline keys on this, falling back to the file.
    pub item: Option<String>,
    /// Secondary code locations that explain the finding — the hops of an
    /// R9 taint chain, the acquisition sites of an R11 lock cycle, the
    /// writes an Acquire load fails to pair with. Exported as SARIF
    /// `relatedLocations`.
    pub related: Vec<Related>,
}

/// A secondary location attached to a [`Violation`].
#[derive(Debug, Clone, PartialEq)]
pub struct Related {
    /// Root-relative file path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What this site contributes (e.g. "`Instant::now()` source").
    pub note: String,
}

/// HashMap/HashSet methods whose call observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Markers that make an `unwrap`/`expect` statement an io/serde fallible
/// operation under R5 (and R8, which shares the site heuristic).
pub(crate) const IO_SERDE_MARKERS: &[&str] = &[
    "serde_json",
    "io::",
    "File::",
    "fs::",
    "read_to_string",
    "write_all",
    "read_exact",
    "to_writer",
    "from_reader",
    "create_dir",
    "read_dir",
    "remove_file",
];

/// Runs every per-file rule on one scanned file. The caller tokenizes once
/// and shares the stream (and `#[cfg(test)]` spans) with the workspace
/// rules.
pub fn check_file(
    rel_path: &str,
    view: &FileView,
    toks: &[Tok],
    test_spans: &[(usize, usize)],
) -> Vec<Violation> {
    let crate_dir = config::crate_dir(rel_path);
    let library = config::is_library_code(rel_path);
    let mut out = Vec::new();

    if library && crate_dir.is_some_and(|d| config::DETERMINISTIC_CRATE_DIRS.contains(&d)) {
        rule_hash_iter(rel_path, view, toks, test_spans, &mut out);
    }
    let clock_ok = crate_dir.is_some_and(|d| config::WALL_CLOCK_CRATE_DIRS.contains(&d))
        || config::WALL_CLOCK_ALLOWED_FILES.contains(&rel_path);
    if !clock_ok {
        rule_wall_clock(rel_path, view, toks, &mut out);
    }
    if !config::ENTROPY_ALLOWED_FILES.contains(&rel_path) {
        rule_entropy(rel_path, view, toks, &mut out);
    }
    rule_unsafe_safety(rel_path, view, toks, &mut out);
    if library {
        rule_panic_policy(rel_path, view, toks, test_spans, &mut out);
    }

    apply_suppressions(view, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Does this file use `unsafe`? Token-level, so mentions in strings or
/// comments do not count.
pub fn file_uses_unsafe(toks: &[Tok]) -> bool {
    toks.iter().any(|t| t.is_ident("unsafe"))
}

/// Does this crate-root file carry `#![forbid(unsafe_code)]`?
pub fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(7).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
    })
}

/// Byte ranges of `#[cfg(test)] mod ... { .. }` bodies.
pub(crate) fn cfg_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 4 < toks.len() {
        // `#[cfg(` with `test` anywhere inside the attribute parens.
        if toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
        {
            let Some(close) = matching(toks, i + 3, "(", ")") else { break };
            let is_test = toks[i + 3..close].iter().any(|t| t.is_ident("test"));
            let mut j = close + 1; // expect `]`, then optional further attrs
            if toks.get(j).map(|t| t.is_punct("]")) != Some(true) {
                i += 1;
                continue;
            }
            j += 1;
            while toks.get(j).map(|t| t.is_punct("#")) == Some(true)
                && toks.get(j + 1).map(|t| t.is_punct("[")) == Some(true)
            {
                match matching(toks, j + 1, "[", "]") {
                    Some(end) => j = end + 1,
                    None => break,
                }
            }
            // Visibility before the module: `pub mod`, `pub(crate) mod`.
            if toks.get(j).is_some_and(|t| t.is_ident("pub")) {
                j += 1;
                if toks.get(j).is_some_and(|t| t.is_punct("(")) {
                    match matching(toks, j, "(", ")") {
                        Some(end) => j = end + 1,
                        None => {}
                    }
                }
            }
            if is_test
                && toks.get(j).is_some_and(|t| t.is_ident("mod"))
                && toks.get(j + 1).and_then(|t| t.ident()).is_some()
            {
                if let Some(open) = (j + 2..toks.len().min(j + 4)).find(|&k| toks[k].is_punct("{"))
                {
                    if let Some(end) = matching(toks, open, "{", "}") {
                        spans.push((toks[open].pos(), toks[end].pos()));
                        i = end;
                        continue;
                    }
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Index of the token closing the bracket opened at `open`.
fn matching(toks: &[Tok], open: usize, lhs: &str, rhs: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(lhs) {
            depth += 1;
        } else if t.is_punct(rhs) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn in_spans(pos: usize, spans: &[(usize, usize)]) -> bool {
    spans.iter().any(|&(a, b)| pos >= a && pos <= b)
}

// ---------------------------------------------------------------- R1

/// R1 — `HashMap`/`HashSet` iteration in a deterministic crate. Lookups are
/// fine; anything that observes bucket order (`iter`, `keys`, `values`,
/// `drain`, `retain`, for-loops, ...) is not.
fn rule_hash_iter(
    rel_path: &str,
    view: &FileView,
    toks: &[Tok],
    test_spans: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let tracked_fns = hash_returning_fns(toks);
    let tracked = hash_bindings(toks, &tracked_fns);

    let mut flag = |pos: usize, name: &str, how: &str| {
        if in_spans(pos, test_spans) {
            return;
        }
        out.push(Violation {
            rule: "R1-hash-iter",
            file: rel_path.to_string(),
            line: view.line_of(pos),
            message: format!(
                "{how} of std Hash{{Map,Set}} `{name}` observes nondeterministic bucket order; \
                 use a BTreeMap/BTreeSet or collect-and-sort before iterating"
            ),
            suppressed: None,
            related: Vec::new(),
            item: None,
        });
    };

    for i in 0..toks.len() {
        // `name.iter()` / `self.name.keys()` / tracked_fn(..).values()
        if let Some(name) = toks[i].ident() {
            if tracked.contains(&name.to_string())
                && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
                && toks.get(i + 2).is_some_and(|t| ITER_METHODS.iter().any(|m| t.is_ident(m)))
                && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
            {
                let method = toks[i + 2].ident().unwrap_or_default().to_string();
                flag(toks[i].pos(), name, &format!("`.{method}()`"));
            }
            if tracked_fns.contains(&name.to_string())
                && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            {
                if let Some(close) = matching(toks, i + 1, "(", ")") {
                    if toks.get(close + 1).is_some_and(|t| t.is_punct("."))
                        && toks
                            .get(close + 2)
                            .is_some_and(|t| ITER_METHODS.iter().any(|m| t.is_ident(m)))
                    {
                        flag(toks[i].pos(), name, "chained iteration on the result");
                    }
                }
            }
        }
        // `for pat in [&][mut] [self.]name {`
        if toks[i].is_ident("for") {
            if let Some(in_idx) = (i + 1..toks.len().min(i + 24)).find(|&k| {
                toks[k].is_ident("in") && !toks.get(k + 1).is_some_and(|t| t.is_punct("="))
                // not `in =`; defensive
            }) {
                let mut k = in_idx + 1;
                while toks.get(k).is_some_and(|t| t.is_punct("&") || t.is_ident("mut")) {
                    k += 1;
                }
                if toks.get(k).is_some_and(|t| t.is_ident("self"))
                    && toks.get(k + 1).is_some_and(|t| t.is_punct("."))
                {
                    k += 2;
                }
                if let Some(name) = toks.get(k).and_then(|t| t.ident()) {
                    if tracked.contains(&name.to_string())
                        && toks.get(k + 1).is_some_and(|t| t.is_punct("{"))
                    {
                        flag(toks[k].pos(), name, "`for` loop");
                    }
                }
            }
        }
    }
}

/// Names of functions in this file whose return type mentions
/// `HashMap`/`HashSet`.
fn hash_returning_fns(toks: &[Tok]) -> Vec<String> {
    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else { continue };
        let Some(open) = (i + 2..toks.len().min(i + 12)).find(|&k| toks[k].is_punct("(")) else {
            continue;
        };
        let Some(close) = matching(toks, open, "(", ")") else { continue };
        if !toks.get(close + 1).is_some_and(|t| t.is_punct("->")) {
            continue;
        }
        let ret_end = (close + 2..toks.len())
            .find(|&k| toks[k].is_punct("{") || toks[k].is_punct(";") || toks[k].is_ident("where"))
            .unwrap_or(toks.len());
        if toks[close + 2..ret_end].iter().any(|t| t.is_ident("HashMap") || t.is_ident("HashSet")) {
            fns.push(name.to_string());
        }
    }
    fns
}

/// Identifiers bound to a `HashMap`/`HashSet`: `let` bindings with an
/// annotated or constructor initializer, struct fields, fn parameters, and
/// struct-literal fields initialized from a hash constructor.
fn hash_bindings(toks: &[Tok], tracked_fns: &[String]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut track = |n: &str| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    for i in 0..toks.len() {
        // `name :` followed by a type-ish region mentioning HashMap/HashSet.
        if let Some(name) = toks[i].ident() {
            if toks.get(i + 1).is_some_and(|t| t.is_punct(":")) {
                let end = toks.len().min(i + 42);
                let mut angle = 0i32;
                let mut paren = 0i32;
                for t in toks.iter().take(end).skip(i + 2) {
                    if t.is_ident("HashMap") || t.is_ident("HashSet") {
                        track(name);
                        break;
                    }
                    if t.is_punct("<") {
                        angle += 1;
                    } else if t.is_punct(">") {
                        angle -= 1;
                        if angle < 0 {
                            break;
                        }
                    } else if t.is_punct("(") {
                        paren += 1;
                    } else if t.is_punct(")") {
                        paren -= 1;
                        if paren < 0 {
                            break;
                        }
                    } else if angle == 0
                        && paren == 0
                        && (t.is_punct(",")
                            || t.is_punct(";")
                            || t.is_punct("}")
                            || t.is_punct("=")
                            || t.is_punct("{"))
                    {
                        break;
                    }
                }
            }
        }
        // `let [mut] name = [std::collections::]Hash{Map,Set}::` ctor, or a
        // call of a function known to return one.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(|t| t.ident()) else { continue };
            if !toks.get(j + 1).is_some_and(|t| t.is_punct("=")) {
                continue; // annotated lets are handled by the `name :` arm
            }
            let mut k = j + 2;
            if toks.get(k).is_some_and(|t| t.is_ident("std"))
                && toks.get(k + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(k + 2).is_some_and(|t| t.is_ident("collections"))
                && toks.get(k + 3).is_some_and(|t| t.is_punct("::"))
            {
                k += 4;
            }
            if let Some(head) = toks.get(k).and_then(|t| t.ident()) {
                let is_ctor = (head == "HashMap" || head == "HashSet")
                    && toks.get(k + 1).is_some_and(|t| t.is_punct("::"));
                let is_tracked_call = tracked_fns.iter().any(|f| f == head)
                    && toks.get(k + 1).is_some_and(|t| t.is_punct("("));
                if is_ctor || is_tracked_call {
                    track(name);
                }
            }
        }
    }
    names
}

// ---------------------------------------------------------------- R2 / R3

/// R2 — wall-clock reads outside the observability/bench layer.
fn rule_wall_clock(rel_path: &str, view: &FileView, toks: &[Tok], out: &mut Vec<Violation>) {
    for w in toks.windows(3) {
        let clock = ["Instant", "SystemTime"].iter().find(|c| w[0].is_ident(c));
        if let Some(clock) = clock {
            if w[1].is_punct("::") && w[2].is_ident("now") {
                out.push(Violation {
                    rule: "R2-wall-clock",
                    file: rel_path.to_string(),
                    line: view.line_of(w[0].pos()),
                    message: format!(
                        "`{clock}::now()` outside lsm-obs/lsm-bench breaks trace/metric \
                         attribution; time through `lsm_obs::span` or move the measurement \
                         into the bench harness"
                    ),
                    suppressed: None,
                    related: Vec::new(),
                    item: None,
                });
            }
        }
    }
}

/// R3 — entropy sources; every RNG in the workspace must take an explicit
/// seed so any run can be replayed.
fn rule_entropy(rel_path: &str, view: &FileView, toks: &[Tok], out: &mut Vec<Violation>) {
    const SOURCES: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];
    for t in toks {
        if let Some(src) = SOURCES.iter().find(|s| t.is_ident(s)) {
            out.push(Violation {
                rule: "R3-entropy",
                file: rel_path.to_string(),
                line: view.line_of(t.pos()),
                message: format!(
                    "entropy source `{src}` makes runs unreproducible; construct the RNG \
                     from an explicit seed (e.g. `ChaCha8Rng::seed_from_u64`)"
                ),
                suppressed: None,
                related: Vec::new(),
                item: None,
            });
        }
    }
}

// ---------------------------------------------------------------- R4

/// R4 (per-file half) — every `unsafe` keyword needs a `SAFETY:` comment on
/// the same line or within the three lines above it.
fn rule_unsafe_safety(rel_path: &str, view: &FileView, toks: &[Tok], out: &mut Vec<Violation>) {
    let raw_lines: Vec<&str> = view.raw.lines().collect();
    for t in toks {
        if !t.is_ident("unsafe") {
            continue;
        }
        let line = view.line_of(t.pos());
        let lo = line.saturating_sub(4);
        let covered = (lo..=line)
            .filter_map(|l| raw_lines.get(l.wrapping_sub(1)))
            .any(|text| text.contains("SAFETY:"));
        if !covered {
            out.push(Violation {
                rule: "R4-unsafe-safety",
                file: rel_path.to_string(),
                line,
                message: "`unsafe` without a `// SAFETY:` comment documenting the invariant \
                          that makes it sound"
                    .to_string(),
                suppressed: None,
                related: Vec::new(),
                item: None,
            });
        }
    }
}

// ---------------------------------------------------------------- R5

/// R5 — `unwrap`/`expect` on io/serde results in library code. The statement
/// text back to the previous `;`/`{`/`}` is searched for io/serde markers;
/// test modules, bin targets, and non-fallible unwraps are exempt.
fn rule_panic_policy(
    rel_path: &str,
    view: &FileView,
    toks: &[Tok],
    test_spans: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    for i in 0..toks.len() {
        if !toks[i].is_punct(".") {
            continue;
        }
        let Some(method) =
            toks.get(i + 1).and_then(|t| t.ident()).filter(|m| *m == "unwrap" || *m == "expect")
        else {
            continue;
        };
        if !toks.get(i + 2).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let pos = toks[i].pos();
        if in_spans(pos, test_spans) {
            continue;
        }
        let start = view.code[..pos].rfind([';', '{', '}']).map(|p| p + 1).unwrap_or(0);
        let stmt = &view.code[start..pos];
        if let Some(marker) = IO_SERDE_MARKERS.iter().find(|m| stmt.contains(*m)) {
            out.push(Violation {
                rule: "R5-panic-policy",
                file: rel_path.to_string(),
                line: view.line_of(pos),
                message: format!(
                    "`.{method}()` on a fallible io/serde operation (`{marker}`) can panic \
                     in library code; propagate the error instead"
                ),
                suppressed: None,
                related: Vec::new(),
                item: None,
            });
        }
    }
}

// ---------------------------------------------------------------- suppressions

/// Does this comma-separated segment look like a rule id (`R6`,
/// `R10-cast-discipline`)? Used to split the leading rule list of an
/// allow comment from its reason.
fn looks_like_rule_id(s: &str) -> bool {
    let s = s.trim();
    let Some(rest) = s.strip_prefix('R') else { return false };
    let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits == 0 {
        return false;
    }
    let tail = &rest[digits..];
    tail.is_empty()
        || (tail.starts_with('-') && tail.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'))
}

/// Applies `// lsm-lint: allow(rule-id, reason)` comments: a matching
/// suppression on the violation's line or the line above marks it
/// suppressed. One comment may cover several rules —
/// `allow(R6, R10, shared reason)` — the leading comma-separated segments
/// that look like rule ids are rules, everything after is the reason. The
/// reason may contain parentheses (the close paren is matched from the
/// right), but must end on the same comment line. A suppression without a
/// reason does not count — the reason is the audit trail.
pub(crate) fn apply_suppressions(view: &FileView, out: &mut [Violation]) {
    let mut allows: Vec<(usize, String, Option<String>)> = Vec::new();
    for (line, text) in view.comments_containing(config::SUPPRESS_MARKER) {
        let Some(at) = text.find(config::SUPPRESS_MARKER) else { continue };
        let body = &text[at + config::SUPPRESS_MARKER.len()..];
        let Some(close) = body.rfind(')') else { continue };
        let body = &body[..close];
        let parts: Vec<&str> = body.split(',').collect();
        let mut rules: Vec<String> = Vec::new();
        let mut i = 0;
        while i < parts.len() && looks_like_rule_id(parts[i]) {
            rules.push(parts[i].trim().to_string());
            i += 1;
        }
        if rules.is_empty() {
            continue;
        }
        let reason = parts[i..].join(",").trim().to_string();
        let reason = (!reason.is_empty()).then_some(reason);
        // The comment may span several lines (block comment); attribute it
        // to every line it covers so "line above" checks stay simple.
        let extent = text.lines().count();
        for l in line..line + extent {
            for rule in &rules {
                allows.push((l, rule.clone(), reason.clone()));
            }
        }
    }
    for v in out.iter_mut() {
        for (line, rule, reason) in &allows {
            let line_match = *line == v.line || *line + 1 == v.line;
            let rule_match = rule == v.rule || v.rule.starts_with(&format!("{rule}-"));
            if line_match && rule_match {
                match reason {
                    Some(r) => v.suppressed = Some(r.clone()),
                    None => {
                        v.message.push_str(
                            " [an lsm-lint allow() comment was found but lacks a reason; \
                             write allow(rule, why-it-is-sound)]",
                        );
                    }
                }
            }
        }
    }
}
