//! R12 — allocation inside an instrumented span scope on alloc-tracked
//! hot paths.
//!
//! The PR 7 alloc-tracker attributes every heap allocation to the
//! innermost open span. On the paths it showed hot
//! ([`crate::config::ALLOC_HOT_FILES`]: the fast-encoder forward loop and
//! the journal append/fsync path), an allocation inside a span scope is
//! charged to *every timed iteration* — it inflates the latency histogram
//! the span exists to measure, and it is usually an accidental `vec!` /
//! `collect()` / `format!` that a hoisted scratch buffer removes.
//!
//! A span scope is either the rest of the enclosing block after a
//! `let _span = lsm_obs::span(..);` binding (RAII guard, dropped at block
//! end), or the closure body of `lsm_obs::timed(.., || { .. })`. Resizes
//! and `reserve` calls on pre-existing buffers are not flagged — amortized
//! reuse is the sanctioned pattern the rule pushes toward.

use std::collections::BTreeMap;

use crate::config;
use crate::items::matching;
use crate::rules::{Related, Violation};
use crate::scan::Tok;
use crate::semrules::FileCtx;

/// Constructor paths (`Type::method`) that allocate.
const ALLOC_PATHS: &[(&str, &[&str])] = &[
    ("Vec", &["new", "with_capacity", "from"]),
    ("String", &["new", "with_capacity", "from"]),
    ("Box", &["new"]),
    ("VecDeque", &["new", "with_capacity"]),
    ("BTreeMap", &["new"]),
    ("BTreeSet", &["new"]),
];

/// Methods that allocate a fresh owned value from a borrowed one.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect"];

/// Runs R12 over the alloc-tracked hot-path files.
pub fn check_files(files: &BTreeMap<String, FileCtx>) -> Vec<Violation> {
    let mut out = Vec::new();
    for (rel, ctx) in files {
        if config::ALLOC_HOT_FILES.contains(&rel.as_str()) && config::is_library_code(rel) {
            check_file(rel, ctx, &mut out);
        }
    }
    out
}

fn check_file(rel: &str, ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.toks;
    for k in 0..toks.len() {
        if in_test(ctx, toks[k].pos()) {
            continue;
        }
        if !(toks[k].is_ident("lsm_obs") && toks.get(k + 1).is_some_and(|t| t.is_punct("::"))) {
            continue;
        }
        let Some(callee) = toks.get(k + 2).and_then(|t| t.ident()) else { continue };
        let Some(open) = (k + 3..toks.len().min(k + 5)).find(|&j| toks[j].is_punct("(")) else {
            continue;
        };
        let scope = match callee {
            // `let _span = lsm_obs::span(..);` — guard lives to block end.
            "span" => {
                let Some(close) = matching(toks, open, "(", ")") else { continue };
                span_guard_scope(toks, k, close)
            }
            // `lsm_obs::timed(.., || { .. })` — the closure body is timed.
            "timed" => matching(toks, open, "(", ")").map(|close| (open + 1, close)),
            _ => continue,
        };
        let Some((lo, hi)) = scope else { continue };
        let span_line = ctx.view.line_of(toks[k].pos());
        let span_name = span_name(ctx, toks[k].pos());
        for j in lo..hi {
            if let Some(what) = alloc_marker(toks, j) {
                out.push(Violation {
                    rule: "R12-alloc-in-span",
                    file: rel.to_string(),
                    line: ctx.view.line_of(toks[j].pos()),
                    message: format!(
                        "`{what}` allocates inside the `{span_name}` span scope (opened at \
                         line {span_line}); the alloc-tracker charges it to every timed \
                         iteration — hoist a scratch buffer outside the span or move the \
                         allocation out of the timed region"
                    ),
                    suppressed: None,
                    item: None,
                    related: vec![Related {
                        file: rel.to_string(),
                        line: span_line,
                        note: format!("`{span_name}` span opened here"),
                    }],
                });
            }
        }
    }
}

/// Token range from the end of the span-binding statement to the end of
/// the enclosing block (where the RAII guard drops).
fn span_guard_scope(toks: &[Tok], span_tok: usize, call_close: usize) -> Option<(usize, usize)> {
    // Only a `let`-bound span guards a scope; a bare `lsm_obs::span(..);`
    // statement drops immediately (R2's concern, not ours).
    let stmt_start = (0..span_tok)
        .rev()
        .find(|&j| toks[j].is_punct(";") || toks[j].is_punct("{") || toks[j].is_punct("}"))
        .map(|j| j + 1)
        .unwrap_or(0);
    if !toks.get(stmt_start).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    // Enclosing block: innermost `{` still open at the span site.
    let mut stack: Vec<usize> = Vec::new();
    for (j, t) in toks.iter().enumerate() {
        if j >= span_tok {
            break;
        }
        if t.is_punct("{") {
            stack.push(j);
        } else if t.is_punct("}") {
            stack.pop();
        }
    }
    let open_block = *stack.last()?;
    let close_block = matching(toks, open_block, "{", "}")?;
    let stmt_end = (call_close..close_block).find(|&j| toks[j].is_punct(";"))?;
    Some((stmt_end + 1, close_block))
}

/// The span's name for the message: the first string literal of the call
/// in the raw source, or `<dynamic>` when the name is computed.
fn span_name(ctx: &FileCtx, pos: usize) -> String {
    let raw = &ctx.view.raw;
    let stmt_end = raw[pos..].find(';').map(|p| pos + p).unwrap_or(raw.len());
    let Some(q1) = raw[pos..stmt_end].find('"').map(|p| pos + p) else {
        return "<dynamic>".to_string();
    };
    match raw[q1 + 1..stmt_end].find('"') {
        Some(q2) => raw[q1 + 1..q1 + 1 + q2].to_string(),
        None => "<dynamic>".to_string(),
    }
}

/// Is the token at `j` the start of an allocating expression? Returns a
/// short description.
fn alloc_marker(toks: &[Tok], j: usize) -> Option<String> {
    let t = &toks[j];
    if (t.is_ident("vec") || t.is_ident("format"))
        && toks.get(j + 1).is_some_and(|x| x.is_punct("!"))
    {
        return Some(format!("{}!", t.ident().unwrap_or_default()));
    }
    if let Some(ty) = t.ident() {
        if let Some((_, methods)) = ALLOC_PATHS.iter().find(|(p, _)| *p == ty) {
            if toks.get(j + 1).is_some_and(|x| x.is_punct("::")) {
                if let Some(m) = toks.get(j + 2).and_then(|x| x.ident()) {
                    if methods.contains(&m) {
                        return Some(format!("{ty}::{m}"));
                    }
                }
            }
        }
    }
    if t.is_punct(".")
        && toks.get(j + 2).is_some_and(|x| x.is_punct("("))
        && toks.get(j + 1).and_then(|x| x.ident()).is_some_and(|m| ALLOC_METHODS.contains(&m))
    {
        return Some(format!(".{}()", toks[j + 1].ident().unwrap_or_default()));
    }
    None
}

fn in_test(ctx: &FileCtx, pos: usize) -> bool {
    ctx.test_spans.iter().any(|&(a, b)| pos >= a && pos <= b)
}
