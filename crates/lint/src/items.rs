//! A lightweight Rust *item* parser over the blanked token stream.
//!
//! This is not a grammar-complete parser: it extracts exactly the shapes the
//! workspace-semantic rules need — `fn` definitions (with visibility,
//! attributes, containing module path, and the `impl`/`trait` self type),
//! `mod` declarations, and `use` re-exports. Everything it cannot parse it
//! skips, erring toward *over*-approximation downstream (an unresolved
//! module counts as public, an unresolved call matches by name), which for
//! reachability-style rules means more findings, never silently fewer.

use crate::scan::{FileView, Tok};

/// One `fn` item (free function, inherent/trait-impl method, or trait
/// default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's bare name.
    pub name: String,
    /// Root-relative path of the defining file.
    pub file: String,
    /// Inline-module path within the file (file-level modules are resolved
    /// separately by [`crate::resolve`]).
    pub inline_mods: Vec<String>,
    /// Were all enclosing *inline* modules declared `pub`?
    pub inline_mods_pub: bool,
    /// The `impl`/`trait` self type this fn is a method of, if any.
    pub self_ty: Option<String>,
    /// Is this a method of a `impl Trait for Type` block? (Such methods are
    /// callable through the trait even without a `pub` keyword.)
    pub in_trait_impl: bool,
    /// Carries a bare `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Carries an `#[inline]`/`#[inline(..)]` attribute.
    pub is_inline: bool,
    /// Lies inside a `#[cfg(test)] mod` body.
    pub in_test: bool,
    /// Byte offset of the `fn` keyword (for diagnostics).
    pub pos: usize,
    /// Byte span of the body braces; empty (`pos..pos`) for a bodyless
    /// trait-method declaration.
    pub body: (usize, usize),
}

/// A `mod name;` / `mod name { .. }` declaration.
#[derive(Debug, Clone)]
pub struct ModDecl {
    /// Root-relative path of the declaring file.
    pub file: String,
    /// The declared module name.
    pub name: String,
    /// Declared with a bare `pub`.
    pub is_pub: bool,
}

/// A `pub use ..;` re-export: the leaf names it makes visible.
#[derive(Debug, Clone)]
pub struct ReExport {
    /// Root-relative path of the re-exporting file.
    pub file: String,
    /// Every identifier mentioned in the use-tree (over-approximate: path
    /// segments are included, so `pub use a::b::c` re-exports along `a`,
    /// `b`, and `c` as far as the visibility check is concerned).
    pub names: Vec<String>,
    /// Whether the tree contains a `*` glob.
    pub glob: bool,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub mods: Vec<ModDecl>,
    pub reexports: Vec<ReExport>,
}

/// Index of the token closing the bracket opened at `open`.
pub(crate) fn matching(toks: &[Tok], open: usize, lhs: &str, rhs: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(lhs) {
            depth += 1;
        } else if t.is_punct(rhs) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// An open scope during the single parsing pass.
enum Scope {
    /// `mod name {` with its visibility.
    Mod { name: String, is_pub: bool },
    /// `impl Type {` / `impl Trait for Type {` / `trait Name {`.
    Ty { name: String, trait_impl: bool },
}

/// Parses one scanned file into items. `test_spans` are the byte ranges of
/// `#[cfg(test)] mod` bodies (see `rules::cfg_test_spans`).
pub fn parse_file(
    rel_path: &str,
    _view: &FileView,
    toks: &[Tok],
    test_spans: &[(usize, usize)],
) -> FileItems {
    let mut out = FileItems::default();
    // (scope, token index of the closing `}`)
    let mut stack: Vec<(Scope, usize)> = Vec::new();
    let in_test = |pos: usize| test_spans.iter().any(|&(a, b)| pos >= a && pos <= b);

    let mut i = 0;
    while i < toks.len() {
        while stack.last().is_some_and(|&(_, close)| close < i) {
            stack.pop();
        }
        let t = &toks[i];

        if t.is_ident("mod") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                let is_pub = bare_pub_before(toks, i);
                match toks.get(i + 2) {
                    Some(t) if t.is_punct(";") => {
                        out.mods.push(ModDecl {
                            file: rel_path.to_string(),
                            name: name.to_string(),
                            is_pub,
                        });
                        i += 3;
                        continue;
                    }
                    Some(t) if t.is_punct("{") => {
                        out.mods.push(ModDecl {
                            file: rel_path.to_string(),
                            name: name.to_string(),
                            is_pub,
                        });
                        if let Some(close) = matching(toks, i + 2, "{", "}") {
                            stack.push((Scope::Mod { name: name.to_string(), is_pub }, close));
                        }
                        i += 3;
                        continue;
                    }
                    _ => {}
                }
            }
        }

        if t.is_ident("impl") || t.is_ident("trait") {
            let is_trait_decl = t.is_ident("trait");
            // Find the opening `{` of the block body (skipping generics,
            // the trait path, `for Type`, and any `where` clause).
            let Some(open) = (i + 1..toks.len()).find(|&k| {
                toks[k].is_punct("{") || toks[k].is_punct(";") // `impl Trait for T;`? be safe
            }) else {
                i += 1;
                continue;
            };
            if toks[open].is_punct("{") {
                let name = if is_trait_decl {
                    toks.get(i + 1).and_then(|t| t.ident()).unwrap_or_default().to_string()
                } else {
                    impl_self_type(&toks[i + 1..open])
                };
                let trait_impl =
                    !is_trait_decl && toks[i + 1..open].iter().any(|t| t.is_ident("for"));
                if let Some(close) = matching(toks, open, "{", "}") {
                    if !name.is_empty() {
                        stack.push((Scope::Ty { name, trait_impl }, close));
                    }
                    i = open + 1;
                    continue;
                }
            }
        }

        if t.is_ident("use") {
            let is_pub = bare_pub_before(toks, i);
            let end = (i + 1..toks.len()).find(|&k| toks[k].is_punct(";")).unwrap_or(toks.len());
            if is_pub {
                let mut names = Vec::new();
                let mut glob = false;
                for t in &toks[i + 1..end] {
                    if t.is_punct("*") {
                        glob = true;
                    }
                    if let Some(id) = t.ident() {
                        if !matches!(id, "crate" | "self" | "super" | "as") {
                            names.push(id.to_string());
                        }
                    }
                }
                out.reexports.push(ReExport { file: rel_path.to_string(), names, glob });
            }
            i = end + 1;
            continue;
        }

        if t.is_ident("fn") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                let (is_pub, is_inline) = fn_qualifiers(toks, i);
                let sig_end = (i + 2..toks.len())
                    .find(|&k| toks[k].is_punct("{") || toks[k].is_punct(";"))
                    .unwrap_or(toks.len());
                let body = if sig_end < toks.len() && toks[sig_end].is_punct("{") {
                    match matching(toks, sig_end, "{", "}") {
                        Some(close) => (toks[sig_end].pos(), toks[close].pos()),
                        None => (t.pos(), t.pos()),
                    }
                } else {
                    (t.pos(), t.pos())
                };
                let inline_mods: Vec<String> = stack
                    .iter()
                    .filter_map(|(s, _)| match s {
                        Scope::Mod { name, .. } => Some(name.clone()),
                        Scope::Ty { .. } => None,
                    })
                    .collect();
                let inline_mods_pub = stack.iter().all(|(s, _)| match s {
                    Scope::Mod { is_pub, .. } => *is_pub,
                    Scope::Ty { .. } => true,
                });
                let (self_ty, in_trait_impl) = stack
                    .iter()
                    .rev()
                    .find_map(|(s, _)| match s {
                        Scope::Ty { name, trait_impl } => Some((name.clone(), *trait_impl)),
                        Scope::Mod { .. } => None,
                    })
                    .map(|(n, ti)| (Some(n), ti))
                    .unwrap_or((None, false));
                out.fns.push(FnItem {
                    name: name.to_string(),
                    file: rel_path.to_string(),
                    inline_mods,
                    inline_mods_pub,
                    self_ty,
                    in_trait_impl,
                    is_pub,
                    is_inline,
                    in_test: in_test(t.pos()),
                    pos: t.pos(),
                    body,
                });
                // Continue scanning *inside* the body too: nested items and
                // call sites are handled by later passes over the same
                // token stream.
                i = sig_end.max(i + 2);
                continue;
            }
        }

        i += 1;
    }
    out
}

/// The self type of an `impl` header given the tokens between `impl` and
/// `{`: for `impl Trait for Type` the segment after `for`; otherwise the
/// first path segment at generic-depth 0 (`impl<T> Foo<T>` → `Foo`).
fn impl_self_type(header: &[Tok]) -> String {
    let mut depth = 0i32;
    let mut after_for = None;
    for (k, t) in header.iter().enumerate() {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if depth == 0 && t.is_ident("for") {
            after_for = Some(k + 1);
            break;
        }
    }
    let slice = match after_for {
        Some(k) => &header[k..],
        None => header,
    };
    // Last ident of the leading path at depth 0 (handles `a::b::Type` and
    // stops before `where`).
    let mut depth = 0i32;
    let mut last = String::new();
    for t in slice {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if depth == 0 {
            if t.is_ident("where") {
                break;
            }
            if let Some(id) = t.ident() {
                last = id.to_string();
            } else if !t.is_punct("::") && !t.is_punct("&") {
                break;
            }
        }
    }
    last
}

/// Does the declaration starting at token `i` carry a *bare* `pub`
/// (skipping `const`/`unsafe`/`async`/`extern "abi"` qualifiers)?
fn bare_pub_before(toks: &[Tok], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.ident().is_some_and(|id| matches!(id, "const" | "unsafe" | "async" | "default")) {
            continue;
        }
        if t.is_ident("extern") {
            continue;
        }
        if t.is_punct(")") {
            // `pub(crate)` / `pub(super)` — restricted, not external.
            return false;
        }
        return t.is_ident("pub");
    }
    false
}

/// `(is_pub, is_inline)` for the `fn` at token index `i`: visibility as in
/// [`bare_pub_before`], plus a scan over the contiguous `#[..]` attribute
/// groups directly above for `inline`.
fn fn_qualifiers(toks: &[Tok], i: usize) -> (bool, bool) {
    let is_pub = bare_pub_before(toks, i);
    // Walk backward over qualifiers and (for restricted pub) the
    // parenthesized scope, to the start of the declaration.
    let mut k = i;
    while k > 0 {
        let t = &toks[k - 1];
        if t.ident().is_some_and(|id| {
            matches!(id, "const" | "unsafe" | "async" | "default" | "extern" | "pub")
        }) {
            k -= 1;
            continue;
        }
        if t.is_punct(")") {
            // Scan back to the matching `(` (pub(crate) scopes are tiny).
            let mut j = k - 1;
            let mut depth = 0i32;
            while j > 0 {
                if toks[j].is_punct(")") {
                    depth += 1;
                } else if toks[j].is_punct("(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            k = j;
            continue;
        }
        break;
    }
    // Now walk attribute groups `# [ .. ]` ending right before `k`.
    let mut is_inline = false;
    let mut end = k; // exclusive
    while end >= 2 && toks[end - 1].is_punct("]") {
        // Find the `[` matching this `]`, then expect `#` before it.
        let mut j = end - 1;
        let mut depth = 0i32;
        while j > 0 {
            if toks[j].is_punct("]") {
                depth += 1;
            } else if toks[j].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j -= 1;
        }
        if j == 0 || !toks[j - 1].is_punct("#") {
            break;
        }
        if toks[j..end].iter().any(|t| t.is_ident("inline")) {
            is_inline = true;
        }
        end = j - 1;
    }
    (is_pub, is_inline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{tokenize, FileView};

    fn parse(src: &str) -> FileItems {
        let view = FileView::new(src.to_string());
        let toks = tokenize(&view.code);
        parse_file("crates/x/src/lib.rs", &view, &toks, &[])
    }

    #[test]
    fn free_fns_with_visibility() {
        let items = parse("pub fn a() {} fn b() {} pub(crate) fn c() {}");
        let names: Vec<(&str, bool)> =
            items.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(names, vec![("a", true), ("b", false), ("c", false)]);
    }

    #[test]
    fn methods_get_self_type_and_trait_impl_flag() {
        let items = parse(
            "struct S; impl S { pub fn m(&self) {} } \
             trait T { fn d(&self) {} } impl T for S { fn d(&self) {} }",
        );
        let m = items.fns.iter().find(|f| f.name == "m").unwrap();
        assert_eq!(m.self_ty.as_deref(), Some("S"));
        assert!(!m.in_trait_impl);
        let impls: Vec<_> = items.fns.iter().filter(|f| f.name == "d").collect();
        assert_eq!(impls.len(), 2);
        assert_eq!(impls[0].self_ty.as_deref(), Some("T")); // trait default
        assert_eq!(impls[1].self_ty.as_deref(), Some("S"));
        assert!(impls[1].in_trait_impl);
    }

    #[test]
    fn inline_modules_nest_and_carry_visibility() {
        let items = parse("pub mod outer { mod inner { pub fn deep() {} } }");
        let f = &items.fns[0];
        assert_eq!(f.inline_mods, vec!["outer", "inner"]);
        assert!(!f.inline_mods_pub, "inner mod is private");
        assert_eq!(items.mods.len(), 2);
    }

    #[test]
    fn mod_decls_and_reexports() {
        let items = parse("pub mod a; mod b; pub use b::{helper, other as alias}; use b::c;");
        assert_eq!(items.mods.len(), 2);
        assert!(items.mods[0].is_pub && !items.mods[1].is_pub);
        assert_eq!(items.reexports.len(), 1, "plain `use` is not a re-export");
        let re = &items.reexports[0];
        assert!(re.names.iter().any(|n| n == "helper"));
        assert!(re.names.iter().any(|n| n == "alias"));
    }

    #[test]
    fn inline_attribute_detected() {
        let items =
            parse("#[inline]\npub fn hot() {} #[inline(always)] fn hotter() {} fn cold() {}");
        let by_name = |n: &str| items.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("hot").is_inline);
        assert!(by_name("hotter").is_inline);
        assert!(!by_name("cold").is_inline);
    }

    #[test]
    fn generic_impl_self_type() {
        let items = parse("impl<T: Clone> Wrapper<T> { fn get(&self) {} }");
        assert_eq!(items.fns[0].self_ty.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn body_spans_cover_the_braces() {
        let src = "pub fn f() { inner(); }";
        let items = parse(src);
        let (a, b) = items.fns[0].body;
        assert_eq!(&src[a..a + 1], "{");
        assert_eq!(&src[b..b + 1], "}");
    }
}
