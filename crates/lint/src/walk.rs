//! Workspace traversal: every `.rs` file the lint should look at.

use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into. `tests/fixtures` holds the lint's own
/// deliberately-violating corpus; it is linted by the integration tests with
/// an explicit root, never as part of the real tree.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];
const SKIP_REL: &[&str] = &["tests/fixtures"];

/// Collects every `.rs` file under `root`, as `(root-relative path with
/// forward slashes, absolute path)`, sorted for deterministic output.
pub fn rust_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir)?;
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = relative(root, &path);
            if entry.file_type()?.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref())
                    || SKIP_REL.iter().any(|s| rel.ends_with(s) || rel.contains(&format!("{s}/")))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The crate directories under `root/crates`, sorted: `(dir name, absolute
/// path)`. Only directories containing `src/` count — that is what Cargo
/// would build.
pub fn crate_dirs(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let crates = root.join("crates");
    let mut out = Vec::new();
    if !crates.is_dir() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(&crates)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() && path.join("src").is_dir() {
            out.push((entry.file_name().to_string_lossy().into_owned(), path));
        }
    }
    out.sort();
    Ok(out)
}

/// Root-relative path with forward slashes (stable across platforms, used
/// in diagnostics and the baseline).
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}

/// Walks up from `start` to the first directory whose `Cargo.toml` declares
/// a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
