//! Intraprocedural dataflow over the token stream: def-use chains for the
//! bindings of one function body, plus workspace-level taint propagation
//! along the call graph.
//!
//! The engine is deliberately shallow — no types, no CFG — but it is
//! enough to answer the two questions the dataflow rules (R9–R12) ask:
//!
//! 1. *Where does this value come from?* Every `let` binding, `for` loop
//!    variable, and reassignment is a [`Def`] whose initializer token
//!    range can be inspected for sources ([`direct_source`]), for uses of
//!    other bindings, and for calls into taint-returning functions.
//! 2. *Does it go anywhere?* [`uses_after`] finds the value-position uses
//!    of a name, so a binding that is never read (the `let _span = ..`
//!    guard idiom) never propagates anything.
//!
//! [`TaintAnalysis`] runs the per-function pass to a workspace fixpoint:
//! a function whose return value is tainted (its tail expression or a
//! `return` mentions a source or a tainted binding) taints the bindings
//! of every caller that consumes its result, with call edges resolved by
//! the same narrowed name matching as [`crate::callgraph`]. Chains are
//! recorded hop by hop so rule R9 can print *how* the value was laundered
//! and SARIF can attach the hops as `relatedLocations`.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::items::matching;
use crate::resolve::Workspace;
use crate::scan::Tok;
use crate::semrules::FileCtx;

/// One definition site in a function body.
#[derive(Debug, Clone)]
pub struct Def {
    /// The bound name.
    pub name: String,
    /// Byte offset of the name token.
    pub pos: usize,
    /// Token-index range `[start, end)` of the initializer expression in
    /// the file stream; empty (`start == end`) for bare declarations.
    pub init: (usize, usize),
    /// `x += ..`-family compound assignment (the def reads the old value).
    pub is_accum: bool,
    /// A `for` loop variable (the init range is the iterated expression).
    pub is_loop_var: bool,
}

impl Def {
    /// Does this def have an initializer?
    pub fn has_init(&self) -> bool {
        self.init.0 < self.init.1
    }
}

/// Def-use view of one function body.
#[derive(Debug, Default)]
pub struct FnFlow {
    /// Definition sites in source order.
    pub defs: Vec<Def>,
    /// Token-index range `[start, end)` of the body in the file stream.
    pub toks: (usize, usize),
}

/// Token indices `[start, end)` of the tokens strictly inside the byte
/// span `body` (the span of a function body including its braces).
pub fn body_token_range(toks: &[Tok], body: (usize, usize)) -> (usize, usize) {
    let (lo, hi) = body;
    let start = toks.partition_point(|t| t.pos() <= lo);
    let end = toks.partition_point(|t| t.pos() < hi);
    (start, end)
}

/// Index of the token opening the bracket closed at `close`, scanning
/// backward.
pub(crate) fn matching_back(toks: &[Tok], close: usize, lhs: &str, rhs: &str) -> Option<usize> {
    let mut depth = 0i32;
    for k in (0..=close).rev() {
        if toks[k].is_punct(rhs) {
            depth += 1;
        } else if toks[k].is_punct(lhs) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Extracts the def sites of one function body from the file token stream.
pub fn fn_flow(toks: &[Tok], body: (usize, usize)) -> FnFlow {
    let (start, end) = body_token_range(toks, body);
    let mut defs = Vec::new();
    let mut i = start;
    while i < end {
        if toks[i].is_ident("let") {
            let (names, after_pat) = let_pattern(toks, i + 1, end);
            if let Some((init, next)) = let_init(toks, after_pat, end) {
                for (name, pos) in names {
                    defs.push(Def { name, pos, init, is_accum: false, is_loop_var: false });
                }
                i = next;
                continue;
            }
            i = after_pat;
            continue;
        }
        if toks[i].is_ident("for") {
            if let Some(def_list) = for_defs(toks, i, end) {
                let next = def_list.last().map(|d: &Def| d.init.1).unwrap_or(i + 1);
                defs.extend(def_list);
                i = next;
                continue;
            }
        }
        // Reassignment at statement start: `x = ..;`, `x += ..;`,
        // `*x += ..;`, `x[i] -= ..;`. Match arms (`pat => ..`) are fenced
        // off by rejecting `=` followed by `>`.
        let at_stmt_start = i == start
            || toks[i - 1].is_punct(";")
            || toks[i - 1].is_punct("{")
            || toks[i - 1].is_punct("}");
        let mut j = i;
        if at_stmt_start && toks[j].is_punct("*") {
            j += 1;
        }
        if at_stmt_start && toks.get(j).and_then(|t| t.ident()).is_some() {
            let name_idx = j;
            let mut k = j + 1;
            while k < end && toks[k].is_punct("[") {
                match matching(toks, k, "[", "]") {
                    Some(close) => k = close + 1,
                    None => break,
                }
            }
            let (is_assign, is_accum, eq_idx) = assign_op(toks, k, end);
            if is_assign {
                if let Some((init, next)) = init_to_semi(toks, eq_idx + 1, end) {
                    defs.push(Def {
                        name: toks[name_idx].ident().unwrap_or_default().to_string(),
                        pos: toks[name_idx].pos(),
                        init,
                        is_accum,
                        is_loop_var: false,
                    });
                    i = next;
                    continue;
                }
            }
        }
        i += 1;
    }
    FnFlow { defs, toks: (start, end) }
}

/// Names bound by the pattern starting at `i` (after `let`), and the token
/// index just past the pattern.
fn let_pattern(toks: &[Tok], mut i: usize, end: usize) -> (Vec<(String, usize)>, usize) {
    let mut names = Vec::new();
    while toks.get(i).is_some_and(|t| t.is_ident("mut") || t.is_ident("ref")) {
        i += 1;
    }
    if i >= end {
        return (names, i);
    }
    if toks[i].is_punct("(") || toks[i].is_punct("[") {
        let (l, r) = if toks[i].is_punct("(") { ("(", ")") } else { ("[", "]") };
        if let Some(close) = matching(toks, i, l, r) {
            for t in &toks[i + 1..close.min(end)] {
                if let Some(n) = t.ident() {
                    if n != "mut" && n != "ref" && n != "_" {
                        names.push((n.to_string(), t.pos()));
                    }
                }
            }
            return (names, close + 1);
        }
    } else if let Some(n) = toks[i].ident() {
        // `let Some(x) = ..` / `let Struct { x } = ..`: skip the path, bind
        // the idents inside the payload.
        let mut j = i + 1;
        while toks.get(j).is_some_and(|t| t.is_punct("::")) {
            j += 2;
        }
        if toks.get(j).is_some_and(|t| t.is_punct("(") || t.is_punct("{")) {
            let (l, r) = if toks[j].is_punct("(") { ("(", ")") } else { ("{", "}") };
            if let Some(close) = matching(toks, j, l, r) {
                for t in &toks[j + 1..close.min(end)] {
                    if let Some(n) = t.ident() {
                        if n != "mut" && n != "ref" && n != "_" {
                            names.push((n.to_string(), t.pos()));
                        }
                    }
                }
                return (names, close + 1);
            }
        }
        names.push((n.to_string(), toks[i].pos()));
        return (names, i + 1);
    }
    (names, i + 1)
}

/// Skips an optional `: Type` annotation after a pattern, then parses the
/// `= init ;` tail. Returns the init token range and the index just past
/// the terminating `;`.
fn let_init(toks: &[Tok], mut i: usize, end: usize) -> Option<((usize, usize), usize)> {
    if toks.get(i).is_some_and(|t| t.is_punct(":")) {
        // Walk the type to the `=` at bracket/angle depth zero.
        let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
        i += 1;
        while i < end {
            let t = &toks[i];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            } else if t.is_punct("[") {
                bracket += 1;
            } else if t.is_punct("]") {
                bracket -= 1;
            } else if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if paren == 0 && bracket == 0 && angle <= 0 {
                if t.is_punct("=") {
                    break;
                }
                if t.is_punct(";") {
                    return None; // `let x: T;` — no initializer
                }
            }
            i += 1;
        }
    }
    if !toks.get(i).is_some_and(|t| t.is_punct("=")) {
        return None;
    }
    if toks.get(i + 1).is_some_and(|t| t.is_punct("=") || t.is_punct(">")) {
        return None; // `==` / `=>` — not an assignment
    }
    init_to_semi(toks, i + 1, end)
}

/// The token range from `i` to the `;` at brace/paren/bracket depth zero,
/// and the index just past that `;`.
fn init_to_semi(toks: &[Tok], i: usize, end: usize) -> Option<((usize, usize), usize)> {
    let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
    let mut k = i;
    while k < end {
        let t = &toks[k];
        if t.is_punct("(") {
            paren += 1;
        } else if t.is_punct(")") {
            paren -= 1;
            if paren < 0 {
                break;
            }
        } else if t.is_punct("[") {
            bracket += 1;
        } else if t.is_punct("]") {
            bracket -= 1;
            if bracket < 0 {
                break;
            }
        } else if t.is_punct("{") {
            brace += 1;
        } else if t.is_punct("}") {
            brace -= 1;
            if brace < 0 {
                break;
            }
        } else if t.is_punct(";") && paren == 0 && bracket == 0 && brace == 0 {
            return Some(((i, k), k + 1));
        }
        k += 1;
    }
    // Unterminated (tail expression of a block) — treat what we saw as the
    // initializer.
    (k > i).then_some(((i, k), k))
}

/// `for pat in expr {` — defs for the loop variables with the iterated
/// expression as init.
fn for_defs(toks: &[Tok], i: usize, end: usize) -> Option<Vec<Def>> {
    let (names, after_pat) = let_pattern(toks, i + 1, end);
    let in_idx = (after_pat..end.min(after_pat + 8)).find(|&k| toks[k].is_ident("in"))?;
    let (mut paren, mut bracket) = (0i32, 0i32);
    let mut k = in_idx + 1;
    while k < end {
        let t = &toks[k];
        if t.is_punct("(") {
            paren += 1;
        } else if t.is_punct(")") {
            paren -= 1;
        } else if t.is_punct("[") {
            bracket += 1;
        } else if t.is_punct("]") {
            bracket -= 1;
        } else if t.is_punct("{") && paren == 0 && bracket == 0 {
            break;
        }
        k += 1;
    }
    if k <= in_idx + 1 || k >= end {
        return None;
    }
    Some(
        names
            .into_iter()
            .map(|(name, pos)| Def {
                name,
                pos,
                init: (in_idx + 1, k),
                is_accum: false,
                is_loop_var: true,
            })
            .collect(),
    )
}

/// Classifies the tokens at `k` as an assignment operator. Returns
/// `(is_assignment, is_compound, index_of_final_'=')`.
fn assign_op(toks: &[Tok], k: usize, end: usize) -> (bool, bool, usize) {
    if k >= end {
        return (false, false, k);
    }
    if toks[k].is_punct("=") {
        let next_breaks = toks.get(k + 1).is_some_and(|t| t.is_punct("=") || t.is_punct(">"));
        return (!next_breaks, false, k);
    }
    const OPS: &[&str] = &["+", "-", "*", "/", "%", "|", "&", "^"];
    if OPS.iter().any(|op| toks[k].is_punct(op))
        && toks.get(k + 1).is_some_and(|t| t.is_punct("="))
        && !toks.get(k + 2).is_some_and(|t| t.is_punct("="))
    {
        return (true, true, k + 1);
    }
    (false, false, k)
}

/// Byte positions where `name` is read as a value inside the token range,
/// strictly after byte offset `after`. Field accesses (`.name`), path
/// segments (`::name`, `name::`), and struct-literal labels (`name:`) do
/// not count.
pub fn uses_after(toks: &[Tok], range: (usize, usize), name: &str, after: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for k in range.0..range.1 {
        if !toks[k].is_ident(name) || toks[k].pos() <= after {
            continue;
        }
        if k > 0 && (toks[k - 1].is_punct(".") || toks[k - 1].is_punct("::")) {
            continue;
        }
        if toks.get(k + 1).is_some_and(|t| t.is_punct("::")) {
            continue;
        }
        if toks.get(k + 1).is_some_and(|t| t.is_punct(":")) {
            continue;
        }
        out.push(toks[k].pos());
    }
    out
}

// ---------------------------------------------------------------- taint

/// What kind of nondeterminism a tainted value carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintClass {
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`).
    Clock,
    /// OS entropy (`thread_rng`, `from_entropy`, `OsRng`, `getrandom`).
    Entropy,
    /// Process environment (`env::var`, `env::args`).
    Env,
}

impl TaintClass {
    /// Human-readable label used in rule messages.
    pub fn label(self) -> &'static str {
        match self {
            TaintClass::Clock => "wall-clock",
            TaintClass::Entropy => "entropy",
            TaintClass::Env => "environment",
        }
    }
}

/// One step of a taint chain, printable and exportable as a SARIF related
/// location.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    pub file: String,
    pub line: usize,
    pub what: String,
}

/// A taint verdict: the class plus the chain of hops from the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Taint {
    pub class: TaintClass,
    pub chain: Vec<Hop>,
}

/// Finds a direct nondeterminism source in a token range: the pattern and
/// the byte position of its first token.
pub fn direct_source(toks: &[Tok], range: (usize, usize)) -> Option<(TaintClass, usize, String)> {
    const ENTROPY: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];
    for k in range.0..range.1 {
        let t = &toks[k];
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(k + 1).is_some_and(|x| x.is_punct("::"))
            && toks.get(k + 2).is_some_and(|x| x.is_ident("now"))
        {
            let name = t.ident().unwrap_or_default();
            return Some((TaintClass::Clock, t.pos(), format!("`{name}::now()`")));
        }
        if let Some(src) = ENTROPY.iter().find(|s| t.is_ident(s)) {
            return Some((TaintClass::Entropy, t.pos(), format!("`{src}`")));
        }
        if t.is_ident("env")
            && toks.get(k + 1).is_some_and(|x| x.is_punct("::"))
            && toks
                .get(k + 2)
                .is_some_and(|x| x.is_ident("var") || x.is_ident("var_os") || x.is_ident("args"))
        {
            let what = toks[k + 2].ident().unwrap_or_default();
            return Some((TaintClass::Env, t.pos(), format!("`env::{what}`")));
        }
    }
    None
}

/// One tainted binding of a function.
#[derive(Debug, Clone)]
pub struct TaintedLocal {
    /// The bound name.
    pub name: String,
    /// Byte position and line of the def.
    pub pos: usize,
    pub line: usize,
    /// The taint and its chain (source first, this def last).
    pub taint: Taint,
    /// `true` when the taint arrived through another binding or a call —
    /// the laundered case R2/R3 cannot see. `false` means the source is
    /// textually in this def's own initializer (R2/R3 territory).
    pub laundered: bool,
    /// Is the binding read anywhere after its defining statement? Unused
    /// guards (`let _span = ..`) never flow.
    pub used: bool,
}

/// Workspace taint: per-function return taint and tainted locals, computed
/// to a fixpoint over the call graph.
pub struct TaintAnalysis {
    /// Indexed like [`Workspace::fns`]: taint of the return value.
    pub returns: Vec<Option<Taint>>,
    /// Indexed like [`Workspace::fns`]: tainted bindings.
    pub locals: Vec<Vec<TaintedLocal>>,
}

impl TaintAnalysis {
    /// Runs the analysis over every resolved function.
    pub fn build(
        ws: &Workspace,
        cg: &CallGraph,
        files: &BTreeMap<String, FileCtx>,
    ) -> TaintAnalysis {
        let n = ws.fns.len();
        let flows: Vec<Option<FnFlow>> = ws
            .fns
            .iter()
            .map(|f| {
                let ctx = files.get(&f.item.file)?;
                let (lo, hi) = f.item.body;
                (lo < hi).then(|| fn_flow(&ctx.toks, (lo, hi)))
            })
            .collect();

        let mut returns: Vec<Option<Taint>> = vec![None; n];
        let mut locals: Vec<Vec<TaintedLocal>> = vec![Vec::new(); n];
        // Chains are short (source -> helper -> binding); 8 passes is far
        // beyond any real call-depth growth per pass.
        for _ in 0..8 {
            let mut changed = false;
            for idx in 0..n {
                let (Some(flow), Some(ctx)) = (&flows[idx], files.get(&ws.fns[idx].item.file))
                else {
                    continue;
                };
                let (new_locals, new_ret) = analyze_fn(ws, cg, idx, flow, ctx, &returns);
                if returns[idx] != new_ret {
                    returns[idx] = new_ret;
                    changed = true;
                }
                locals[idx] = new_locals;
            }
            if !changed {
                break;
            }
        }
        TaintAnalysis { returns, locals }
    }
}

/// The per-function taint pass: seeds from direct sources, propagates
/// through bindings in order, consults `returns` for call edges, and
/// derives the function's own return taint.
fn analyze_fn(
    ws: &Workspace,
    cg: &CallGraph,
    idx: usize,
    flow: &FnFlow,
    ctx: &FileCtx,
    returns: &[Option<Taint>],
) -> (Vec<TaintedLocal>, Option<Taint>) {
    let f = &ws.fns[idx];
    let toks = &ctx.toks;
    let file = &f.item.file;
    let mut map: BTreeMap<String, Taint> = BTreeMap::new();
    let mut out: Vec<TaintedLocal> = Vec::new();

    // Taint of an expression token range, if any, with the hop that
    // explains it.
    let eval = |range: (usize, usize), map: &BTreeMap<String, Taint>| -> Option<(Taint, bool)> {
        if let Some((class, pos, what)) = direct_source(toks, range) {
            let hop = Hop { file: file.clone(), line: ctx.view.line_of(pos), what };
            return Some((Taint { class, chain: vec![hop] }, false));
        }
        for k in range.0..range.1 {
            let Some(name) = toks[k].ident() else { continue };
            if k > 0 && (toks[k - 1].is_punct(".") || toks[k - 1].is_punct("::")) {
                continue;
            }
            if let Some(t) = map.get(name) {
                let hop = Hop {
                    file: file.clone(),
                    line: ctx.view.line_of(toks[k].pos()),
                    what: format!("through `{name}`"),
                };
                let mut chain = t.chain.clone();
                chain.push(hop);
                return Some((Taint { class: t.class, chain }, true));
            }
            // A call whose callee returns taint: `name(..)` or `.name(..)`.
            if toks.get(k + 1).is_some_and(|t| t.is_punct("(")) {
                for &callee in &cg.edges[idx] {
                    if ws.fns[callee].item.name != name {
                        continue;
                    }
                    if let Some(rt) = returns[callee].as_ref() {
                        let hop = Hop {
                            file: file.clone(),
                            line: ctx.view.line_of(toks[k].pos()),
                            what: format!(
                                "call to `{}` (returns a {}-derived value)",
                                ws.fns[callee].fq,
                                rt.class.label()
                            ),
                        };
                        let mut chain = rt.chain.clone();
                        chain.push(hop);
                        return Some((Taint { class: rt.class, chain }, true));
                    }
                }
            }
        }
        None
    };

    for def in &flow.defs {
        if !def.has_init() {
            continue;
        }
        if let Some((taint, laundered)) = eval(def.init, &map) {
            let init_end = toks.get(def.init.1.saturating_sub(1)).map(|t| t.pos()).unwrap_or(0);
            let used = !uses_after(toks, flow.toks, &def.name, init_end).is_empty();
            out.push(TaintedLocal {
                name: def.name.clone(),
                pos: def.pos,
                line: ctx.view.line_of(def.pos),
                taint: taint.clone(),
                laundered,
                used,
            });
            map.insert(def.name.clone(), taint);
        }
    }

    // Return taint: `return <expr>` statements and the tail expression.
    let mut ret = None;
    let (start, end) = flow.toks;
    for k in start..end {
        if toks[k].is_ident("return") {
            if let Some(((lo, hi), _)) = init_to_semi(toks, k + 1, end) {
                if let Some((t, _)) = eval((lo, hi), &map) {
                    ret = Some(t);
                    break;
                }
            }
        }
    }
    if ret.is_none() {
        if let Some(tail) = tail_expr_range(toks, start, end) {
            ret = eval(tail, &map).map(|(t, _)| t);
        }
    }
    (out, ret)
}

/// The tail-expression token range of a body: everything after the last
/// `;` at body depth zero. A body ending in `;` has no tail.
fn tail_expr_range(toks: &[Tok], start: usize, end: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut last_semi = None;
    for k in start..end {
        let t = &toks[k];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct(";") && depth == 0 {
            last_semi = Some(k);
        }
    }
    let tail_start = last_semi.map(|k| k + 1).unwrap_or(start);
    (tail_start < end).then_some((tail_start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{tokenize, FileView};

    fn flow_of(src: &str) -> (FileView, Vec<Tok>, FnFlow) {
        let view = FileView::new(src.to_string());
        let toks = tokenize(&view.code);
        let open = src.find('{').expect("body open");
        let close = src.rfind('}').expect("body close");
        let flow = fn_flow(&toks, (open, close));
        (view, toks, flow)
    }

    #[test]
    fn defs_cover_lets_loops_and_reassignments() {
        let src = "fn f(xs: &[u32]) {\n\
                   \u{20}   let n = xs.len();\n\
                   \u{20}   let (a, b) = (1, 2);\n\
                   \u{20}   let mut acc = 0;\n\
                   \u{20}   for i in 0..n {\n\
                   \u{20}       acc += xs[i] + a + b;\n\
                   \u{20}   }\n\
                   }\n";
        let (_, _, flow) = flow_of(src);
        let names: Vec<(&str, bool, bool)> =
            flow.defs.iter().map(|d| (d.name.as_str(), d.is_accum, d.is_loop_var)).collect();
        assert_eq!(
            names,
            vec![
                ("n", false, false),
                ("a", false, false),
                ("b", false, false),
                ("acc", false, false),
                ("i", false, true),
                ("acc", true, false),
            ],
            "{flow:?}"
        );
    }

    #[test]
    fn match_arms_are_not_defs() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   \u{20}   match x {\n\
                   \u{20}       Some(v) => v,\n\
                   \u{20}       None => 0,\n\
                   \u{20}   }\n\
                   }\n";
        let (_, _, flow) = flow_of(src);
        assert!(flow.defs.is_empty(), "{:?}", flow.defs);
    }

    #[test]
    fn uses_exclude_fields_paths_and_labels() {
        let src = "fn f() {\n\
                   \u{20}   let dt = 1;\n\
                   \u{20}   let s = S { dt: 0 };\n\
                   \u{20}   let x = s.dt + m::dt;\n\
                   \u{20}   sink(dt);\n\
                   }\n";
        let (_, toks, flow) = flow_of(src);
        let def = &flow.defs[0];
        let init_end = toks[def.init.1 - 1].pos();
        let uses = uses_after(&toks, flow.toks, "dt", init_end);
        assert_eq!(uses.len(), 1, "only the sink(dt) use counts: {uses:?}");
    }

    #[test]
    fn direct_sources_classify() {
        let cases = [
            ("let t = Instant::now();", Some(TaintClass::Clock)),
            ("let t = SystemTime::now();", Some(TaintClass::Clock)),
            ("let r = thread_rng();", Some(TaintClass::Entropy)),
            ("let v = std::env::var(\"X\");", Some(TaintClass::Env)),
            ("let x = seed + 1;", None),
        ];
        for (src, expect) in cases {
            let view = FileView::new(src.to_string());
            let toks = tokenize(&view.code);
            let got = direct_source(&toks, (0, toks.len())).map(|(c, _, _)| c);
            assert_eq!(got, expect, "{src}");
        }
    }

    #[test]
    fn unused_guard_bindings_report_used_false() {
        let src = "fn f() {\n\
                   \u{20}   let _span = obs_span();\n\
                   \u{20}   work();\n\
                   }\n";
        let (_, toks, flow) = flow_of(src);
        let def = &flow.defs[0];
        let init_end = toks[def.init.1 - 1].pos();
        assert!(uses_after(&toks, flow.toks, "_span", init_end).is_empty());
    }
}
