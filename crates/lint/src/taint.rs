//! R9 — taint tracking from nondeterminism sources into deterministic
//! score-path values.
//!
//! R2/R3 flag the *textual* site of `Instant::now()` / `thread_rng()` /
//! `env::var`. They cannot see the laundered case:
//!
//! ```text
//! fn jitter() -> f64 { Instant::now().elapsed().as_secs_f64() }  // obs? no: core
//! ...
//! let eps = jitter();          // R2 sees nothing here
//! score += eps;                // nondeterminism is now in the score
//! ```
//!
//! R9 runs the [`crate::dataflow`] taint fixpoint over the workspace and
//! flags any *used* binding in a deterministic crate whose value derives
//! from a clock/entropy/env source through at least one hop (a binding or
//! a call). Direct sources stay R2/R3's findings — one site, one rule.
//! The full chain is reported in the message and attached as related
//! locations for SARIF.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::config;
use crate::dataflow::{TaintAnalysis, TaintClass};
use crate::resolve::Workspace;
use crate::rules::{Related, Violation};
use crate::semrules::FileCtx;

/// Runs R9 over the resolved workspace.
pub fn check_workspace(
    ws: &Workspace,
    cg: &CallGraph,
    files: &BTreeMap<String, FileCtx>,
) -> Vec<Violation> {
    let ta = TaintAnalysis::build(ws, cg, files);
    let mut out = Vec::new();
    for (idx, f) in ws.fns.iter().enumerate() {
        if !f.library || f.item.in_test {
            continue;
        }
        let in_scope =
            f.crate_dir.as_deref().is_some_and(|d| config::DETERMINISTIC_CRATE_DIRS.contains(&d));
        if !in_scope {
            continue;
        }
        for tl in &ta.locals[idx] {
            // Direct sources in the initializer are R2/R3 findings at the
            // same line; R9 only reports what they cannot see.
            if !tl.laundered || !tl.used {
                continue;
            }
            let allowed = match tl.taint.class {
                TaintClass::Clock => {
                    config::WALL_CLOCK_ALLOWED_FILES.contains(&f.item.file.as_str())
                }
                TaintClass::Entropy => {
                    config::ENTROPY_ALLOWED_FILES.contains(&f.item.file.as_str())
                }
                TaintClass::Env => false,
            };
            if allowed {
                continue;
            }
            let chain = tl
                .taint
                .chain
                .iter()
                .map(|h| format!("{} ({}:{})", h.what, h.file, h.line))
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push(Violation {
                rule: "R9-taint",
                file: f.item.file.clone(),
                line: tl.line,
                message: format!(
                    "`{}` in `{}` holds a {}-derived value on a deterministic score path \
                     (taint chain: {chain}); a replayed session cannot reproduce it — take \
                     the value from explicit config/seed or keep it inside lsm-obs",
                    tl.name,
                    f.fq,
                    tl.taint.class.label()
                ),
                suppressed: None,
                item: Some(f.fq.clone()),
                related: tl
                    .taint
                    .chain
                    .iter()
                    .map(|h| Related { file: h.file.clone(), line: h.line, note: h.what.clone() })
                    .collect(),
            });
        }
    }
    out
}
