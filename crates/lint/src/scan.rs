//! Lossless source scanning: comment/literal blanking and tokenization.
//!
//! The rule engine must never match a pattern inside a string literal or a
//! comment (`"HashMap"` in a diagnostic message is not a determinism
//! hazard). Instead of a full parser we build a [`FileView`]: a byte-for-byte
//! copy of the source in which every comment and every string/char literal
//! body is replaced by spaces, so byte offsets and line numbers stay aligned
//! with the original text. Comments are collected separately because two
//! rules read them (`// SAFETY:` audits and `// lsm-lint: allow(..)`
//! suppressions).
//!
//! The scanner understands line comments, nested block comments, string
//! literals with escapes, raw strings (`r#".."#` with any number of hashes),
//! byte strings, char literals, and tells `'a'` (char) apart from `'a`
//! (lifetime).

/// A scanned source file: raw text plus a code-only view.
#[derive(Debug)]
pub struct FileView {
    /// The original source text.
    pub raw: String,
    /// Same length as `raw`, with comments and literal bodies blanked.
    pub code: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
    /// Every comment in the file as `(first line, text)`, delimiters included.
    pub comments: Vec<(usize, String)>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    Block(u32),
    Str,
    RawStr(u32),
    Char,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl FileView {
    /// Scans `raw` into a view. Never fails: unterminated literals simply
    /// blank to end of file, which is what the real lexer would reject
    /// anyway.
    pub fn new(raw: String) -> FileView {
        let bytes = raw.as_bytes();
        let mut code = bytes.to_vec();
        let mut comments: Vec<(usize, String)> = Vec::new();
        let mut line_starts = vec![0usize];
        let mut state = State::Normal;
        let mut comment_start: Option<usize> = None;
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b == b'\n' {
                line_starts.push(i + 1);
            }
            match state {
                State::Normal => {
                    if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                        state = State::LineComment;
                        comment_start = Some(i);
                        code[i] = b' ';
                        code[i + 1] = b' ';
                        i += 2;
                        continue;
                    }
                    if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        state = State::Block(1);
                        comment_start = Some(i);
                        code[i] = b' ';
                        code[i + 1] = b' ';
                        i += 2;
                        continue;
                    }
                    if b == b'"' {
                        state = State::Str;
                        code[i] = b' ';
                        i += 1;
                        continue;
                    }
                    // Raw (and raw byte) strings: r"..", r#".."#, br".."
                    let prev_ident = i > 0 && is_ident_byte(bytes[i - 1]);
                    if !prev_ident && (b == b'r' || b == b'b') {
                        if let Some(hashes) = raw_string_open(bytes, i) {
                            let body = i + open_len(bytes, i, hashes);
                            for c in code.iter_mut().take(body).skip(i) {
                                *c = b' ';
                            }
                            state = State::RawStr(hashes);
                            i = body;
                            continue;
                        }
                        if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                            code[i] = b' ';
                            code[i + 1] = b' ';
                            state = State::Str;
                            i += 2;
                            continue;
                        }
                        if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                            code[i] = b' ';
                            code[i + 1] = b' ';
                            state = State::Char;
                            i += 2;
                            continue;
                        }
                    }
                    if b == b'\'' && !prev_ident {
                        // Char literal or lifetime? `'\..'` and `'x'` are
                        // chars; `'ident` without a closing quote is a
                        // lifetime and is left untouched.
                        if bytes.get(i + 1) == Some(&b'\\') || char_closes(bytes, i + 1) {
                            code[i] = b' ';
                            state = State::Char;
                            i += 1;
                            continue;
                        }
                    }
                    i += 1;
                }
                State::LineComment => {
                    if b == b'\n' {
                        push_comment(&raw, &line_starts, comment_start.take(), i, &mut comments);
                        state = State::Normal;
                    } else {
                        code[i] = b' ';
                    }
                    i += 1;
                }
                State::Block(depth) => {
                    if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        code[i] = b' ';
                        code[i + 1] = b' ';
                        i += 2;
                        if depth == 1 {
                            push_comment(
                                &raw,
                                &line_starts,
                                comment_start.take(),
                                i,
                                &mut comments,
                            );
                            state = State::Normal;
                        } else {
                            state = State::Block(depth - 1);
                        }
                        continue;
                    }
                    if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        code[i] = b' ';
                        code[i + 1] = b' ';
                        state = State::Block(depth + 1);
                        i += 2;
                        continue;
                    }
                    if b != b'\n' {
                        code[i] = b' ';
                    }
                    i += 1;
                }
                State::Str => {
                    if b == b'\\' {
                        code[i] = b' ';
                        if let Some(c) = code.get_mut(i + 1) {
                            if bytes[i + 1] != b'\n' {
                                *c = b' ';
                            }
                        }
                        if bytes.get(i + 1) == Some(&b'\n') {
                            line_starts.push(i + 2);
                        }
                        i += 2;
                        continue;
                    }
                    if b == b'"' {
                        code[i] = b' ';
                        state = State::Normal;
                    } else if b != b'\n' {
                        code[i] = b' ';
                    }
                    i += 1;
                }
                State::RawStr(hashes) => {
                    if b == b'"' && closes_raw(bytes, i, hashes) {
                        for k in 0..=hashes as usize {
                            if let Some(c) = code.get_mut(i + k) {
                                *c = b' ';
                            }
                        }
                        i += 1 + hashes as usize;
                        state = State::Normal;
                        continue;
                    }
                    if b != b'\n' {
                        code[i] = b' ';
                    }
                    i += 1;
                }
                State::Char => {
                    if b == b'\\' {
                        code[i] = b' ';
                        if let Some(c) = code.get_mut(i + 1) {
                            *c = b' ';
                        }
                        i += 2;
                        continue;
                    }
                    if b == b'\'' {
                        code[i] = b' ';
                        state = State::Normal;
                    } else if b != b'\n' {
                        code[i] = b' ';
                    }
                    i += 1;
                }
            }
        }
        if state == State::LineComment {
            push_comment(&raw, &line_starts, comment_start.take(), bytes.len(), &mut comments);
        }
        let code = String::from_utf8(code).unwrap_or_else(|_| " ".repeat(raw.len()));
        FileView { raw, code, line_starts, comments }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, byte: usize) -> usize {
        match self.line_starts.binary_search(&byte) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// The comments whose text mentions `needle`, as `(line, text)` pairs.
    pub fn comments_containing<'a>(
        &'a self,
        needle: &'a str,
    ) -> impl Iterator<Item = (usize, &'a str)> + 'a {
        self.comments
            .iter()
            .filter(move |(_, text)| text.contains(needle))
            .map(|(line, text)| (*line, text.as_str()))
    }
}

fn push_comment(
    raw: &str,
    line_starts: &[usize],
    start: Option<usize>,
    end: usize,
    out: &mut Vec<(usize, String)>,
) {
    if let Some(start) = start {
        let line = match line_starts.binary_search(&start) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        };
        out.push((line, raw[start..end].to_string()));
    }
}

/// If `bytes[i..]` opens a raw string (`r`, `br` + hashes + quote), returns
/// the hash count.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<u32> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Length of the raw-string opener starting at `i` (prefix + hashes + quote).
fn open_len(bytes: &[u8], i: usize, hashes: u32) -> usize {
    let prefix = if bytes[i] == b'b' { 2 } else { 1 };
    prefix + hashes as usize + 1
}

/// Does the quote at `i` close a raw string with `hashes` trailing hashes?
fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// Is the char starting at `i` followed by a closing single quote? Multi-byte
/// chars are stepped over by UTF-8 length.
fn char_closes(bytes: &[u8], i: usize) -> bool {
    let Some(&b) = bytes.get(i) else { return false };
    if b == b'\'' {
        return false; // empty '' is not a char literal
    }
    let len = match b {
        _ if b < 0x80 => 1,
        _ if b >= 0xf0 => 4,
        _ if b >= 0xe0 => 3,
        _ => 2,
    };
    bytes.get(i + len) == Some(&b'\'')
}

/// One lexical token of the code view.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword, with its byte offset.
    Ident(String, usize),
    /// Punctuation (`::`, `->`, or a single char), with its byte offset.
    Punct(String, usize),
}

impl Tok {
    /// The token's byte offset in the file.
    pub fn pos(&self) -> usize {
        match self {
            Tok::Ident(_, p) | Tok::Punct(_, p) => *p,
        }
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s, _) => Some(s),
            Tok::Punct(..) => None,
        }
    }

    /// True when this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(s, _) if s == p)
    }

    /// True when this token is the identifier `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        matches!(self, Tok::Ident(s, _) if s == id)
    }
}

/// Tokenizes the blanked code view into identifiers and punctuation.
/// Numbers are lumped into identifiers (they never matter to the rules);
/// `::` and `->` come out as single tokens.
pub fn tokenize(code: &str) -> Vec<Tok> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() || b >= 0x80 {
            i += 1;
            continue;
        }
        if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            toks.push(Tok::Ident(code[start..i].to_string(), start));
            continue;
        }
        if b == b':' && bytes.get(i + 1) == Some(&b':') {
            toks.push(Tok::Punct("::".to_string(), i));
            i += 2;
            continue;
        }
        if b == b'-' && bytes.get(i + 1) == Some(&b'>') {
            toks.push(Tok::Punct("->".to_string(), i));
            i += 2;
            continue;
        }
        toks.push(Tok::Punct((b as char).to_string(), i));
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let v = FileView::new("let a = 1; // HashMap\n/* Instant::now */ let b = 2;".to_string());
        assert!(!v.code.contains("HashMap"));
        assert!(!v.code.contains("Instant"));
        assert!(v.code.contains("let a = 1;"));
        assert!(v.code.contains("let b = 2;"));
        assert_eq!(v.comments.len(), 2);
        assert_eq!(v.comments[0].0, 1);
        assert_eq!(v.comments[1].0, 2);
    }

    #[test]
    fn blanks_string_and_char_literals() {
        let v = FileView::new(r#"call("HashMap::new", 'x', "esc \" quote");"#.to_string());
        assert!(!v.code.contains("HashMap"));
        assert!(!v.code.contains("quote"));
        assert!(v.code.contains("call("));
        assert_eq!(v.raw.len(), v.code.len());
    }

    #[test]
    fn raw_strings_and_nested_blocks() {
        let src = "let s = r#\"thread_rng \"# ; /* a /* b */ Instant */ done".to_string();
        let v = FileView::new(src);
        assert!(!v.code.contains("thread_rng"));
        assert!(!v.code.contains("Instant"));
        assert!(v.code.contains("done"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let v = FileView::new("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'y';".to_string());
        assert!(v.code.contains("'a str"));
        assert!(!v.code.contains("'y'"));
    }

    #[test]
    fn line_numbers_align_after_blanking() {
        let v = FileView::new("line1\n\"multi\nline\nstring\"\nInstant::now()\n".to_string());
        let pos = v.code.find("Instant").expect("kept");
        assert_eq!(v.line_of(pos), 5);
        assert_eq!(v.line_count(), 6);
    }

    #[test]
    fn tokenizer_emits_paths_and_arrows() {
        let toks = tokenize("fn f() -> HashMap<u32, u32> { Instant::now() }");
        assert!(toks.iter().any(|t| t.is_punct("->")));
        assert!(toks.iter().any(|t| t.is_punct("::")));
        assert!(toks.iter().any(|t| t.is_ident("HashMap")));
        let arrow = toks.iter().position(|t| t.is_punct("->")).unwrap_or(0);
        assert!(toks[arrow + 1].is_ident("HashMap"));
    }

    #[test]
    fn byte_strings_are_blanked() {
        let v = FileView::new("let b = b\"SystemTime\"; let c = b'z'; keep".to_string());
        assert!(!v.code.contains("SystemTime"));
        assert!(v.code.contains("keep"));
    }
}
