//! The workspace-semantic rules R6–R8, layered on the item parser
//! ([`crate::items`]), module resolution ([`crate::resolve`]), and the
//! over-approximate call graph ([`crate::callgraph`]).
//!
//! * **R6-float-determinism** — order-sensitive float operations on score
//!   paths: `.partial_cmp(..)` comparators (NaN turns `unwrap`/`unwrap_or`
//!   into an ordering coin-flip; `total_cmp` is total and bitwise-stable),
//!   parallel reductions (`par_iter().sum()` and friends) whose float
//!   accumulation order depends on scheduling, and integer-accumulator
//!   dequantization (`as f32` under a `*_scale` factor) — sanctioned only
//!   as an opt-in backend with a scoped, reasoned allow.
//! * **R7-concurrency** — shared mutable statics, `Ordering::Relaxed`
//!   atomic loads feeding comparisons (a relaxed snapshot compared against
//!   a cap can run arbitrarily stale), and lock acquisition inside
//!   `#[inline]` hot-path functions.
//! * **R8-panic-reachability** — the call-graph-transitive form of R5: an
//!   `unwrap`/`expect`/`panic!` on an io/serde operation that a `pub` API
//!   of a library crate can reach, reported with the call path.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::config;
use crate::resolve::Workspace;
use crate::rules::{Violation, IO_SERDE_MARKERS};
use crate::scan::{FileView, Tok};

/// Per-file inputs shared with the lexical rules: the scanned view, its
/// token stream, and the `#[cfg(test)]` spans.
pub struct FileCtx {
    pub view: FileView,
    pub toks: Vec<Tok>,
    pub test_spans: Vec<(usize, usize)>,
}

/// Runs R6–R8 over the resolved workspace. `files` maps root-relative path
/// to its scanned context; violations come back unsorted and unsuppressed
/// (the caller applies inline suppressions per file).
pub fn check_workspace(
    ws: &Workspace,
    cg: &CallGraph,
    files: &BTreeMap<String, FileCtx>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (rel, ctx) in files {
        rule_float_determinism(rel, ctx, &mut out);
        rule_concurrency(rel, ctx, &mut out);
    }
    rule_lock_in_inline(ws, files, &mut out);
    rule_panic_reachability(ws, cg, files, &mut out);
    out
}

/// The statement around byte `pos`: back to the previous `;`/`{`/`}` and
/// forward to the next. Operates on the blanked code view, so strings and
/// comments cannot contribute matches.
fn stmt_around(code: &str, pos: usize) -> &str {
    let start = code[..pos].rfind([';', '{', '}']).map(|p| p + 1).unwrap_or(0);
    let end = code[pos..].find([';', '{', '}']).map(|p| pos + p).unwrap_or(code.len());
    &code[start..end]
}

/// Does this (rustfmt-formatted) statement contain a binary comparison?
/// Spaced `<`/`>` keeps generics (`Vec<f64>`) and `->`/`=>` from matching.
fn has_comparison(stmt: &str) -> bool {
    ["==", "!=", "<=", ">=", " < ", " > "].iter().any(|op| stmt.contains(op))
}

fn in_spans(pos: usize, spans: &[(usize, usize)]) -> bool {
    spans.iter().any(|&(a, b)| pos >= a && pos <= b)
}

/// Does the statement reference a quantization scale — an identifier
/// *ending* in `_scale` (`act_scale`, `w_scale`)? The boundary check keeps
/// prefixes like `add_scaled` from matching.
fn has_scale_factor(stmt: &str) -> bool {
    let mut from = 0;
    while let Some(p) = stmt[from..].find("_scale") {
        let end = from + p + "_scale".len();
        if stmt[end..].chars().next().is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_') {
            return true;
        }
        from = end;
    }
    false
}

// ---------------------------------------------------------------- R6

/// Iterator adapters that make a reduction order-sensitive when the source
/// is a parallel iterator.
const PAR_SOURCES: &[&str] = &["par_iter", "par_iter_mut", "into_par_iter", "par_bridge"];
const REDUCERS: &[&str] = &[".sum(", ".product(", ".fold(", ".reduce("];

/// R6 — order-sensitive float operations in score-path crates.
fn rule_float_determinism(rel_path: &str, ctx: &FileCtx, out: &mut Vec<Violation>) {
    let in_scope = config::is_library_code(rel_path)
        && config::crate_dir(rel_path).is_some_and(|d| config::FLOAT_SCORE_CRATE_DIRS.contains(&d));
    if !in_scope {
        return;
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if in_spans(toks[i].pos(), &ctx.test_spans) {
            continue;
        }
        // `.partial_cmp(` — a partial order on a score path. NaN makes the
        // comparator's fallback fire, and *which* elements hit the fallback
        // depends on data order; `total_cmp` never needs one.
        if toks[i].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("partial_cmp"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            out.push(Violation {
                rule: "R6-float-determinism",
                file: rel_path.to_string(),
                line: ctx.view.line_of(toks[i].pos()),
                message: "`.partial_cmp(..)` comparator on a score path is not a total order \
                          (NaN hits the fallback arm); use `f64::total_cmp` for a NaN-stable, \
                          bitwise-reproducible sort"
                    .to_string(),
                suppressed: None,
                related: Vec::new(),
                item: None,
            });
        }
        // `acc as f32 * w_scale[..]`-shaped dequantization: an integer
        // accumulator crossing into floats under a quantization scale.
        // The cast itself is exact, but the multiply re-rounds every
        // score, so the site must be an explicit, documented opt-in —
        // lsm-nn's quantized backend records that contract with a scoped
        // allow on each epilogue line.
        if toks[i].is_ident("as")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("f32"))
            && has_scale_factor(stmt_around(&ctx.view.code, toks[i].pos()))
        {
            out.push(Violation {
                rule: "R6-float-determinism",
                file: rel_path.to_string(),
                line: ctx.view.line_of(toks[i].pos()),
                message: "integer-accumulator dequantization (`as f32` under a `*_scale` \
                          factor) leaves the bitwise-exact rounding class of the score path; \
                          keep it behind an opt-in quantized backend and record the \
                          justification with a scoped `lsm-lint: allow(..)`"
                    .to_string(),
                suppressed: None,
                related: Vec::new(),
                item: None,
            });
        }
        // `par_iter().sum()` and friends — float reduction order follows
        // work-stealing, so the sum is not bitwise-stable across runs.
        if let Some(src) = PAR_SOURCES.iter().find(|s| toks[i].is_ident(s)) {
            if toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
                let stmt = stmt_around(&ctx.view.code, toks[i].pos());
                if let Some(red) = REDUCERS.iter().find(|r| stmt.contains(*r)) {
                    out.push(Violation {
                        rule: "R6-float-determinism",
                        file: rel_path.to_string(),
                        line: ctx.view.line_of(toks[i].pos()),
                        message: format!(
                            "parallel reduction `{src}()..{red})` accumulates floats in \
                             scheduling order; use a fixed-order block reduction (chunk, \
                             reduce each chunk sequentially, then combine in index order)"
                        ),
                        suppressed: None,
                        related: Vec::new(),
                        item: None,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------- R7

/// R7 (lexical half) — shared mutable statics and relaxed atomic snapshots
/// feeding comparisons.
fn rule_concurrency(rel_path: &str, ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !config::is_library_code(rel_path) {
        return;
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if in_spans(toks[i].pos(), &ctx.test_spans) {
            continue;
        }
        if toks[i].is_ident("static") && toks.get(i + 1).is_some_and(|t| t.is_ident("mut")) {
            out.push(Violation {
                rule: "R7-concurrency",
                file: rel_path.to_string(),
                line: ctx.view.line_of(toks[i].pos()),
                message: "`static mut` is unsynchronized shared mutable state; use an atomic, \
                          a `Mutex`, or `OnceLock`"
                    .to_string(),
                suppressed: None,
                related: Vec::new(),
                item: None,
            });
        }
        // `.load(Ordering::Relaxed)` whose statement compares the result.
        // A bare boolean gate (`if ENABLED.load(Relaxed)`) is fine — that
        // is the sanctioned zero-overhead fast path — but a relaxed
        // snapshot compared against a cap or another counter can be
        // arbitrarily stale relative to the writes it gates.
        if toks[i].is_punct(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("load"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            let close = crate::items::matching(toks, i + 2, "(", ")");
            let relaxed =
                close.is_some_and(|c| toks[i + 2..c].iter().any(|t| t.is_ident("Relaxed")));
            if relaxed {
                let stmt = stmt_around(&ctx.view.code, toks[i].pos());
                if has_comparison(stmt) {
                    out.push(Violation {
                        rule: "R7-concurrency",
                        file: rel_path.to_string(),
                        line: ctx.view.line_of(toks[i].pos()),
                        message: "`Ordering::Relaxed` load feeds a comparison; the snapshot \
                                  can be arbitrarily stale relative to the writes it gates — \
                                  load with `Ordering::Acquire`"
                            .to_string(),
                        suppressed: None,
                        related: Vec::new(),
                        item: None,
                    });
                }
            }
        }
    }
}

/// R7 (item-aware half) — lock acquisition inside an `#[inline]` function.
/// Inline functions are the observability hot path contract: they must stay
/// a relaxed load when the sink is off, and a lock would serialize every
/// caller.
fn rule_lock_in_inline(
    ws: &Workspace,
    files: &BTreeMap<String, FileCtx>,
    out: &mut Vec<Violation>,
) {
    for f in &ws.fns {
        if !f.item.is_inline || f.item.in_test || !f.library {
            continue;
        }
        let Some(ctx) = files.get(&f.item.file) else { continue };
        let (lo, hi) = f.item.body;
        for k in 0..ctx.toks.len() {
            let t = &ctx.toks[k];
            if t.pos() <= lo || t.pos() >= hi || !t.is_punct(".") {
                continue;
            }
            if ctx.toks.get(k + 1).is_some_and(|x| x.is_ident("lock"))
                && ctx.toks.get(k + 2).is_some_and(|x| x.is_punct("("))
            {
                out.push(Violation {
                    rule: "R7-concurrency",
                    file: f.item.file.clone(),
                    line: ctx.view.line_of(t.pos()),
                    message: format!(
                        "`.lock()` inside `#[inline]` fn `{}`; inline functions are the \
                         hot-path contract — move the lock behind an out-of-line slow path",
                        f.fq
                    ),
                    suppressed: None,
                    related: Vec::new(),
                    item: None,
                });
            }
        }
    }
}

// ---------------------------------------------------------------- R8

/// One io/serde panic site inside a function body.
struct PanicSite {
    line: usize,
    what: String,
}

/// R8 — io/serde panic sites transitively reachable from an externally
/// visible `pub` API of a library crate. The reported path is the BFS
/// shortest path in the over-approximate call graph.
fn rule_panic_reachability(
    ws: &Workspace,
    cg: &CallGraph,
    files: &BTreeMap<String, FileCtx>,
    out: &mut Vec<Violation>,
) {
    let mut sites: BTreeMap<usize, Vec<PanicSite>> = BTreeMap::new();
    for (idx, f) in ws.fns.iter().enumerate() {
        if !f.library || f.item.in_test {
            continue;
        }
        let Some(ctx) = files.get(&f.item.file) else { continue };
        let found = panic_sites_in_body(ctx, f.item.body);
        if !found.is_empty() {
            sites.insert(idx, found);
        }
    }
    if sites.is_empty() {
        return;
    }

    let roots: Vec<usize> =
        ws.fns.iter().enumerate().filter(|(_, f)| f.external).map(|(i, _)| i).collect();
    let reach = cg.reach_from(&roots);

    for (idx, found) in &sites {
        if !reach.contains_key(idx) {
            continue;
        }
        let path = CallGraph::path_to(&reach, *idx);
        let chain = path.iter().map(|&i| ws.fns[i].fq.as_str()).collect::<Vec<_>>().join(" -> ");
        let f = &ws.fns[*idx];
        for site in found {
            out.push(Violation {
                rule: "R8-panic-reachability",
                file: f.item.file.clone(),
                line: site.line,
                message: format!(
                    "{} is reachable from the public API: {chain}; propagate the error \
                     across this path instead of panicking",
                    site.what
                ),
                suppressed: None,
                related: Vec::new(),
                item: None,
            });
        }
    }
}

/// Io/serde `unwrap`/`expect`/`panic!` sites in one body span, excluding
/// `#[cfg(test)]` regions — the same statement heuristic as R5.
fn panic_sites_in_body(ctx: &FileCtx, body: (usize, usize)) -> Vec<PanicSite> {
    let (lo, hi) = body;
    let mut found = Vec::new();
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        let pos = toks[i].pos();
        if pos <= lo || pos >= hi || in_spans(pos, &ctx.test_spans) {
            continue;
        }
        if toks[i].is_punct(".") {
            let Some(method) = toks
                .get(i + 1)
                .and_then(|t| t.ident())
                .filter(|m| *m == "unwrap" || *m == "expect")
            else {
                continue;
            };
            if !toks.get(i + 2).is_some_and(|t| t.is_punct("(")) {
                continue;
            }
            let stmt = stmt_around(&ctx.view.code, pos);
            if let Some(marker) = IO_SERDE_MARKERS.iter().find(|m| stmt.contains(*m)) {
                found.push(PanicSite {
                    line: ctx.view.line_of(pos),
                    what: format!("`.{method}()` on a fallible io/serde operation (`{marker}`)"),
                });
            }
        } else if toks[i].is_ident("panic") && toks.get(i + 1).is_some_and(|t| t.is_punct("!")) {
            let stmt = stmt_around(&ctx.view.code, pos);
            if let Some(marker) = IO_SERDE_MARKERS.iter().find(|m| stmt.contains(*m)) {
                found.push(PanicSite {
                    line: ctx.view.line_of(pos),
                    what: format!("`panic!` in an io/serde statement (`{marker}`)"),
                });
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use crate::scan::{tokenize, FileView};

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let mut ctxs = BTreeMap::new();
        let mut items = BTreeMap::new();
        let mut toks_map = BTreeMap::new();
        for (path, src) in files {
            let view = FileView::new(src.to_string());
            let toks = tokenize(&view.code);
            let test_spans = crate::rules::cfg_test_spans(&toks);
            items.insert(path.to_string(), parse_file(path, &view, &toks, &test_spans));
            toks_map.insert(path.to_string(), toks.clone());
            ctxs.insert(path.to_string(), FileCtx { view, toks, test_spans });
        }
        let ws = Workspace::resolve(&items);
        let cg = CallGraph::build(&ws, &toks_map);
        check_workspace(&ws, &cg, &ctxs)
    }

    #[test]
    fn r6_flags_partial_cmp_and_parallel_reductions() {
        let v = run(&[(
            "crates/core/src/score.rs",
            "pub fn rank(xs: &mut [f64]) {\n\
             \u{20}   xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
             \u{20}   let _s: f64 = xs.par_iter().map(|x| x * x).sum();\n\
             }\n",
        )]);
        let rules: Vec<&str> = v.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["R6-float-determinism", "R6-float-determinism"]);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn r6_flags_dequant_epilogue_but_not_plain_casts() {
        let v = run(&[(
            "crates/nn/src/q.rs",
            "pub fn dequant(acc: i32, act_scale: f32, w_scale: f32) -> f32 {\n\
             \u{20}   acc as f32 * (act_scale * w_scale)\n\
             }\n\
             pub fn plain(n: usize) -> f32 {\n\
             \u{20}   n as f32\n\
             }\n\
             pub fn prefix_only(n: i32, add_scaled: f32) -> f32 {\n\
             \u{20}   n as f32 + add_scaled\n\
             }\n",
        )]);
        let hits: Vec<(usize, &str)> = v.iter().map(|x| (x.line, x.rule)).collect();
        assert_eq!(hits, vec![(2, "R6-float-determinism")], "{v:?}");
        assert!(v[0].message.contains("dequantization"), "{}", v[0].message);
    }

    /// The sanctioned spelling: a scoped allow with a reason on the int8
    /// dequant epilogue suppresses the violation but keeps the record.
    #[test]
    fn r6_dequant_scoped_allow_records_reason() {
        let src = "pub fn dequant(acc: i32, act_scale: f32) -> f32 {\n\
                   \u{20}   // lsm-lint: allow(R6-float-determinism, int8 epilogue: exact i32 accumulator under static scales)\n\
                   \u{20}   acc as f32 * act_scale\n\
                   }\n";
        let mut v = run(&[("crates/nn/src/q.rs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        let view = FileView::new(src.to_string());
        crate::rules::apply_suppressions(&view, &mut v);
        assert!(
            v[0].suppressed.as_deref().is_some_and(|r| r.contains("exact i32 accumulator")),
            "{v:?}"
        );
    }

    #[test]
    fn r6_ignores_non_score_crates_and_tests() {
        let v = run(&[
            ("crates/obs/src/x.rs", "pub fn f(a: f64, b: f64) { a.partial_cmp(&b); }"),
            (
                "crates/core/src/y.rs",
                "#[cfg(test)]\nmod tests {\n    fn f(a: f64, b: f64) { a.partial_cmp(&b); }\n}\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r7_flags_static_mut_and_relaxed_comparison() {
        let v = run(&[(
            "crates/core/src/state.rs",
            "static mut COUNT: u64 = 0;\n\
             pub fn over(cap: u64) -> bool {\n\
             \u{20}   N.load(Ordering::Relaxed) >= cap\n\
             }\n\
             pub fn gate() -> bool {\n\
             \u{20}   if ENABLED.load(Ordering::Relaxed) { true } else { false }\n\
             }\n",
        )]);
        let lines: Vec<(usize, &str)> = v.iter().map(|x| (x.line, x.rule)).collect();
        assert_eq!(lines, vec![(1, "R7-concurrency"), (3, "R7-concurrency")]);
    }

    #[test]
    fn r7_flags_lock_in_inline_fn() {
        let v = run(&[(
            "crates/obs/src/m.rs",
            "#[inline]\npub fn hot() {\n    let _g = registry().lock();\n}\n\
             pub fn cold() {\n    let _g = registry().lock();\n}\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("obs::m::hot"), "{}", v[0].message);
    }

    #[test]
    fn r8_reports_reachable_sites_with_path() {
        let v = run(&[
            ("crates/core/src/lib.rs", "pub mod api;\nmod inner;\n"),
            (
                "crates/core/src/api.rs",
                "pub fn entry(p: &str) -> String {\n    crate::inner::slurp(p)\n}\n",
            ),
            (
                "crates/core/src/inner.rs",
                "pub fn slurp(p: &str) -> String {\n\
                 \u{20}   std::fs::read_to_string(p).unwrap()\n\
                 }\n\
                 pub fn unreached(p: &str) -> String {\n\
                 \u{20}   std::fs::read_to_string(p).unwrap()\n\
                 }\n",
            ),
        ]);
        // `slurp` is reached from `entry`; `unreached` is *also* a root on
        // its own? No — `inner` is a private module and nothing re-exports
        // it, so only the path through `entry` fires.
        let r8: Vec<&Violation> = v.iter().filter(|x| x.rule == "R8-panic-reachability").collect();
        assert_eq!(r8.len(), 1, "{v:?}");
        assert_eq!(r8[0].file, "crates/core/src/inner.rs");
        assert_eq!(r8[0].line, 2);
        assert!(
            r8[0].message.contains("core::api::entry -> core::inner::slurp"),
            "{}",
            r8[0].message
        );
    }

    #[test]
    fn r8_is_silent_when_sites_are_unreachable() {
        let v = run(&[
            ("crates/core/src/lib.rs", "mod inner;\npub fn safe() -> u32 { 1 }\n"),
            (
                "crates/core/src/inner.rs",
                "fn private_slurp(p: &str) -> String {\n\
                 \u{20}   std::fs::read_to_string(p).unwrap()\n\
                 }\n",
            ),
        ]);
        assert!(!v.iter().any(|x| x.rule == "R8-panic-reachability"), "{v:?}");
    }
}
