//! An over-approximate workspace call graph over the resolved functions.
//!
//! Edges are resolved *by name*, with narrowing where the token stream
//! gives more context:
//!
//! * `Type::name(..)` — methods of `impl Type`/`trait Type` named `name`,
//!   falling back to every fn named `name`;
//! * `.name(..)` — every *method* named `name` in the workspace (trait
//!   dispatch is over-approximated: a call through `&dyn Trait` gets an
//!   edge to every impl). Receiver-typed resolution is out of scope; a
//!   method name with no workspace definition (std methods like `.iter()`)
//!   produces no edge;
//! * bare `name(..)` — fns named `name`, preferring same-file, then
//!   same-crate, then workspace-wide matches.
//!
//! The graph never prunes: anything it cannot resolve precisely gains
//! *more* edges, so reachability verdicts (rule R8) can report false
//! positives — silenced with a reasoned `allow` — but not false negatives
//! within the name-matching model.

use std::collections::BTreeMap;

use crate::resolve::Workspace;
use crate::scan::Tok;

/// Keywords and control-flow idents that look like `name (` in the token
/// stream but are never calls.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "mut", "ref", "move", "in", "as",
    "where", "impl", "dyn", "else", "await", "unsafe", "box", "pub", "crate", "super", "self",
    "Self", "use", "mod", "struct", "enum", "union", "trait", "type", "const", "static",
];

/// The call graph: `edges[i]` lists callee fn indices of fn `i` (indices
/// into [`Workspace::fns`]), deduplicated and sorted.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph. `file_toks` maps root-relative path → its token
    /// stream (the same stream the items were parsed from).
    pub fn build(ws: &Workspace, file_toks: &BTreeMap<String, Vec<Tok>>) -> CallGraph {
        // Name indexes, all BTree-backed for deterministic edge order.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in ws.fns.iter().enumerate() {
            by_name.entry(&f.item.name).or_default().push(i);
            if let Some(ty) = f.item.self_ty.as_deref() {
                methods.entry(&f.item.name).or_default().push(i);
                typed.entry((ty, &f.item.name)).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
        for (caller, f) in ws.fns.iter().enumerate() {
            let Some(toks) = file_toks.get(&f.item.file) else { continue };
            let (lo, hi) = f.item.body;
            if lo == hi {
                continue;
            }
            let body: Vec<&Tok> = toks.iter().filter(|t| t.pos() > lo && t.pos() < hi).collect();
            for k in 0..body.len() {
                let Some(name) = body[k].ident() else { continue };
                if NOT_CALLS.contains(&name) {
                    continue;
                }
                let next = body.get(k + 1);
                if !next.is_some_and(|t| t.is_punct("(")) {
                    continue; // not `name (`
                }
                let prev = k.checked_sub(1).map(|p| body[p]);
                if prev.is_some_and(|t| t.is_ident("fn")) {
                    continue; // nested definition
                }
                let callees: &[usize] = if prev.is_some_and(|t| t.is_punct(".")) {
                    // `.name(` — method call, trait dispatch over-approx.
                    methods.get(name).map(|v| v.as_slice()).unwrap_or(&[])
                } else if prev.is_some_and(|t| t.is_punct("::")) {
                    // `Seg::name(` — type- or path-qualified.
                    let seg = k.checked_sub(2).and_then(|p| body[p].ident());
                    match seg.and_then(|s| typed.get(&(s, name))) {
                        Some(v) => v.as_slice(),
                        None => by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[]),
                    }
                } else {
                    by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
                };
                if callees.is_empty() {
                    continue;
                }
                // Narrow bare-name candidates: same file beats same crate
                // beats workspace-wide.
                let chosen: Vec<usize> = {
                    let same_file: Vec<usize> = callees
                        .iter()
                        .copied()
                        .filter(|&c| ws.fns[c].item.file == f.item.file)
                        .collect();
                    if !same_file.is_empty() {
                        same_file
                    } else {
                        let same_crate: Vec<usize> = callees
                            .iter()
                            .copied()
                            .filter(|&c| ws.fns[c].crate_dir == f.crate_dir)
                            .collect();
                        if !same_crate.is_empty() {
                            same_crate
                        } else {
                            callees.to_vec()
                        }
                    }
                };
                for c in chosen {
                    if c != caller {
                        edges[caller].push(c);
                    }
                }
            }
        }
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
        }
        CallGraph { edges }
    }

    /// BFS from `roots`; returns, for every reachable fn, the index of the
    /// fn it was first reached *from* (roots map to themselves). Cycles are
    /// handled naturally — each node is visited once.
    pub fn reach_from(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if !pred.contains_key(&r) {
                pred.insert(r, r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &c in &self.edges[n] {
                if !pred.contains_key(&c) {
                    pred.insert(c, n);
                    queue.push_back(c);
                }
            }
        }
        pred
    }

    /// The call path `root -> .. -> target` implied by a [`reach_from`]
    /// predecessor map, as fn indices.
    pub fn path_to(pred: &BTreeMap<usize, usize>, target: usize) -> Vec<usize> {
        let mut path = vec![target];
        let mut cur = target;
        while let Some(&p) = pred.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use crate::resolve::Workspace;
    use crate::scan::{tokenize, FileView};

    fn build(files: &[(&str, &str)]) -> (Workspace, CallGraph) {
        let mut items = BTreeMap::new();
        let mut toks_map = BTreeMap::new();
        for (path, src) in files {
            let view = FileView::new(src.to_string());
            let toks = tokenize(&view.code);
            items.insert(path.to_string(), parse_file(path, &view, &toks, &[]));
            toks_map.insert(path.to_string(), toks);
        }
        let ws = Workspace::resolve(&items);
        let cg = CallGraph::build(&ws, &toks_map);
        (ws, cg)
    }

    fn idx(ws: &Workspace, fq: &str) -> usize {
        ws.fns.iter().position(|f| f.fq == fq).unwrap_or_else(|| panic!("missing {fq}"))
    }

    #[test]
    fn direct_and_cross_crate_edges() {
        let (ws, cg) = build(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper(); beta_load(); } fn helper() {}"),
            ("crates/b/src/lib.rs", "pub fn beta_load() {}"),
        ]);
        let entry = idx(&ws, "a::entry");
        assert!(cg.edges[entry].contains(&idx(&ws, "a::helper")));
        assert!(cg.edges[entry].contains(&idx(&ws, "b::beta_load")));
    }

    #[test]
    fn method_calls_over_approximate_across_impls() {
        let (ws, cg) = build(&[(
            "crates/a/src/lib.rs",
            "pub trait T { fn go(&self); } pub struct X; pub struct Y; \
             impl T for X { fn go(&self) {} } impl T for Y { fn go(&self) {} } \
             pub fn run(t: &dyn T) { t.go(); }",
        )]);
        let run = idx(&ws, "a::run");
        assert!(cg.edges[run].contains(&idx(&ws, "a::X::go")));
        assert!(cg.edges[run].contains(&idx(&ws, "a::Y::go")));
    }

    #[test]
    fn reachability_handles_cycles() {
        let (ws, cg) = build(&[(
            "crates/a/src/lib.rs",
            "pub fn top() { ping(); } fn ping() { pong(); } fn pong() { ping(); sink(); } \
             fn sink() {} fn island() {}",
        )]);
        let reach = cg.reach_from(&[idx(&ws, "a::top")]);
        assert!(reach.contains_key(&idx(&ws, "a::sink")));
        assert!(!reach.contains_key(&idx(&ws, "a::island")));
        let path = CallGraph::path_to(&reach, idx(&ws, "a::sink"));
        assert_eq!(path.first().copied(), Some(idx(&ws, "a::top")));
        assert_eq!(path.len(), 4, "top -> ping -> pong -> sink");
    }

    #[test]
    fn same_file_narrowing_beats_workspace_matches() {
        let (ws, cg) = build(&[
            ("crates/a/src/lib.rs", "pub fn go() { load(); } fn load() {}"),
            ("crates/b/src/lib.rs", "pub fn load() {}"),
        ]);
        let go = idx(&ws, "a::go");
        assert_eq!(cg.edges[go], vec![idx(&ws, "a::load")]);
    }
}
