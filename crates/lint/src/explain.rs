//! `lsm-lint --explain <rule>`: the long-form rationale behind each rule,
//! with a concrete before/after where one exists in this repository's
//! history. The short one-liners live in [`crate::config::RULE_SUMMARIES`];
//! this module is what a contributor reads when the gate rejects their PR.

/// Long-form explanation per rule id.
const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "R1-hash-iter",
        "R1-hash-iter — no HashMap/HashSet iteration in deterministic crates.\n\
         \n\
         std's hashers are seeded per process, so iteration order differs between\n\
         runs. Any score, feature vector, or serialized artifact built by iterating\n\
         a hash container silently changes across runs. Lookups are fine.\n\
         \n\
         before:  for (tok, n) in counts.iter() { ... }        // HashMap\n\
         after:   let counts: BTreeMap<_, _> = ...;            // or collect-and-sort\n",
    ),
    (
        "R2-wall-clock",
        "R2-wall-clock — no Instant::now/SystemTime::now outside lsm-obs/lsm-bench.\n\
         \n\
         Timing belongs to the observability layer so every measurement lands in\n\
         the same trace with the same epoch. A raw clock read elsewhere produces\n\
         timings nothing can attribute or compare.\n\
         \n\
         before:  let t0 = Instant::now(); work(); log(t0.elapsed());\n\
         after:   let _span = lsm_obs::span(\"work\"); work();\n",
    ),
    (
        "R3-entropy",
        "R3-entropy — every RNG takes an explicit seed.\n\
         \n\
         thread_rng/from_entropy/OsRng make a run unreproducible: no seed, no\n\
         replay. All randomness flows from a seed recorded in the experiment\n\
         config.\n\
         \n\
         before:  let mut rng = rand::thread_rng();\n\
         after:   let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);\n",
    ),
    (
        "R4-unsafe-safety",
        "R4-unsafe-safety — unsafe needs a // SAFETY: comment; unsafe-free crates\n\
         must carry #![forbid(unsafe_code)].\n\
         \n\
         The comment states the invariant that makes the block sound, where the\n\
         next editor will see it. The forbid attribute makes \"this crate has no\n\
         unsafe\" a compiler-checked property instead of a lint-checked one.\n",
    ),
    (
        "R5-panic-policy",
        "R5-panic-policy — no unwrap/expect on io/serde results in library code.\n\
         \n\
         Disk and serde failures are expected at runtime (truncated journal,\n\
         concurrent writer, disk full). Library code propagates them; only bin\n\
         targets decide to abort.\n\
         \n\
         before:  let cfg = std::fs::read_to_string(p).unwrap();\n\
         after:   let cfg = std::fs::read_to_string(p)?;\n",
    ),
    (
        "R6-float-determinism",
        "R6-float-determinism — no order-sensitive float operations on score paths.\n\
         \n\
         Float addition is not associative and partial_cmp is not total, so both\n\
         parallel reductions and NaN-fallback comparators make score matrices\n\
         differ across runs or thread counts — breaking the bitwise-reproducibility\n\
         guarantee the matcher's proptests enforce.\n\
         \n\
         before:  pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(Equal));\n\
         after:   pairs.sort_by(|a, b| b.2.total_cmp(&a.2));\n\
         \n\
         before:  let s: f64 = xs.par_iter().sum();\n\
         after:   chunk xs, reduce each chunk sequentially, combine in index order\n\
         (see Tensor::matmul_threaded: threads write disjoint slices, the merge\n\
         order is fixed).\n\
         \n\
         Integer-accumulator dequantization (`acc as f32 * act_scale`) re-rounds\n\
         every score it produces. lsm-nn's opt-in int8 backend is the sanctioned\n\
         exception: its epilogues carry a scoped\n\
         `// lsm-lint: allow(R6-float-determinism, reason)` documenting why the\n\
         exact i32 accumulation keeps the path deterministic per backend.\n",
    ),
    (
        "R7-concurrency",
        "R7-concurrency — shared-state discipline.\n\
         \n\
         Three shapes are flagged: (1) `static mut` — unsynchronized shared\n\
         mutable state, UB under concurrent access; use an atomic, Mutex, or\n\
         OnceLock. (2) an Ordering::Relaxed load feeding a comparison — the\n\
         snapshot can be arbitrarily stale relative to the writes it gates; load\n\
         with Acquire. A bare boolean gate (`if ENABLED.load(Relaxed)`) stays\n\
         legal: that is the zero-overhead-when-off fast path. (3) `.lock()`\n\
         inside an #[inline] fn — inline functions are the hot-path contract and\n\
         a lock there serializes every caller; move it behind an out-of-line\n\
         slow path.\n\
         \n\
         before:  COUNTERS[c].load(Ordering::Relaxed) >= cap\n\
         after:   COUNTERS[c].load(Ordering::Acquire) >= cap\n",
    ),
    (
        "R8-panic-reachability",
        "R8-panic-reachability — the call-graph-transitive form of R5.\n\
         \n\
         R5 flags an unwrap on io/serde where it lexically sits; R8 asks whether a\n\
         pub API of a library crate can *reach* one, across files and crates, and\n\
         prints the call path (e.g. `core::api::respond -> store::journal::append`).\n\
         The graph is over-approximate — name-matched calls, trait dispatch fans\n\
         out to every impl — so it can report paths that cannot happen at runtime\n\
         (suppress with a reasoned allow) but does not miss ones that can.\n\
         \n\
         fix: propagate the error across the reported path instead of panicking,\n\
         or make the entry point fallible.\n",
    ),
    (
        "R9-taint",
        "R9-taint — the dataflow-transitive form of R2/R3.\n\
         \n\
         R2/R3 flag the textual site of a clock/entropy/env read. They cannot see\n\
         the value being laundered through a binding or a helper before it reaches\n\
         a deterministic crate. R9 builds def-use chains per function and\n\
         propagates taint along the workspace call graph: a *used* binding in a\n\
         deterministic crate whose value derives from Instant::now / thread_rng /\n\
         env::var through at least one hop is flagged, with the full chain in the\n\
         message (and as SARIF relatedLocations).\n\
         \n\
         before:  fn jitter() -> f64 { Instant::now().elapsed().as_secs_f64() }\n\
         \u{20}        let eps = jitter();   // R2 sees nothing here\n\
         \u{20}        score += eps;         // nondeterminism is now in the score\n\
         after:   take the value from explicit config/seed, or keep the timing\n\
         inside lsm-obs (span/timed), whose guards never feed a score.\n\
         \n\
         Unused guard bindings (`let _span = lsm_obs::span(..)`) are not flagged:\n\
         a value nothing reads cannot flow anywhere.\n",
    ),
    (
        "R10-cast-discipline",
        "R10-cast-discipline — unchecked narrowing and wrapping arithmetic in\n\
         kernel/quant code (crates/nn kernels.rs, quant.rs, fast.rs).\n\
         \n\
         A `usize` length or an i32 accumulator pushed through `as u16`/`as i16`\n\
         truncates silently, corrupting the score matrix only on inputs larger\n\
         than any unit test. The rule tracks which values are risky (loop\n\
         counters, .len() bindings, `+=` accumulators) via def-use chains and\n\
         flags narrowing casts whose operand uses one without a clamp/min/max/\n\
         mask/assert. Widening loads (`wt[idx] as i16` where only the *index* is\n\
         risky) pass: index expressions inside `[..]` are skipped.\n\
         \n\
         before:  let n = xs.len(); header.count = n as u16;\n\
         after:   debug_assert!(n <= u16::MAX as usize); header.count =\n\
         \u{20}        n.min(u16::MAX as usize) as u16;\n\
         \n\
         `.wrapping_*` is flagged unconditionally outside tests: a deliberate bit\n\
         trick (the to_bits magic-rounding constant) documents its invariant in a\n\
         scoped `lsm-lint: allow(R10, ..)`; anything else widens or checks.\n",
    ),
    (
        "R11-lock-discipline",
        "R11-lock-discipline — lock-order cycles and atomics pairing for the\n\
         lock-free layer.\n\
         \n\
         (1) Every `.lock()` acquisition is edged against the locks already held\n\
         (directly or transitively through the call graph). A cycle means two\n\
         threads can take the same locks in opposite orders and deadlock; the\n\
         report lists every acquisition site in the cycle. Impose one global\n\
         acquisition order.\n\
         \n\
         (2) An Ordering::Acquire load of a cell whose writes are all Relaxed\n\
         pairs with nothing — the Acquire is a lie, and multi-cell snapshots\n\
         (histogram count vs buckets) can tear. Upgrade the writes (an RMW at\n\
         AcqRel costs nothing extra on x86) or relax the load and document the\n\
         external synchronization.\n\
         \n\
         before:  buckets.fetch_add(1, Relaxed);  ...  buckets.load(Acquire)\n\
         after:   buckets.fetch_add(1, AcqRel);   ...  buckets.load(Acquire)\n\
         \n\
         (3) `while X.load(Relaxed)` spin conditions may never observe the store\n\
         they wait for in bounded time and order nothing after exit; use Acquire.\n\
         \n\
         R11 reasons statically and over-approximately. Its dynamic complement\n\
         is the lsm-check model checker (crates/check): port the suspect code\n\
         onto lsm_check::sync and write a model test — the checker explores\n\
         every bounded interleaving on stable Rust, detects the deadlock R11\n\
         predicts via its runtime lock-order graph, and prints a deterministic\n\
         trace replayable with LSM_CHECK_REPLAY. See docs/static-analysis.md\n\
         (\"Model checking\") and crates/{obs,serve}/tests/model.rs.\n",
    ),
    (
        "R12-alloc-in-span",
        "R12-alloc-in-span — hidden allocation inside an instrumented span scope\n\
         on alloc-tracked hot paths (fast encoder forward, journal append/fsync).\n\
         \n\
         The alloc-tracker attributes every allocation to the innermost open\n\
         span. A `vec!`, `.collect()`, or `format!` inside a hot span scope is\n\
         charged to every timed iteration: it inflates the latency histogram the\n\
         span exists to measure and turns a fixed cost into a per-call one.\n\
         \n\
         before:  let _span = lsm_obs::span(\"nn.encoder\");\n\
         \u{20}        let buf: Vec<f32> = input.iter().map(f).collect();\n\
         after:   hoist `buf` into a reusable scratch owned by the encoder and\n\
         \u{20}        `clear()` + `extend()` it inside the span.\n\
         \n\
         `resize`/`reserve` on a pre-existing buffer are not flagged — amortized\n\
         reuse is exactly the pattern this rule pushes toward. Advisory level:\n\
         exported to SARIF as `warning`, not `error`.\n",
    ),
];

/// The long explanation for `rule`, accepting either the full id
/// (`R6-float-determinism`) or the bare number (`R6`).
pub fn explain(rule: &str) -> Option<&'static str> {
    EXPLANATIONS
        .iter()
        .find(|(id, _)| *id == rule || id.split('-').next() == Some(rule))
        .map(|(_, text)| *text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    #[test]
    fn every_rule_has_an_explanation() {
        for id in config::RULE_IDS {
            assert!(explain(id).is_some(), "no --explain text for {id}");
        }
    }

    #[test]
    fn short_ids_resolve() {
        assert!(explain("R8").is_some_and(|t| t.contains("call-graph-transitive")));
        assert!(explain("R9").is_some_and(|t| t.contains("dataflow-transitive")));
        assert!(explain("R12").is_some_and(|t| t.contains("alloc-tracked")));
        assert!(explain("R13").is_none());
    }
}
