//! SARIF 2.1.0 export so CI (GitHub code scanning via
//! `codeql-action/upload-sarif`) can annotate findings inline on PRs.
//!
//! One run, one driver (`lsm-lint`), the full rule catalog under
//! `tool.driver.rules`, and one `result` per violation. Suppression state
//! is carried in the standard `suppressions` property: an inline
//! `lsm-lint: allow(..)` becomes `"kind": "inSource"` with the reason as
//! justification, a baseline-covered violation becomes `"kind":
//! "external"`. Viewers treat any result with a non-empty `suppressions`
//! array as suppressed, which matches the gate's exit-code semantics.

use std::fmt::Write as _;

use crate::baseline::quote;
use crate::config;
use crate::explain;
use crate::rules::Violation;

/// Renders violations as a SARIF 2.1.0 log. `covered[i]` says whether
/// `violations[i]` is absorbed by the frozen baseline (see
/// [`crate::baseline::covered_flags`]).
pub fn to_sarif(violations: &[Violation], covered: &[bool]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"lsm-lint\",\n");
    s.push_str("          \"informationUri\": \"docs/static-analysis.md\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, (id, summary)) in config::RULE_SUMMARIES.iter().enumerate() {
        s.push_str("            {\n");
        let _ = writeln!(s, "              \"id\": {},", quote(id));
        let _ =
            writeln!(s, "              \"shortDescription\": {{ \"text\": {} }},", quote(summary));
        if let Some(text) = explain::explain(id) {
            let _ = writeln!(s, "              \"help\": {{ \"text\": {} }},", quote(text));
        }
        let _ = writeln!(
            s,
            "              \"defaultConfiguration\": {{ \"level\": {} }}",
            quote(config::default_level(id))
        );
        let _ = writeln!(
            s,
            "            }}{}",
            if i + 1 < config::RULE_SUMMARIES.len() { "," } else { "" }
        );
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let is_covered = covered.get(i).copied().unwrap_or(false);
        let level = if v.suppressed.is_some() {
            "note"
        } else if is_covered {
            "warning"
        } else {
            // Advisory rules (R12) stay at their catalog level even when new.
            config::default_level(v.rule)
        };
        let rule_index = config::RULE_IDS.iter().position(|r| *r == v.rule);
        s.push_str("\n        {\n");
        let _ = writeln!(s, "          \"ruleId\": {},", quote(v.rule));
        if let Some(idx) = rule_index {
            let _ = writeln!(s, "          \"ruleIndex\": {idx},");
        }
        let _ = writeln!(s, "          \"level\": {},", quote(level));
        let _ = writeln!(s, "          \"message\": {{ \"text\": {} }},", quote(&v.message));
        let _ = write!(
            s,
            "          \"locations\": [\n            {{ \"physicalLocation\": {{ \
             \"artifactLocation\": {{ \"uri\": {}, \"uriBaseId\": \"SRCROOT\" }}, \
             \"region\": {{ \"startLine\": {} }} }} }}\n          ]",
            quote(&v.file),
            v.line.max(1)
        );
        if !v.related.is_empty() {
            s.push_str(",\n          \"relatedLocations\": [");
            for (j, r) in v.related.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "\n            {{ \"physicalLocation\": {{ \
                     \"artifactLocation\": {{ \"uri\": {}, \"uriBaseId\": \"SRCROOT\" }}, \
                     \"region\": {{ \"startLine\": {} }} }}, \
                     \"message\": {{ \"text\": {} }} }}",
                    quote(&r.file),
                    r.line.max(1),
                    quote(&r.note)
                );
            }
            s.push_str("\n          ]");
        }
        if let Some(item) = &v.item {
            s.push_str(",\n");
            let _ = write!(s, "          \"properties\": {{ \"item\": {} }}", quote(item));
        }
        match (&v.suppressed, is_covered) {
            (Some(reason), _) => {
                s.push_str(",\n");
                let _ = write!(
                    s,
                    "          \"suppressions\": [\n            {{ \"kind\": \"inSource\", \
                     \"justification\": {} }}\n          ]",
                    quote(reason)
                );
            }
            (None, true) => {
                s.push_str(",\n");
                s.push_str(
                    "          \"suppressions\": [\n            { \"kind\": \"external\", \
                     \"justification\": \"frozen in lint-baseline.json\" }\n          ]",
                );
            }
            (None, false) => {}
        }
        s.push_str("\n        }");
    }
    if violations.is_empty() {
        s.push_str("]\n");
    } else {
        s.push_str("\n      ]\n");
    }
    s.push_str("    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, suppressed: Option<&str>) -> Violation {
        Violation {
            rule,
            file: "crates/core/src/matcher.rs".into(),
            line: 42,
            message: "a \"quoted\" message".into(),
            suppressed: suppressed.map(|s| s.to_string()),
            related: Vec::new(),
            item: Some("core::matcher::retrain".into()),
        }
    }

    #[test]
    fn sarif_names_schema_rules_and_locations() {
        let vs = vec![violation("R6-float-determinism", None)];
        let s = to_sarif(&vs, &[false]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"ruleId\": \"R6-float-determinism\""));
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("\"uri\": \"crates/core/src/matcher.rs\""));
        assert!(s.contains("a \\\"quoted\\\" message"));
        assert!(s.contains("\"item\": \"core::matcher::retrain\""));
        // The full catalog rides along in the driver, with help text and a
        // default severity per rule.
        for id in config::RULE_IDS {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "missing rule {id}");
        }
        assert_eq!(s.matches("\"help\":").count(), config::RULE_IDS.len());
        assert_eq!(s.matches("\"defaultConfiguration\":").count(), config::RULE_IDS.len());
        assert!(s.contains("\"defaultConfiguration\": { \"level\": \"warning\" }"));
    }

    #[test]
    fn related_locations_carry_taint_chains_and_cycle_paths() {
        let mut v = violation("R11-lock-discipline", None);
        v.related = vec![
            crate::rules::Related {
                file: "crates/store/src/journal.rs".into(),
                line: 7,
                note: "journal -> sink".into(),
            },
            crate::rules::Related {
                file: "crates/store/src/sink.rs".into(),
                line: 9,
                note: "sink -> journal".into(),
            },
        ];
        let s = to_sarif(&[v], &[false]);
        assert_eq!(s.matches("\"relatedLocations\":").count(), 1);
        assert!(s.contains("\"uri\": \"crates/store/src/sink.rs\""));
        assert!(s.contains("\"text\": \"journal -> sink\""));
        assert!(s.contains("\"startLine\": 9"));
    }

    #[test]
    fn advisory_rules_export_at_warning_even_when_new() {
        let s = to_sarif(&[violation("R12-alloc-in-span", None)], &[false]);
        // The result (not just the catalog) carries the advisory level.
        assert!(s.contains("\"ruleId\": \"R12-alloc-in-span\""));
        assert_eq!(s.matches("\n          \"level\": \"error\",").count(), 0);
        assert_eq!(s.matches("\n          \"level\": \"warning\",").count(), 1);
    }

    #[test]
    fn suppression_kinds_follow_violation_state() {
        let vs = vec![
            violation("R5-panic-policy", Some("checked at startup")),
            violation("R5-panic-policy", None),
            violation("R5-panic-policy", None),
        ];
        let s = to_sarif(&vs, &[false, true, false]);
        assert!(s.contains("\"kind\": \"inSource\""));
        assert!(s.contains("\"justification\": \"checked at startup\""));
        assert!(s.contains("\"kind\": \"external\""));
        // Count per-result level lines (the rule catalog carries its own
        // `defaultConfiguration.level` entries at a deeper indent).
        assert_eq!(s.matches("\n          \"level\": \"error\",").count(), 1);
        assert_eq!(s.matches("\n          \"level\": \"warning\",").count(), 1);
        assert_eq!(s.matches("\n          \"level\": \"note\",").count(), 1);
    }

    #[test]
    fn empty_report_is_well_formed() {
        let s = to_sarif(&[], &[]);
        assert!(s.contains("\"results\": []"));
    }
}
