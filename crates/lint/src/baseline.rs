//! The violation baseline: pre-existing debt frozen in `lint-baseline.json`.
//!
//! Since version 2 the counts are keyed by `(rule, item)` where *item* is
//! the fully-qualified function the violation sits in (e.g.
//! `core::matcher::LsmMatcher::retrain`), falling back to the file path for
//! violations outside any function. Item keys survive both line shifts
//! *and* file moves; only *more* violations of a rule on an item than the
//! baseline records fail the build. Version-1 baselines (keyed by file)
//! are still read — run `--fix-baseline` once to migrate. The crate is
//! dependency-free, so the narrow JSON schema is read and written by hand.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::rules::Violation;

/// Baseline counts: `(rule, item-or-file) -> allowed violation count`.
pub type Counts = BTreeMap<(String, String), usize>;

/// The baseline key of one violation: its fully-qualified item when known,
/// its file otherwise.
pub fn key_of(v: &Violation) -> (String, String) {
    (v.rule.to_string(), v.item.clone().unwrap_or_else(|| v.file.clone()))
}

/// Aggregates active (non-suppressed) violations into baseline counts.
pub fn count(violations: &[Violation]) -> Counts {
    let mut counts = Counts::new();
    for v in violations.iter().filter(|v| v.suppressed.is_none()) {
        *counts.entry(key_of(v)).or_insert(0) += 1;
    }
    counts
}

/// The `(rule, item)` groups whose current count exceeds the baseline,
/// with `(current, allowed)` per group.
pub fn over_baseline(current: &Counts, baseline: &Counts) -> Vec<((String, String), usize, usize)> {
    current
        .iter()
        .filter_map(|(key, &cur)| {
            let allowed = baseline.get(key).copied().unwrap_or(0);
            (cur > allowed).then(|| (key.clone(), cur, allowed))
        })
        .collect()
}

/// For each violation (in order), is it covered by the frozen baseline?
/// The first `allowed` active violations of a key are covered; suppressed
/// violations are never baseline-covered (their inline allow covers them).
pub fn covered_flags(violations: &[Violation], baseline: &Counts) -> Vec<bool> {
    let mut used: Counts = Counts::new();
    violations
        .iter()
        .map(|v| {
            if v.suppressed.is_some() {
                return false;
            }
            let key = key_of(v);
            let allowed = baseline.get(&key).copied().unwrap_or(0);
            let n = used.entry(key).or_insert(0);
            *n += 1;
            *n <= allowed
        })
        .collect()
}

/// Baseline entries that no longer correspond to anything in the tree,
/// each with a human-readable reason. An entry is stale when its rule id
/// is not in the catalog, its item key (`a::b::c` form) names a function
/// the resolver no longer sees, or its file key names a path that no
/// longer exists under `root`. Stale entries are debt the tree has already
/// paid down — `--check-baseline` reports them and `--fix-baseline`
/// (which re-counts from scratch) prunes them.
pub fn stale_entries(
    baseline: &Counts,
    known_items: &std::collections::BTreeSet<String>,
    root: &Path,
) -> Vec<((String, String), String)> {
    let items = known_items;
    let mut out = Vec::new();
    for (rule, item) in baseline.keys() {
        let reason = if !crate::config::RULE_IDS.contains(&rule.as_str()) {
            Some(format!("rule `{rule}` is not in the catalog"))
        } else if item.contains("::") {
            (!items.contains(item.as_str()))
                .then(|| format!("item `{item}` no longer resolves to a function"))
        } else {
            (!root.join(item).is_file()).then(|| format!("file `{item}` no longer exists"))
        };
        if let Some(reason) = reason {
            out.push(((rule.clone(), item.clone()), reason));
        }
    }
    out
}

/// Serializes counts to the checked-in JSON format (sorted, one entry per
/// line, trailing newline) so regeneration is diff-stable.
pub fn to_json(counts: &Counts) -> String {
    let mut s = String::from("{\n  \"version\": 2,\n  \"entries\": [");
    for (i, ((rule, item), n)) in counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{ \"rule\": {}, \"item\": {}, \"count\": {} }}",
            quote(rule),
            quote(item),
            n
        );
    }
    if counts.is_empty() {
        s.push_str("]\n}\n");
    } else {
        s.push_str("\n  ]\n}\n");
    }
    s
}

/// Parses the baseline JSON. Accepts the version-2 schema [`to_json`]
/// writes and the legacy version-1 schema (entries keyed by `"file"`);
/// anything else is an error so a corrupted baseline cannot silently allow
/// violations.
pub fn from_json(text: &str) -> Result<Counts, String> {
    let mut p = Parser { bytes: text.as_bytes(), i: 0 };
    p.ws();
    p.expect(b'{')?;
    let mut counts = Counts::new();
    let mut version_seen = false;
    loop {
        p.ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match key.as_str() {
            "version" => {
                let v = p.number()?;
                if v != 1 && v != 2 {
                    return Err(format!("unsupported baseline version {v}"));
                }
                version_seen = true;
            }
            "entries" => {
                p.expect(b'[')?;
                loop {
                    p.ws();
                    if p.eat(b']') {
                        break;
                    }
                    let (rule, item, n) = p.entry()?;
                    counts.insert((rule, item), n);
                    p.ws();
                    if !p.eat(b',') {
                        p.ws();
                        p.expect(b']')?;
                        break;
                    }
                }
            }
            other => return Err(format!("unexpected baseline key {other:?}")),
        }
        p.ws();
        if !p.eat(b',') {
            p.ws();
            p.expect(b'}')?;
            break;
        }
    }
    if !version_seen {
        return Err("baseline missing \"version\"".to_string());
    }
    Ok(counts)
}

/// Loads a baseline file; a missing file is an empty baseline (the usual
/// state of a clean tree).
pub fn load(path: &Path) -> Result<Counts, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => from_json(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Counts::new()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.bytes.get(self.i).is_some_and(|b| b.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.i) == Some(&b) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at byte {}: expected {:?}, found {:?}",
                self.i,
                b as char,
                self.bytes.get(self.i).map(|&c| c as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.bytes.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole char.
                    let rest = &self.bytes[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("truncated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
                None => return Err("unterminated string in baseline".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.i;
        while self.bytes.get(self.i).is_some_and(|b| b.is_ascii_digit()) {
            self.i += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("baseline parse error at byte {start}: expected a number"))
    }

    fn entry(&mut self) -> Result<(String, String, usize), String> {
        self.expect(b'{')?;
        let (mut rule, mut item, mut n) = (None, None, None);
        loop {
            self.ws();
            if self.eat(b'}') {
                break;
            }
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            match key.as_str() {
                "rule" => rule = Some(self.string()?),
                // `"file"` is the version-1 spelling of the same key.
                "item" | "file" => item = Some(self.string()?),
                "count" => n = Some(self.number()?),
                other => return Err(format!("unexpected entry key {other:?}")),
            }
            self.ws();
            if !self.eat(b',') {
                self.ws();
                self.expect(b'}')?;
                break;
            }
        }
        match (rule, item, n) {
            (Some(r), Some(f), Some(n)) => Ok((r, f, n)),
            _ => Err("baseline entry missing rule/item/count".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counts {
        let mut c = Counts::new();
        c.insert(("R1-hash-iter".into(), "core::featurize::tally".into()), 2);
        c.insert(("R5-panic-policy".into(), "crates/nn/src/y.rs".into()), 1);
        c
    }

    fn violation(rule: &'static str, item: Option<&str>) -> Violation {
        Violation {
            rule,
            file: "crates/nn/src/y.rs".into(),
            line: 1,
            message: String::new(),
            suppressed: None,
            related: Vec::new(),
            item: item.map(|s| s.to_string()),
        }
    }

    #[test]
    fn json_round_trip() {
        let c = sample();
        let parsed = from_json(&to_json(&c)).expect("round trip");
        assert_eq!(parsed, c);
        assert_eq!(from_json(&to_json(&Counts::new())).expect("empty"), Counts::new());
    }

    #[test]
    fn reads_legacy_version_1_file_keys() {
        let v1 = "{\n  \"version\": 1,\n  \"entries\": [\n    \
                  { \"rule\": \"R1-hash-iter\", \"file\": \"crates/core/src/x.rs\", \"count\": 2 }\n  ]\n}\n";
        let parsed = from_json(v1).expect("v1");
        assert_eq!(parsed.get(&("R1-hash-iter".into(), "crates/core/src/x.rs".into())), Some(&2));
    }

    #[test]
    fn keys_prefer_item_over_file() {
        let vs = vec![
            violation("R5-panic-policy", Some("nn::y::load")),
            violation("R5-panic-policy", None),
        ];
        let c = count(&vs);
        assert_eq!(c.get(&("R5-panic-policy".into(), "nn::y::load".into())), Some(&1));
        assert_eq!(c.get(&("R5-panic-policy".into(), "crates/nn/src/y.rs".into())), Some(&1));
    }

    #[test]
    fn over_baseline_flags_only_growth() {
        let baseline = sample();
        let mut current = sample();
        assert!(over_baseline(&current, &baseline).is_empty());
        current.insert(("R1-hash-iter".into(), "core::featurize::tally".into()), 3);
        let over = over_baseline(&current, &baseline);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].1, 3);
        assert_eq!(over[0].2, 2);
        // Shrinking below baseline is fine.
        current.insert(("R1-hash-iter".into(), "core::featurize::tally".into()), 0);
        assert!(over_baseline(&current, &baseline).is_empty());
    }

    #[test]
    fn covered_flags_cover_first_allowed_per_key() {
        let mut baseline = Counts::new();
        baseline.insert(("R5-panic-policy".into(), "nn::y::load".into()), 1);
        let vs = vec![
            violation("R5-panic-policy", Some("nn::y::load")),
            violation("R5-panic-policy", Some("nn::y::load")),
        ];
        assert_eq!(covered_flags(&vs, &baseline), vec![true, false]);
    }

    #[test]
    fn stale_entries_flag_dead_rules_items_and_files() {
        let mut baseline = Counts::new();
        baseline.insert(("R1-hash-iter".into(), "core::featurize::tally".into()), 2);
        baseline.insert(("R1-hash-iter".into(), "core::gone::forever".into()), 1);
        baseline.insert(("R99-no-such-rule".into(), "core::featurize::tally".into()), 1);
        baseline.insert(("R5-panic-policy".into(), "no/such/file.rs".into()), 1);
        // A live file key stays.
        baseline.insert(("R5-panic-policy".into(), "src/live.rs".into()), 1);
        let known: std::collections::BTreeSet<String> =
            ["core::featurize::tally".to_string()].into_iter().collect();
        let root = std::env::temp_dir().join("lsm-lint-stale-entry-test");
        std::fs::create_dir_all(root.join("src")).expect("temp root");
        std::fs::write(root.join("src/live.rs"), "").expect("temp file");
        let stale = stale_entries(&baseline, &known, &root);
        let keys: Vec<&(String, String)> = stale.iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                &("R1-hash-iter".into(), "core::gone::forever".into()),
                &("R5-panic-policy".into(), "no/such/file.rs".into()),
                &("R99-no-such-rule".into(), "core::featurize::tally".into()),
            ],
        );
        assert!(stale[0].1.contains("no longer resolves"));
        assert!(stale[1].1.contains("no longer exists"));
        assert!(stale[2].1.contains("not in the catalog"));
    }

    #[test]
    fn rejects_corrupt_baselines() {
        assert!(from_json("{}").is_err()); // missing version
        assert!(from_json("{\"version\": 3, \"entries\": []}").is_err());
        assert!(from_json("{\"version\": 2, \"entries\": [{\"rule\": \"R1\"}]}").is_err());
    }

    #[test]
    fn escapes_in_paths_survive() {
        let mut c = Counts::new();
        c.insert(("R2-wall-clock".into(), "crates/a \"b\"/x.rs".into()), 1);
        assert_eq!(from_json(&to_json(&c)).expect("escaped"), c);
    }
}
