//! # lsm-lint
//!
//! Workspace static analysis enforcing the determinism, panic-policy, and
//! unsafe-audit invariants that the matcher's reproducibility guarantees
//! rest on (see `docs/static-analysis.md` for the full rule catalog):
//!
//! * **R1-hash-iter** — no `HashMap`/`HashSet` *iteration* in deterministic
//!   crates (`lsm-core`, `lsm-baselines`, `lsm-nn`, `lsm-text`,
//!   `lsm-embedding`, `lsm-datasets`). Lookups are fine; iteration order is
//!   seeded per process and would leak into scores.
//! * **R2-wall-clock** — no `Instant::now`/`SystemTime::now` outside
//!   `lsm-obs`, `lsm-bench`, and the session-timing allowlist.
//! * **R3-entropy** — no `thread_rng`/`from_entropy`/`OsRng`; every RNG is
//!   constructed from an explicit seed.
//! * **R4-unsafe-safety** — every `unsafe` needs a `// SAFETY:` comment, and
//!   crates with zero `unsafe` must carry `#![forbid(unsafe_code)]`.
//! * **R5-panic-policy** — no `unwrap`/`expect` on io/serde results in
//!   library code.
//! * **R6-float-determinism** — no `partial_cmp` comparators, parallel
//!   float reductions, or undocumented dequantization casts on score paths.
//! * **R7-concurrency** — no `static mut`, no `Relaxed` loads feeding
//!   comparisons, no locks inside `#[inline]` hot paths.
//! * **R8-panic-reachability** — no io/serde panic site reachable from a
//!   `pub` API of a library crate, proved on an over-approximate
//!   workspace call graph ([`items`] → [`resolve`] → [`callgraph`]).
//!
//! R1–R5 are per-file token scans; R6–R8 are workspace-semantic — the lint
//! parses items, resolves module paths to fully-qualified names, and builds
//! a call graph across every crate. Violations can be silenced inline with
//! `// lsm-lint: allow(rule-id, reason)` or frozen wholesale in
//! `lint-baseline.json` (keyed by `(rule, fully-qualified-item)` since
//! version 2); only *new* violations fail the build. [`sarif`] renders the
//! findings as SARIF 2.1.0 for CI annotation. The crate is deliberately
//! dependency-free: it lints the workspace before any third-party code
//! needs to compile.

#![forbid(unsafe_code)]

pub mod allocspan;
pub mod baseline;
pub mod callgraph;
pub mod casts;
pub mod config;
pub mod dataflow;
pub mod explain;
pub mod items;
pub mod locks;
pub mod resolve;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod semrules;
pub mod taint;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

pub use rules::{Related, Violation};
use semrules::FileCtx;

/// Lints every `.rs` file under `root`: the per-file rules R1–R5, the
/// crate-level `forbid(unsafe_code)` audit, and the workspace-semantic
/// rules R6–R8 over the resolved call graph. Returned violations include
/// suppressed ones, with [`Violation::suppressed`] set, and carry the
/// enclosing function's fully-qualified name in [`Violation::item`] where
/// the resolver could attribute one.
pub fn lint_root(root: &Path) -> io::Result<Vec<Violation>> {
    lint_root_with_items(root).map(|(violations, _)| violations)
}

/// Like [`lint_root`], but also returns the set of fully-qualified item
/// names the resolver knows, for baseline staleness checks
/// (`--check-baseline`): a baselined `(rule, item)` whose item no longer
/// exists cannot ever be matched again and should be pruned.
pub fn lint_root_with_items(
    root: &Path,
) -> io::Result<(Vec<Violation>, std::collections::BTreeSet<String>)> {
    let mut out = Vec::new();
    let mut ctxs: BTreeMap<String, FileCtx> = BTreeMap::new();
    for (rel, path) in walk::rust_files(root)? {
        let raw = std::fs::read_to_string(&path)?;
        let view = scan::FileView::new(raw);
        let toks = scan::tokenize(&view.code);
        let test_spans = rules::cfg_test_spans(&toks);
        out.extend(rules::check_file(&rel, &view, &toks, &test_spans));
        ctxs.insert(rel, FileCtx { view, toks, test_spans });
    }
    out.extend(forbid_unsafe_audit(root, &ctxs)?);

    // Workspace pass: items -> module resolution -> call graph -> R6-R8.
    let mut items_map = BTreeMap::new();
    let mut toks_map = BTreeMap::new();
    for (rel, ctx) in &ctxs {
        items_map
            .insert(rel.clone(), items::parse_file(rel, &ctx.view, &ctx.toks, &ctx.test_spans));
        toks_map.insert(rel.clone(), ctx.toks.clone());
    }
    let ws = resolve::Workspace::resolve(&items_map);
    let cg = callgraph::CallGraph::build(&ws, &toks_map);
    let mut sem = semrules::check_workspace(&ws, &cg, &ctxs);
    // Dataflow rules R9-R12 (def-use chains + taint over the call graph).
    sem.extend(taint::check_workspace(&ws, &cg, &ctxs));
    sem.extend(casts::check_workspace(&ws, &ctxs));
    sem.extend(locks::check_workspace(&ws, &cg, &ctxs));
    sem.extend(allocspan::check_files(&ctxs));
    suppress_per_file(&ctxs, &mut sem);
    out.extend(sem);

    attach_items(&ws, &ctxs, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let items = ws.fns.iter().map(|f| f.fq.clone()).collect();
    Ok((out, items))
}

/// Applies inline `lsm-lint: allow(..)` comments to workspace-rule
/// violations, file by file (the per-file rules already did their own).
fn suppress_per_file(ctxs: &BTreeMap<String, FileCtx>, sem: &mut [Violation]) {
    sem.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let mut i = 0;
    while i < sem.len() {
        let mut j = i + 1;
        while j < sem.len() && sem[j].file == sem[i].file {
            j += 1;
        }
        if let Some(ctx) = ctxs.get(&sem[i].file) {
            rules::apply_suppressions(&ctx.view, &mut sem[i..j]);
        }
        i = j;
    }
}

/// Attributes each violation to the innermost resolved function whose span
/// contains its line, so the baseline can key on stable item names instead
/// of file paths.
fn attach_items(ws: &resolve::Workspace, ctxs: &BTreeMap<String, FileCtx>, out: &mut [Violation]) {
    let mut per_file: BTreeMap<&str, Vec<(usize, usize, &str)>> = BTreeMap::new();
    for f in &ws.fns {
        let Some(ctx) = ctxs.get(&f.item.file) else { continue };
        let (lo, hi) = f.item.body;
        if lo == hi {
            continue;
        }
        let start = ctx.view.line_of(f.item.pos);
        let end = ctx.view.line_of(hi);
        per_file.entry(f.item.file.as_str()).or_default().push((start, end, f.fq.as_str()));
    }
    for v in out.iter_mut() {
        if v.item.is_some() {
            continue;
        }
        if let Some(fns) = per_file.get(v.file.as_str()) {
            let innermost = fns
                .iter()
                .filter(|(s, e, _)| *s <= v.line && v.line <= *e)
                .max_by_key(|(s, _, _)| *s);
            if let Some((_, _, fq)) = innermost {
                v.item = Some(fq.to_string());
            }
        }
    }
}

/// The crate-level half of R4: a crate in which no file uses `unsafe` must
/// say so in its root with `#![forbid(unsafe_code)]`, so the compiler keeps
/// the property without this lint.
fn forbid_unsafe_audit(
    root: &Path,
    ctxs: &BTreeMap<String, FileCtx>,
) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (dir, path) in walk::crate_dirs(root)? {
        let prefix = format!("crates/{dir}/");
        let uses_unsafe = ctxs
            .iter()
            .filter(|(rel, _)| rel.starts_with(&prefix))
            .any(|(_, ctx)| rules::file_uses_unsafe(&ctx.toks));
        if uses_unsafe {
            continue;
        }
        let lib_rel = format!("crates/{dir}/src/lib.rs");
        let main_rel = format!("crates/{dir}/src/main.rs");
        let root_file =
            ctxs.get_key_value(lib_rel.as_str()).or_else(|| ctxs.get_key_value(main_rel.as_str()));
        let Some((rel, ctx)) = root_file else {
            continue; // no root source — nothing Cargo would build
        };
        if !rules::has_forbid_unsafe(&ctx.toks) {
            out.push(Violation {
                rule: "R4-unsafe-safety",
                file: rel.clone(),
                line: 1,
                message: format!(
                    "crate `{}` has zero unsafe code but its root lacks \
                     `#![forbid(unsafe_code)]`; add the attribute so the compiler keeps it that way",
                    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or(dir)
                ),
                suppressed: None,
                related: Vec::new(),
                item: None,
            });
        }
    }
    Ok(out)
}
