//! # lsm-lint
//!
//! Workspace static analysis enforcing the determinism, panic-policy, and
//! unsafe-audit invariants that the matcher's reproducibility guarantees
//! rest on (see `docs/static-analysis.md` for the full rule catalog):
//!
//! * **R1-hash-iter** — no `HashMap`/`HashSet` *iteration* in deterministic
//!   crates (`lsm-core`, `lsm-baselines`, `lsm-nn`, `lsm-text`,
//!   `lsm-embedding`, `lsm-datasets`). Lookups are fine; iteration order is
//!   seeded per process and would leak into scores.
//! * **R2-wall-clock** — no `Instant::now`/`SystemTime::now` outside
//!   `lsm-obs`, `lsm-bench`, and the session-timing allowlist.
//! * **R3-entropy** — no `thread_rng`/`from_entropy`/`OsRng`; every RNG is
//!   constructed from an explicit seed.
//! * **R4-unsafe-safety** — every `unsafe` needs a `// SAFETY:` comment, and
//!   crates with zero `unsafe` must carry `#![forbid(unsafe_code)]`.
//! * **R5-panic-policy** — no `unwrap`/`expect` on io/serde results in
//!   library code.
//!
//! Violations can be silenced inline with
//! `// lsm-lint: allow(rule-id, reason)` or frozen wholesale in
//! `lint-baseline.json`; only *new* violations fail the build. The crate is
//! deliberately dependency-free: it lints the workspace before any
//! third-party code needs to compile.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod rules;
pub mod scan;
pub mod walk;

use std::io;
use std::path::Path;

pub use rules::Violation;

/// Lints every `.rs` file under `root` (both per-file rules and the
/// crate-level `forbid(unsafe_code)` audit). Returned violations include
/// suppressed ones, with [`Violation::suppressed`] set.
pub fn lint_root(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    let files = walk::rust_files(root)?;
    let mut views = Vec::with_capacity(files.len());
    for (rel, path) in files {
        let raw = std::fs::read_to_string(&path)?;
        let view = scan::FileView::new(raw);
        out.extend(rules::check_file(&rel, &view));
        views.push((rel, view));
    }
    out.extend(forbid_unsafe_audit(root, &views)?);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

/// The crate-level half of R4: a crate in which no file uses `unsafe` must
/// say so in its root with `#![forbid(unsafe_code)]`, so the compiler keeps
/// the property without this lint.
fn forbid_unsafe_audit(
    root: &Path,
    views: &[(String, scan::FileView)],
) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (dir, path) in walk::crate_dirs(root)? {
        let prefix = format!("crates/{dir}/");
        let uses_unsafe = views
            .iter()
            .filter(|(rel, _)| rel.starts_with(&prefix))
            .any(|(_, view)| rules::file_uses_unsafe(view));
        if uses_unsafe {
            continue;
        }
        let lib_rel = format!("crates/{dir}/src/lib.rs");
        let main_rel = format!("crates/{dir}/src/main.rs");
        let root_file = views
            .iter()
            .find(|(rel, _)| *rel == lib_rel)
            .or_else(|| views.iter().find(|(rel, _)| *rel == main_rel));
        let Some((rel, view)) = root_file else {
            continue; // no root source — nothing Cargo would build
        };
        if !rules::has_forbid_unsafe(view) {
            out.push(Violation {
                rule: "R4-unsafe-safety",
                file: rel.clone(),
                line: 1,
                message: format!(
                    "crate `{}` has zero unsafe code but its root lacks \
                     `#![forbid(unsafe_code)]`; add the attribute so the compiler keeps it that way",
                    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or(dir)
                ),
                suppressed: None,
            });
        }
    }
    Ok(out)
}
