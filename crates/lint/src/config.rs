//! Repo-specific lint policy: which crates are deterministic, who may read
//! the wall clock, and how suppressions are spelled.
//!
//! The lists are keyed by the crate *directory* under `crates/` (so
//! `matchers` means the `lsm-baselines` package) because the walker
//! attributes files by path, not by parsing manifests.

/// Crates whose scoring/featurizing output must be bitwise reproducible.
/// Rule R1 (no `HashMap`/`HashSet` iteration) applies to their library code.
/// `store` is here because journal replay must reconstruct sessions
/// bitwise: any hash-order dependence in what it writes would break the
/// resume-equivalence guarantee. `serve` is here for the same reason: a
/// resumed daemon session must replay to the same state the live one
/// reached, and the shared encoding cache must evict deterministically.
pub const DETERMINISTIC_CRATE_DIRS: &[&str] =
    &["core", "matchers", "nn", "text", "embedding", "datasets", "store", "serve"];

/// Crates allowed to read the wall clock (R2): the observability layer owns
/// all timing — including the span-scope `Instant` pairs that feed the
/// log₂-bucket latency histograms — the bench harness measures it (the
/// perf-regression gate's repeated report builds live there), and the
/// lint's own sources discuss it.
pub const WALL_CLOCK_CRATE_DIRS: &[&str] = &["obs", "bench", "lint"];

/// Session-timing allowlist (R2): files that may take a raw `Instant` pair
/// because they own the user-facing response-time measurement. The session
/// loop currently routes timing through `lsm_obs::span`, but the latency it
/// reports must keep sharing the exact instant pair with the recorded
/// response times if it ever measures directly. The daemon's session
/// wrapper is allowed for the same reason: its `serve.*` stage timings
/// route through `lsm_obs::timed`.
pub const WALL_CLOCK_ALLOWED_FILES: &[&str] =
    &["crates/core/src/session.rs", "crates/serve/src/session.rs"];

/// Files allowed to touch entropy sources (R3). Every RNG in the workspace
/// is constructed from an explicit seed today, so the list is empty; a
/// future OS-entropy seeding constructor would be registered here.
pub const ENTROPY_ALLOWED_FILES: &[&str] = &[];

/// Crates whose float code sits on a score path (R6): the deterministic
/// set plus `schema` (score matrices live there) and `bench` (metric
/// aggregation must reproduce across runs to be comparable).
pub const FLOAT_SCORE_CRATE_DIRS: &[&str] = &[
    "core",
    "matchers",
    "nn",
    "text",
    "embedding",
    "datasets",
    "store",
    "schema",
    "bench",
    "serve",
];

/// Kernel-path files under rule R10 (unchecked narrowing / wrapping
/// arithmetic): the SIMD microkernels, the int8/f16 quantization layer,
/// and the graph-free fast encoder that dispatches them. These are the
/// files where an index, length, or accumulator silently truncating is a
/// score-corruption bug rather than a style issue.
pub const KERNEL_PATH_FILES: &[&str] =
    &["crates/nn/src/kernels.rs", "crates/nn/src/quant.rs", "crates/nn/src/fast.rs"];

/// Files under rule R12 (allocation inside an instrumented span): the
/// paths the PR 7 alloc-tracker showed hot — the fast-encoder forward
/// loop and the journal append/fsync path — plus the shared pooled-encoding
/// cache, whose lookup sits inside every encoder span the daemon times. A
/// `vec!`/`collect`/`format!` inside one of their span scopes charges a
/// hidden allocation to every single iteration the histogram times.
pub const ALLOC_HOT_FILES: &[&str] = &[
    "crates/nn/src/fast.rs",
    "crates/store/src/journal.rs",
    "crates/store/src/sink.rs",
    "crates/serve/src/cache.rs",
];

/// Crates excluded from R11's name-keyed lock graph and atomics-pairing
/// heuristics because they *implement* synchronization rather than use
/// it: the lsm-check model-checker shim wraps every lock/atomic the
/// workspace takes, so its internals (scheduler token handoff, raw
/// parking_lot mutexes, per-execution state) acquire locks under generic
/// receiver names (`inner`, `raw`) that would alias application locks in
/// the global graph and fabricate cross-crate cycles. Its protocols are
/// checked the stronger way — exhaustive interleaving exploration in
/// `crates/check/tests/` — and runtime lock-order cycles found by that
/// exploration cross-reference R11 in their failure reports.
pub const SYNC_IMPL_CRATE_DIRS: &[&str] = &["check"];

/// Is this root-relative path inside a sync-implementation crate (see
/// [`SYNC_IMPL_CRATE_DIRS`])?
pub fn is_sync_impl(rel_path: &str) -> bool {
    crate_dir(rel_path).is_some_and(|d| SYNC_IMPL_CRATE_DIRS.contains(&d))
}

/// Crate directories whose extern (link) name does not follow the
/// `lsm_<dir>` convention. Everything else maps `crates/<dir>` to
/// `lsm_<dir>` — see [`crate_extern_name`].
const CRATE_EXTERN_EXCEPTIONS: &[(&str, &str)] = &[("matchers", "lsm_baselines"), ("lsm", "lsm")];

/// The identifier under which code in other crates names `crates/<dir>`
/// (`use lsm_obs::span`, `lsm_serve::SessionRegistry`). Used to derive the
/// workspace dependency DAG from the sources themselves: a crate that
/// never mentions another crate's extern name cannot call into it.
pub fn crate_extern_name(dir: &str) -> String {
    CRATE_EXTERN_EXCEPTIONS
        .iter()
        .find(|(d, _)| *d == dir)
        .map(|(_, name)| (*name).to_string())
        .unwrap_or_else(|| format!("lsm_{dir}"))
}

/// Marker prefix of a suppression comment:
/// `// lsm-lint: allow(rule-id, reason)`.
pub const SUPPRESS_MARKER: &str = "lsm-lint: allow(";

/// Identifiers of the twelve rules, used in diagnostics and suppressions.
pub const RULE_IDS: &[&str] = &[
    "R1-hash-iter",
    "R2-wall-clock",
    "R3-entropy",
    "R4-unsafe-safety",
    "R5-panic-policy",
    "R6-float-determinism",
    "R7-concurrency",
    "R8-panic-reachability",
    "R9-taint",
    "R10-cast-discipline",
    "R11-lock-discipline",
    "R12-alloc-in-span",
];

/// One-line rationale per rule, shown by `--list-rules`.
pub const RULE_SUMMARIES: &[(&str, &str)] = &[
    (
        "R1-hash-iter",
        "no HashMap/HashSet iteration in deterministic crates; iterate a BTreeMap or sort first",
    ),
    (
        "R2-wall-clock",
        "no Instant::now/SystemTime::now outside lsm-obs, lsm-bench, and the session allowlist",
    ),
    ("R3-entropy", "no thread_rng/from_entropy/OsRng; every RNG must take an explicit seed"),
    (
        "R4-unsafe-safety",
        "every unsafe block needs a // SAFETY: comment; unsafe-free crates must forbid(unsafe_code)",
    ),
    (
        "R5-panic-policy",
        "no unwrap/expect on io/serde results in library code; propagate or handle the error",
    ),
    (
        "R6-float-determinism",
        "no partial_cmp comparators, parallel float reductions, or undocumented dequantization \
         casts on score paths; use total_cmp, fixed-order block reductions, and scoped allows \
         on sanctioned int8 epilogues",
    ),
    (
        "R7-concurrency",
        "no static mut, no Relaxed loads feeding comparisons, no locks inside #[inline] hot paths",
    ),
    (
        "R8-panic-reachability",
        "no io/serde unwrap/expect/panic! reachable from a pub API of a library crate \
         (call-graph-transitive R5)",
    ),
    (
        "R9-taint",
        "no wall-clock/entropy/env-derived value reaching a deterministic score path through \
         a binding or helper call (dataflow-transitive R2/R3)",
    ),
    (
        "R10-cast-discipline",
        "no unchecked `as` narrowing of index/length/accumulator values and no wrapping \
         arithmetic in kernel/quant code; clamp, mask, or state the invariant in a scoped allow",
    ),
    (
        "R11-lock-discipline",
        "no lock-order cycles across the workspace call graph; Acquire loads must pair with a \
         release-class write; no Relaxed spin-wait conditions",
    ),
    (
        "R12-alloc-in-span",
        "no hidden allocation inside an instrumented span scope on alloc-tracked hot paths; \
         hoist a scratch buffer or move the allocation out of the timed region",
    ),
];

/// The SARIF `defaultConfiguration.level` for a rule. R12 is advisory
/// (an allocation in a span is a perf smell, not a correctness bug); every
/// other rule guards a correctness invariant.
pub fn default_level(rule: &str) -> &'static str {
    if rule.starts_with("R12") {
        "warning"
    } else {
        "error"
    }
}

/// The crate directory (`core`, `matchers`, ...) a root-relative path
/// belongs to, if it lies under `crates/`.
pub fn crate_dir(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Is this root-relative path library code (eligible for R1/R5): under a
/// crate's `src/`, not a binary target?
pub fn is_library_code(rel_path: &str) -> bool {
    let Some(dir) = crate_dir(rel_path) else { return false };
    let Some(rest) = rel_path.strip_prefix("crates/") else { return false };
    let Some(in_crate) = rest.strip_prefix(dir).and_then(|r| r.strip_prefix('/')) else {
        return false;
    };
    in_crate.starts_with("src/") && !in_crate.starts_with("src/bin/") && in_crate != "src/main.rs"
}
