//! The end-to-end interactive session (Section V-C).
//!
//! Each iteration:
//!
//! 1. retrain the model on the current labels and predict (timed — this is
//!    the Fig. 9 response time),
//! 2. the user reviews the top-k suggestions of every unmatched attribute
//!    and marks correct ones (or rejects all k),
//! 3. if the schema is fully matched, stop,
//! 4. otherwise the selection strategy picks `N` attributes (N = 1 in the
//!    paper) and the user provides their correct mappings — these are the
//!    *labels* whose count is the human labeling cost.

use crate::active::{select_attributes, SelectionStrategy};
use crate::labels::LabelStore;
use crate::matcher::LsmMatcher;
use crate::metrics::{CurvePoint, SessionOutcome};
use crate::oracle::Oracle;
use lsm_schema::{Schema, ScoreMatrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Anything that can play the model's role in a session: LSM itself, or a
/// baseline adapter.
pub trait SuggestionEngine {
    /// Incorporates the current labels (retraining where the method
    /// supports it).
    fn retrain(&mut self, labels: &LabelStore);

    /// Predicts the current score matrix.
    fn predict(&self, labels: &LabelStore) -> ScoreMatrix;

    /// The source schema being matched.
    fn source(&self) -> &Schema;
}

impl SuggestionEngine for LsmMatcher {
    fn retrain(&mut self, labels: &LabelStore) {
        LsmMatcher::retrain(self, labels);
    }

    fn predict(&self, labels: &LabelStore) -> ScoreMatrix {
        LsmMatcher::predict(self, labels)
    }

    fn source(&self) -> &Schema {
        LsmMatcher::source(self)
    }
}

/// A baseline in interactive mode: a fixed score matrix plus label pinning
/// (confirmed rows saturate). This is the paper's interactive adaptation of
/// COMA/CUPID/SM/SF — feedback fixes attributes but generalizes to nothing
/// else.
///
/// Rejections deliberately do **not** change the ranking: a non-learning
/// matcher keeps suggesting the same (wrong) candidates, which is exactly
/// why the paper's baseline curves collapse onto the manual-labeling
/// diagonal once their initial suggestion quality is exhausted. (Dropping
/// rejected candidates from the list would let a static ranking walk the
/// entire target list three suggestions at a time and reach 100 % with
/// almost no labels — an artifact, not a capability of these systems.)
pub struct PinnedBaselineEngine {
    source: Schema,
    base: ScoreMatrix,
}

impl PinnedBaselineEngine {
    /// Wraps a pre-computed (tuned) baseline score matrix.
    pub fn new(source: Schema, base: ScoreMatrix) -> Self {
        PinnedBaselineEngine { source, base }
    }
}

impl SuggestionEngine for PinnedBaselineEngine {
    fn retrain(&mut self, _labels: &LabelStore) {}

    fn predict(&self, labels: &LabelStore) -> ScoreMatrix {
        let mut m = self.base.clone();
        for (s, t) in labels.positives() {
            for v in m.row_mut(s) {
                *v = f64::MIN;
            }
            m.set(s, t, f64::MAX);
        }
        m
    }

    fn source(&self) -> &Schema {
        &self.source
    }
}

/// Session parameters.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Suggestions shown per attribute (k = 3 in the paper).
    pub top_k: usize,
    /// Attributes labeled per iteration (N = 1 in the paper).
    pub labels_per_iter: usize,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// Safety bound on iterations.
    pub max_iterations: usize,
    /// Seed for the random strategy.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            top_k: 3,
            labels_per_iter: 1,
            strategy: SelectionStrategy::LeastConfidentAnchor,
            max_iterations: 10_000,
            seed: 0x5e55,
        }
    }
}

/// Runs a full interactive session until the source schema is fully
/// matched (or the iteration bound is hit). Returns the learning curve and
/// cost metrics.
pub fn run_session<E: SuggestionEngine, O: Oracle>(
    engine: &mut E,
    oracle: &mut O,
    config: SessionConfig,
) -> SessionOutcome {
    let source = engine.source().clone();
    let total = source.attr_count();
    let anchors = source.anchor_set();
    let mut labels = LabelStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut outcome = SessionOutcome { total_attributes: total, ..Default::default() };

    for _ in 0..config.max_iterations {
        let _iteration = lsm_obs::span("session.iteration");
        // ---- Step 1+2: retrain and predict (the response time). One
        // measurement feeds both the reported response time and the
        // "session.respond" stage/trace, so they cannot drift. ----
        let (scores, respond_secs) = lsm_obs::timed("session.respond", || {
            engine.retrain(&labels);
            engine.predict(&labels)
        });
        outcome.response_times.push(respond_secs);

        // ---- Step 3: reviewing ----
        for s in source.attr_ids() {
            if labels.is_matched(s) {
                continue;
            }
            outcome.reviews_done += 1;
            let top = scores.top_k(s, config.top_k);
            match top.iter().find(|&&(t, _)| oracle.confirms(s, t)) {
                Some(&(t, _)) => labels.confirm(s, t),
                None => {
                    for &(t, _) in &top {
                        labels.reject(s, t);
                    }
                }
            }
        }

        // ---- record the curve ----
        let matched = labels.matched_count();
        let matched_correct =
            labels.positives().filter(|&(s, t)| oracle.truth().is_correct(s, t)).count();
        outcome.curve.push(CurvePoint {
            labels_provided: outcome.labels_used,
            matched,
            matched_correct,
            total,
        });
        if matched == total {
            break;
        }

        // ---- Step 4: label the selected attributes ----
        let picked = select_attributes(
            config.strategy,
            &source,
            &scores,
            &labels,
            &anchors,
            config.labels_per_iter,
            &mut rng,
        );
        if picked.is_empty() {
            break;
        }
        for s in picked {
            let t = oracle.label(s);
            labels.confirm(s, t);
            outcome.labels_used += 1;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::PerfectOracle;
    use lsm_schema::{AttrId, DataType, GroundTruth};

    fn source() -> Schema {
        Schema::builder("s")
            .entity("A")
            .attr("a_id", DataType::Integer)
            .attr("x", DataType::Text)
            .attr("y", DataType::Text)
            .attr("z", DataType::Text)
            .pk("a_id")
            .build()
            .unwrap()
    }

    fn truth() -> GroundTruth {
        GroundTruth::from_pairs([
            (AttrId(0), AttrId(0)),
            (AttrId(1), AttrId(1)),
            (AttrId(2), AttrId(2)),
            (AttrId(3), AttrId(3)),
        ])
    }

    /// A baseline matrix whose top-3 contains the truth for rows 0 and 1
    /// only.
    fn base_scores() -> ScoreMatrix {
        let mut m = ScoreMatrix::zeros(4, 8);
        m.set(AttrId(0), AttrId(0), 0.9);
        m.set(AttrId(1), AttrId(1), 0.8);
        // Rows 2 and 3 rank wrong targets on top.
        for t in 4..8u32 {
            m.set(AttrId(2), AttrId(t), 0.5);
            m.set(AttrId(3), AttrId(t), 0.5);
        }
        m
    }

    #[test]
    fn session_terminates_fully_matched() {
        let mut engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut oracle = PerfectOracle::new(truth());
        let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
        let last = outcome.curve.last().unwrap();
        assert_eq!(last.matched, 4);
        assert_eq!(last.matched_correct, 4);
        // Rows 0 and 1 were matched by reviewing; 2 and 3 needed labels.
        assert_eq!(outcome.labels_used, 2);
    }

    #[test]
    fn reviewing_cost_is_counted() {
        let mut engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut oracle = PerfectOracle::new(truth());
        let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
        // Iteration 1 reviews 4 attrs; later iterations only the unmatched.
        assert!(outcome.reviews_done >= 4);
        assert_eq!(outcome.total_attributes, 4);
        assert!(!outcome.response_times.is_empty());
    }

    #[test]
    fn curve_is_monotone_in_matches() {
        let mut engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut oracle = PerfectOracle::new(truth());
        let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
        for w in outcome.curve.windows(2) {
            assert!(w[1].matched >= w[0].matched);
            assert!(w[1].labels_provided >= w[0].labels_provided);
        }
    }

    #[test]
    fn max_iterations_bounds_the_loop() {
        let mut engine = PinnedBaselineEngine::new(source(), ScoreMatrix::zeros(4, 8));
        let mut oracle = PerfectOracle::new(truth());
        let config = SessionConfig { max_iterations: 2, ..Default::default() };
        let outcome = run_session(&mut engine, &mut oracle, config);
        assert_eq!(outcome.curve.len(), 2);
        assert!(outcome.labels_used <= 2);
    }

    #[test]
    fn pinned_engine_respects_positive_labels_only() {
        let engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut labels = LabelStore::new();
        labels.confirm(AttrId(2), AttrId(2));
        labels.reject(AttrId(3), AttrId(4));
        let m = engine.predict(&labels);
        assert_eq!(m.best(AttrId(2)).unwrap().0, AttrId(2));
        // Rejections do not rotate new candidates in: the static ranking of
        // row 3 is unchanged.
        assert_eq!(m.row(AttrId(3)), engine.base.row(AttrId(3)));
    }

    /// The degenerate walk-the-list behaviour must not exist: with an
    /// all-wrong static ranking, a session's matches can only come from
    /// direct labels (the manual-labeling diagonal).
    #[test]
    fn static_baseline_collapses_to_manual_labeling() {
        // Truth targets (0..4) score zero; distractors (4..8) score high.
        let mut m = ScoreMatrix::zeros(4, 8);
        for s in 0..4u32 {
            for t in 4..8u32 {
                m.set(AttrId(s), AttrId(t), 0.5 + f64::from(t) / 100.0);
            }
        }
        let mut engine = PinnedBaselineEngine::new(source(), m);
        let mut oracle = PerfectOracle::new(truth());
        let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
        // Every attribute needed a direct label.
        assert_eq!(outcome.labels_used, 4);
        assert_eq!(outcome.curve.last().unwrap().matched_correct, 4);
    }
}
