//! The end-to-end interactive session (Section V-C).
//!
//! Each iteration:
//!
//! 1. retrain the model on the current labels and predict (timed — this is
//!    the Fig. 9 response time),
//! 2. the user reviews the top-k suggestions of every unmatched attribute
//!    and marks correct ones (or rejects all k),
//! 3. if the schema is fully matched, stop,
//! 4. otherwise the selection strategy picks `N` attributes (N = 1 in the
//!    paper) and the user provides their correct mappings — these are the
//!    *labels* whose count is the human labeling cost.
//!
//! ## Event sourcing
//!
//! The loop is *event-sourced*: every state change is expressed as a
//! [`SessionEvent`] and applied through [`SessionState::apply`] — the only
//! mutation path. A [`SessionSink`] observes the identical event stream,
//! which is what makes crash-safe persistence (the `lsm-store` journal)
//! correct by construction: replaying the journal calls the same `apply`
//! the live loop called, so a resumed session is bitwise-identical to an
//! uninterrupted one.
//!
//! Determinism contract for resume: engines must be deterministic functions
//! of the label state (true for [`LsmMatcher`] and
//! [`PinnedBaselineEngine`]), oracles deterministic per attribute, and the
//! selection RNG is re-seeded per iteration from `config.seed` and the
//! iteration index — no RNG state needs to survive a crash.

use crate::active::{select_attributes, SelectionStrategy};
use crate::labels::LabelStore;
use crate::matcher::LsmMatcher;
use crate::metrics::{CurvePoint, SessionOutcome};
use crate::oracle::Oracle;
use lsm_schema::{AttrId, Schema, ScoreMatrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Anything that can play the model's role in a session: LSM itself, or a
/// baseline adapter.
pub trait SuggestionEngine {
    /// Incorporates the current labels (retraining where the method
    /// supports it).
    fn retrain(&mut self, labels: &LabelStore);

    /// Predicts the current score matrix.
    fn predict(&self, labels: &LabelStore) -> ScoreMatrix;

    /// The source schema being matched.
    fn source(&self) -> &Schema;
}

impl SuggestionEngine for LsmMatcher {
    fn retrain(&mut self, labels: &LabelStore) {
        LsmMatcher::retrain(self, labels);
    }

    fn predict(&self, labels: &LabelStore) -> ScoreMatrix {
        LsmMatcher::predict(self, labels)
    }

    fn source(&self) -> &Schema {
        LsmMatcher::source(self)
    }
}

/// A baseline in interactive mode: a fixed score matrix plus label pinning
/// (confirmed rows saturate). This is the paper's interactive adaptation of
/// COMA/CUPID/SM/SF — feedback fixes attributes but generalizes to nothing
/// else.
///
/// Rejections deliberately do **not** change the ranking: a non-learning
/// matcher keeps suggesting the same (wrong) candidates, which is exactly
/// why the paper's baseline curves collapse onto the manual-labeling
/// diagonal once their initial suggestion quality is exhausted. (Dropping
/// rejected candidates from the list would let a static ranking walk the
/// entire target list three suggestions at a time and reach 100 % with
/// almost no labels — an artifact, not a capability of these systems.)
pub struct PinnedBaselineEngine {
    source: Schema,
    base: ScoreMatrix,
}

impl PinnedBaselineEngine {
    /// Wraps a pre-computed (tuned) baseline score matrix.
    pub fn new(source: Schema, base: ScoreMatrix) -> Self {
        PinnedBaselineEngine { source, base }
    }
}

impl SuggestionEngine for PinnedBaselineEngine {
    fn retrain(&mut self, _labels: &LabelStore) {}

    fn predict(&self, labels: &LabelStore) -> ScoreMatrix {
        let mut m = self.base.clone();
        for (s, t) in labels.positives() {
            // Finite saturation sentinels: f64::MIN/MAX would overflow
            // exp-based consumers (softmax_confidence) to ±inf/NaN.
            for v in m.row_mut(s) {
                *v = ScoreMatrix::PINNED_MIN;
            }
            m.set(s, t, ScoreMatrix::PINNED_MAX);
        }
        m
    }

    fn source(&self) -> &Schema {
        &self.source
    }
}

/// Session parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Suggestions shown per attribute (k = 3 in the paper).
    pub top_k: usize,
    /// Attributes labeled per iteration (N = 1 in the paper).
    pub labels_per_iter: usize,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// Safety bound on iterations.
    pub max_iterations: usize,
    /// Seed for the random strategy.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            top_k: 3,
            labels_per_iter: 1,
            strategy: SelectionStrategy::LeastConfidentAnchor,
            max_iterations: 10_000,
            seed: 0x5e55,
        }
    }
}

/// What the user did with one attribute's top-k suggestion list (Step 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReviewOutcome {
    /// The user confirmed this target from the list.
    Confirmed(AttrId),
    /// The user rejected every shown target (the listed ones).
    RejectedAll(Vec<AttrId>),
}

/// One state transition of an interactive session. The live loop and a
/// journal replay both go through [`SessionState::apply`], so the event
/// stream *is* the session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// Session begins: schema size and the full configuration.
    SessionStart {
        /// Source attributes in the task.
        total_attributes: usize,
        /// The session parameters (persisted so `--resume` can rebuild an
        /// identical session).
        config: SessionConfig,
    },
    /// Step 1: the engine retrained and predicted in `secs` (Fig. 9).
    Respond {
        /// 0-based iteration index.
        iteration: usize,
        /// Response time in seconds.
        secs: f64,
    },
    /// Step 2: the user reviewed one attribute's suggestions.
    Review {
        /// 0-based iteration index.
        iteration: usize,
        /// The reviewed source attribute.
        source: AttrId,
        /// Confirmation or rejection.
        outcome: ReviewOutcome,
    },
    /// The learning curve gained a point.
    Curve {
        /// 0-based iteration index (or the final count, for the closing
        /// point pushed after the loop).
        iteration: usize,
        /// The recorded point.
        point: CurvePoint,
    },
    /// Step 4: the user directly labeled an attribute picked by `strategy`.
    DirectLabel {
        /// 0-based iteration index.
        iteration: usize,
        /// The labeled source attribute.
        source: AttrId,
        /// Its correct target.
        target: AttrId,
        /// The strategy that picked it (metadata for audit).
        strategy: SelectionStrategy,
    },
    /// The selection strategy returned nothing (e.g. `labels_per_iter` is
    /// 0): the session cannot progress further.
    Stalled {
        /// 0-based iteration index.
        iteration: usize,
    },
    /// The iteration committed. This is the journal's durability boundary:
    /// recovery discards partial iterations past the last `IterationEnd`.
    IterationEnd {
        /// 0-based iteration index.
        iteration: usize,
    },
}

/// Error surfaced by a [`SessionSink`] (e.g. a journal write failure). The
/// session aborts rather than running un-persisted past the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkError(pub String);

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session sink: {}", self.0)
    }
}

impl std::error::Error for SinkError {}

/// Observer of the session's event stream — the hook `lsm-store` plugs its
/// write-ahead journal into. Core stays dependency-free: it only knows this
/// trait.
pub trait SessionSink {
    /// Called once per event, *after* the event was applied to the live
    /// state. An error aborts the session.
    fn on_event(&mut self, event: &SessionEvent) -> Result<(), SinkError>;

    /// Maps a measured response time before it is recorded and journaled.
    /// The default is the identity. Test harnesses override this with a
    /// deterministic function of `iteration` so an interrupted-and-resumed
    /// session reproduces the uninterrupted run *bitwise*, response times
    /// included.
    fn map_response_time(&mut self, _iteration: usize, measured: f64) -> f64 {
        measured
    }
}

/// The no-op sink used by [`run_session`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl SessionSink for NullSink {
    fn on_event(&mut self, _event: &SessionEvent) -> Result<(), SinkError> {
        Ok(())
    }
}

/// The replayable state of a session: exactly what a journal reconstructs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionState {
    /// The label store the engine retrains on.
    pub labels: LabelStore,
    /// The outcome accumulated so far (curve, costs, response times).
    pub outcome: SessionOutcome,
    /// Completed (committed) iterations.
    pub iterations_done: usize,
    /// Whether `SessionStart` was applied.
    pub started: bool,
    /// Whether the session stalled (empty selection).
    pub stalled: bool,
}

impl SessionState {
    /// Fresh, unstarted state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one event. This is the **only** mutation path of a session —
    /// the live loop and journal replay are the same code.
    pub fn apply(&mut self, event: &SessionEvent) {
        match event {
            SessionEvent::SessionStart { total_attributes, .. } => {
                self.started = true;
                self.outcome.total_attributes = *total_attributes;
            }
            SessionEvent::Respond { secs, .. } => self.outcome.response_times.push(*secs),
            SessionEvent::Review { source, outcome, .. } => {
                self.outcome.reviews_done += 1;
                match outcome {
                    ReviewOutcome::Confirmed(t) => self.labels.confirm(*source, *t),
                    ReviewOutcome::RejectedAll(ts) => {
                        for t in ts {
                            self.labels.reject(*source, *t);
                        }
                    }
                }
            }
            SessionEvent::Curve { point, .. } => self.outcome.curve.push(*point),
            SessionEvent::DirectLabel { source, target, .. } => {
                self.labels.confirm(*source, *target);
                self.outcome.labels_used += 1;
            }
            SessionEvent::Stalled { .. } => self.stalled = true,
            SessionEvent::IterationEnd { .. } => self.iterations_done += 1,
        }
    }

    /// Whether the last curve point shows a fully matched schema.
    pub fn is_complete(&self) -> bool {
        self.outcome.curve.last().is_some_and(|p| p.matched == p.total)
    }
}

/// The per-iteration selection RNG. Re-seeding from `(seed, iteration)`
/// instead of streaming one RNG across iterations makes every iteration's
/// draws independent of history — a resumed iteration N sees exactly the
/// RNG an uninterrupted run saw, with no RNG state to persist. Iteration 0
/// uses `seed` itself, preserving pre-existing session outcomes. Public so
/// out-of-process drivers (the serve daemon's round loop) reproduce the
/// exact anchor selection an in-process driven session would make.
pub fn iteration_rng(seed: u64, iteration: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ (iteration as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn curve_point<O: Oracle>(state: &SessionState, oracle: &O, total: usize) -> CurvePoint {
    let matched = state.labels.matched_count();
    let matched_correct =
        state.labels.positives().filter(|&(s, t)| oracle.truth().is_correct(s, t)).count();
    CurvePoint { labels_provided: state.outcome.labels_used, matched, matched_correct, total }
}

fn emit<S: SessionSink>(
    state: &mut SessionState,
    sink: &mut S,
    event: SessionEvent,
) -> Result<(), SinkError> {
    state.apply(&event);
    sink.on_event(&event)
}

/// The shared driver behind [`run_session`], [`run_session_with_sink`],
/// and [`resume_session`]: continues `state` until completion, stall, or
/// the iteration bound.
fn drive<E: SuggestionEngine, O: Oracle, S: SessionSink>(
    engine: &mut E,
    oracle: &mut O,
    config: SessionConfig,
    mut state: SessionState,
    sink: &mut S,
) -> Result<SessionOutcome, SinkError> {
    let source = engine.source().clone();
    let total = source.attr_count();
    let anchors = source.anchor_set();

    if !state.started {
        emit(&mut state, sink, SessionEvent::SessionStart { total_attributes: total, config })?;
    }

    while state.iterations_done < config.max_iterations && !state.stalled && !state.is_complete() {
        let it = state.iterations_done;
        let _iteration = lsm_obs::span("session.iteration");
        // ---- Step 1+2: retrain and predict (the response time). One
        // measurement feeds both the reported response time and the
        // "session.respond" stage/trace, so they cannot drift. ----
        let (scores, measured) = lsm_obs::timed("session.respond", || {
            engine.retrain(&state.labels);
            engine.predict(&state.labels)
        });
        let secs = sink.map_response_time(it, measured);
        emit(&mut state, sink, SessionEvent::Respond { iteration: it, secs })?;

        // ---- Step 3: reviewing ----
        for s in source.attr_ids() {
            if state.labels.is_matched(s) {
                continue;
            }
            let top = scores.top_k(s, config.top_k);
            let outcome = match top.iter().find(|&&(t, _)| oracle.confirms(s, t)) {
                Some(&(t, _)) => ReviewOutcome::Confirmed(t),
                None => ReviewOutcome::RejectedAll(top.iter().map(|&(t, _)| t).collect()),
            };
            emit(&mut state, sink, SessionEvent::Review { iteration: it, source: s, outcome })?;
        }

        // ---- record the curve ----
        let point = curve_point(&state, oracle, total);
        emit(&mut state, sink, SessionEvent::Curve { iteration: it, point })?;
        if point.matched == total {
            emit(&mut state, sink, SessionEvent::IterationEnd { iteration: it })?;
            break;
        }

        // ---- Step 4: label the selected attributes ----
        let mut rng = iteration_rng(config.seed, it);
        let picked = select_attributes(
            config.strategy,
            &source,
            &scores,
            &state.labels,
            &anchors,
            config.labels_per_iter,
            &mut rng,
        );
        if picked.is_empty() {
            emit(&mut state, sink, SessionEvent::Stalled { iteration: it })?;
            emit(&mut state, sink, SessionEvent::IterationEnd { iteration: it })?;
            break;
        }
        for s in picked {
            let t = oracle.label(s);
            emit(
                &mut state,
                sink,
                SessionEvent::DirectLabel {
                    iteration: it,
                    source: s,
                    target: t,
                    strategy: config.strategy,
                },
            )?;
        }
        emit(&mut state, sink, SessionEvent::IterationEnd { iteration: it })?;
    }

    // Closing curve point: labels granted in Step 4 of the final iteration
    // before the max_iterations cutoff would otherwise be counted in
    // labels_used but never reflected on the curve.
    let needs_close =
        state.outcome.curve.last().is_some_and(|p| p.labels_provided != state.outcome.labels_used);
    if needs_close {
        let point = curve_point(&state, oracle, total);
        let it = state.iterations_done;
        emit(&mut state, sink, SessionEvent::Curve { iteration: it, point })?;
    }
    Ok(state.outcome)
}

/// Runs a full interactive session until the source schema is fully
/// matched (or the iteration bound is hit). Returns the learning curve and
/// cost metrics.
pub fn run_session<E: SuggestionEngine, O: Oracle>(
    engine: &mut E,
    oracle: &mut O,
    config: SessionConfig,
) -> SessionOutcome {
    let mut sink = NullSink;
    run_session_with_sink(engine, oracle, config, &mut sink).expect("NullSink is infallible")
}

/// [`run_session`] with an event sink (e.g. the `lsm-store` journal). A
/// sink error aborts the session — it never continues un-persisted.
pub fn run_session_with_sink<E: SuggestionEngine, O: Oracle, S: SessionSink>(
    engine: &mut E,
    oracle: &mut O,
    config: SessionConfig,
    sink: &mut S,
) -> Result<SessionOutcome, SinkError> {
    drive(engine, oracle, config, SessionState::new(), sink)
}

/// Continues a session from a recovered [`SessionState`] (journal replay
/// and/or checkpoint). With deterministic engines and oracles the final
/// [`SessionOutcome`] is identical to the uninterrupted run's.
pub fn resume_session<E: SuggestionEngine, O: Oracle, S: SessionSink>(
    engine: &mut E,
    oracle: &mut O,
    config: SessionConfig,
    state: SessionState,
    sink: &mut S,
) -> Result<SessionOutcome, SinkError> {
    drive(engine, oracle, config, state, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::PerfectOracle;
    use lsm_schema::{AttrId, DataType, GroundTruth};

    fn source() -> Schema {
        Schema::builder("s")
            .entity("A")
            .attr("a_id", DataType::Integer)
            .attr("x", DataType::Text)
            .attr("y", DataType::Text)
            .attr("z", DataType::Text)
            .pk("a_id")
            .build()
            .unwrap()
    }

    fn truth() -> GroundTruth {
        GroundTruth::from_pairs([
            (AttrId(0), AttrId(0)),
            (AttrId(1), AttrId(1)),
            (AttrId(2), AttrId(2)),
            (AttrId(3), AttrId(3)),
        ])
    }

    /// A baseline matrix whose top-3 contains the truth for rows 0 and 1
    /// only.
    fn base_scores() -> ScoreMatrix {
        let mut m = ScoreMatrix::zeros(4, 8);
        m.set(AttrId(0), AttrId(0), 0.9);
        m.set(AttrId(1), AttrId(1), 0.8);
        // Rows 2 and 3 rank wrong targets on top.
        for t in 4..8u32 {
            m.set(AttrId(2), AttrId(t), 0.5);
            m.set(AttrId(3), AttrId(t), 0.5);
        }
        m
    }

    /// Truth targets (0..4) score zero; distractors (4..8) score high — an
    /// all-wrong static ranking.
    fn distractor_scores() -> ScoreMatrix {
        let mut m = ScoreMatrix::zeros(4, 8);
        for s in 0..4u32 {
            for t in 4..8u32 {
                m.set(AttrId(s), AttrId(t), 0.5 + f64::from(t) / 100.0);
            }
        }
        m
    }

    /// The invariant the closing curve point guarantees: every direct label
    /// is reflected on the curve.
    fn assert_curve_closed(outcome: &SessionOutcome) {
        assert_eq!(
            outcome.curve.last().map(|p| p.labels_provided),
            Some(outcome.labels_used),
            "curve tail must account for all labels: {outcome:?}"
        );
    }

    #[test]
    fn session_terminates_fully_matched() {
        let mut engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut oracle = PerfectOracle::new(truth());
        let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
        let last = outcome.curve.last().unwrap();
        assert_eq!(last.matched, 4);
        assert_eq!(last.matched_correct, 4);
        // Rows 0 and 1 were matched by reviewing; 2 and 3 needed labels.
        assert_eq!(outcome.labels_used, 2);
        assert_curve_closed(&outcome);
    }

    #[test]
    fn reviewing_cost_is_counted() {
        let mut engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut oracle = PerfectOracle::new(truth());
        let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
        // Iteration 1 reviews 4 attrs; later iterations only the unmatched.
        assert!(outcome.reviews_done >= 4);
        assert_eq!(outcome.total_attributes, 4);
        assert!(!outcome.response_times.is_empty());
        assert_curve_closed(&outcome);
    }

    #[test]
    fn curve_is_monotone_in_matches() {
        let mut engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut oracle = PerfectOracle::new(truth());
        let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
        for w in outcome.curve.windows(2) {
            assert!(w[1].matched >= w[0].matched);
            assert!(w[1].labels_provided >= w[0].labels_provided);
        }
        assert_curve_closed(&outcome);
    }

    #[test]
    fn max_iterations_bounds_the_loop() {
        let mut engine = PinnedBaselineEngine::new(source(), ScoreMatrix::zeros(4, 8));
        let mut oracle = PerfectOracle::new(truth());
        let config = SessionConfig { max_iterations: 2, ..Default::default() };
        let outcome = run_session(&mut engine, &mut oracle, config);
        assert_eq!(outcome.curve.len(), 2);
        assert!(outcome.labels_used <= 2);
        assert_curve_closed(&outcome);
    }

    /// The session-curve tail undercount: with an all-wrong ranking and a
    /// 2-iteration cutoff, the direct label granted in Step 4 of the final
    /// iteration must still reach the curve via the closing point.
    #[test]
    fn closing_curve_point_covers_final_iteration_labels() {
        let mut engine = PinnedBaselineEngine::new(source(), distractor_scores());
        let mut oracle = PerfectOracle::new(truth());
        let config = SessionConfig { max_iterations: 2, ..Default::default() };
        let outcome = run_session(&mut engine, &mut oracle, config);
        assert_eq!(outcome.labels_used, 2);
        // Two in-loop points plus the closing point.
        assert_eq!(outcome.curve.len(), 3);
        let last = outcome.curve.last().unwrap();
        assert_eq!(last.labels_provided, 2);
        assert_eq!(last.matched, 2);
        assert_eq!(last.matched_correct, 2);
        assert_curve_closed(&outcome);
    }

    #[test]
    fn pinned_engine_respects_positive_labels_only() {
        let engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut labels = LabelStore::new();
        labels.confirm(AttrId(2), AttrId(2));
        labels.reject(AttrId(3), AttrId(4));
        let m = engine.predict(&labels);
        assert_eq!(m.best(AttrId(2)).unwrap().0, AttrId(2));
        // Rejections do not rotate new candidates in: the static ranking of
        // row 3 is unchanged.
        assert_eq!(m.row(AttrId(3)), engine.base.row(AttrId(3)));
    }

    /// Regression for the saturation sentinels: a pinned row must keep a
    /// finite softmax confidence (f64::MIN/MAX used to overflow `exp`).
    #[test]
    fn pinned_engine_confidence_is_finite() {
        let engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut labels = LabelStore::new();
        labels.confirm(AttrId(1), AttrId(1));
        let m = engine.predict(&labels);
        let c = m.softmax_confidence(AttrId(1));
        assert!(c.is_finite(), "pinned row confidence must be finite, got {c}");
        assert!(c > 0.99, "a settled row is maximally confident, got {c}");
    }

    /// The degenerate walk-the-list behaviour must not exist: with an
    /// all-wrong static ranking, a session's matches can only come from
    /// direct labels (the manual-labeling diagonal).
    #[test]
    fn static_baseline_collapses_to_manual_labeling() {
        let mut engine = PinnedBaselineEngine::new(source(), distractor_scores());
        let mut oracle = PerfectOracle::new(truth());
        let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
        // Every attribute needed a direct label.
        assert_eq!(outcome.labels_used, 4);
        assert_eq!(outcome.curve.last().unwrap().matched_correct, 4);
        assert_curve_closed(&outcome);
    }

    // ---- event-sourcing and resume ------------------------------------

    /// Collects every event; maps response times to a deterministic
    /// function of the iteration so outcomes are bitwise-reproducible.
    #[derive(Default)]
    struct RecordingSink {
        events: Vec<SessionEvent>,
    }

    impl SessionSink for RecordingSink {
        fn on_event(&mut self, event: &SessionEvent) -> Result<(), SinkError> {
            self.events.push(event.clone());
            Ok(())
        }

        fn map_response_time(&mut self, iteration: usize, _measured: f64) -> f64 {
            det_time(iteration)
        }
    }

    /// Exact binary fraction — addition-free of rounding surprises.
    fn det_time(iteration: usize) -> f64 {
        (iteration as f64 + 1.0) * 0.0625
    }

    fn run_recorded(config: SessionConfig) -> (SessionOutcome, Vec<SessionEvent>) {
        let mut engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut oracle = PerfectOracle::new(truth());
        let mut sink = RecordingSink::default();
        let outcome = run_session_with_sink(&mut engine, &mut oracle, config, &mut sink).unwrap();
        (outcome, sink.events)
    }

    #[test]
    fn replaying_all_events_reconstructs_the_outcome() {
        let (outcome, events) = run_recorded(SessionConfig::default());
        let mut replayed = SessionState::new();
        for e in &events {
            replayed.apply(e);
        }
        assert_eq!(replayed.outcome, outcome);
        assert!(replayed.is_complete());
        // The replayed label store matches what the engine was trained on.
        assert_eq!(replayed.labels.matched_count(), 4);
    }

    /// Replay any prefix ending at an iteration boundary, then resume: the
    /// final outcome must be bitwise-identical (f64 `==` on every response
    /// time) to the uninterrupted run.
    #[test]
    fn resume_from_any_iteration_boundary_is_bitwise_identical() {
        let config = SessionConfig::default();
        let (reference, events) = run_recorded(config);
        let boundaries: Vec<usize> =
            std::iter::once(1) // after SessionStart
                .chain(events.iter().enumerate().filter_map(|(i, e)| {
                    matches!(e, SessionEvent::IterationEnd { .. }).then_some(i + 1)
                }))
                .collect();
        assert!(boundaries.len() >= 3, "expected a multi-iteration session");
        for &cut in &boundaries {
            let mut state = SessionState::new();
            for e in &events[..cut] {
                state.apply(e);
            }
            let mut engine = PinnedBaselineEngine::new(source(), base_scores());
            let mut oracle = PerfectOracle::new(truth());
            let mut sink = RecordingSink::default();
            let resumed =
                resume_session(&mut engine, &mut oracle, config, state, &mut sink).unwrap();
            assert_eq!(resumed, reference, "prefix of {cut} events diverged");
            for (a, b) in resumed.response_times.iter().zip(&reference.response_times) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn resuming_a_complete_session_is_a_no_op() {
        let config = SessionConfig::default();
        let (reference, events) = run_recorded(config);
        let mut state = SessionState::new();
        for e in &events {
            state.apply(e);
        }
        let mut engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut oracle = PerfectOracle::new(truth());
        let mut sink = RecordingSink::default();
        let resumed = resume_session(&mut engine, &mut oracle, config, state, &mut sink).unwrap();
        assert_eq!(resumed, reference);
        assert!(sink.events.is_empty(), "no new events on a finished session");
    }

    #[test]
    fn zero_labels_per_iter_stalls_cleanly() {
        let mut engine = PinnedBaselineEngine::new(source(), distractor_scores());
        let mut oracle = PerfectOracle::new(truth());
        let config = SessionConfig { labels_per_iter: 0, ..Default::default() };
        let mut sink = RecordingSink::default();
        let outcome = run_session_with_sink(&mut engine, &mut oracle, config, &mut sink).unwrap();
        assert_eq!(outcome.labels_used, 0);
        assert_eq!(outcome.response_times.len(), 1, "stalls after one iteration");
        assert!(sink.events.iter().any(|e| matches!(e, SessionEvent::Stalled { .. })));
        // The stream still ends on the durability boundary.
        assert!(matches!(sink.events.last(), Some(SessionEvent::IterationEnd { .. })));
        assert_curve_closed(&outcome);
    }

    /// A failing sink aborts the session instead of running un-persisted.
    #[test]
    fn sink_error_aborts_the_session() {
        struct FailingSink(usize);
        impl SessionSink for FailingSink {
            fn on_event(&mut self, _event: &SessionEvent) -> Result<(), SinkError> {
                if self.0 == 0 {
                    return Err(SinkError("disk full".into()));
                }
                self.0 -= 1;
                Ok(())
            }
        }
        let mut engine = PinnedBaselineEngine::new(source(), base_scores());
        let mut oracle = PerfectOracle::new(truth());
        let mut sink = FailingSink(3);
        let err =
            run_session_with_sink(&mut engine, &mut oracle, SessionConfig::default(), &mut sink)
                .unwrap_err();
        assert!(err.to_string().contains("disk full"), "{err}");
    }

    /// The random strategy draws from a per-iteration RNG, so it must also
    /// resume bitwise-identically.
    #[test]
    fn random_strategy_resume_is_bitwise_identical() {
        let config =
            SessionConfig { strategy: SelectionStrategy::Random, seed: 17, ..Default::default() };
        let run = |state: SessionState, sink: &mut RecordingSink| {
            let mut engine = PinnedBaselineEngine::new(source(), distractor_scores());
            let mut oracle = PerfectOracle::new(truth());
            resume_session(&mut engine, &mut oracle, config, state, sink).unwrap()
        };
        let mut full_sink = RecordingSink::default();
        let reference = run(SessionState::new(), &mut full_sink);
        // Cut after the first IterationEnd.
        let cut = full_sink
            .events
            .iter()
            .position(|e| matches!(e, SessionEvent::IterationEnd { .. }))
            .unwrap()
            + 1;
        let mut state = SessionState::new();
        for e in &full_sink.events[..cut] {
            state.apply(e);
        }
        let resumed = run(state, &mut RecordingSink::default());
        assert_eq!(resumed, reference);
    }
}
