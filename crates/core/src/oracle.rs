//! Simulated users (oracles) for the end-to-end experiments.
//!
//! The evaluation "simulates the users' matching workflow": a perfect
//! oracle answers with the ground truth; the noisy oracle of Section V-F
//! corrupts an answer with probability `n` to "the attribute in ISS with
//! the maximum word embedding similarity with `as`" that is not the true
//! target — modeling a user who picks a semantically plausible but wrong
//! column.

use lsm_embedding::EmbeddingSpace;
use lsm_schema::{AttrId, GroundTruth, Schema};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A simulated user that can answer labeling requests and review
/// suggestions.
pub trait Oracle {
    /// The target attribute the user assigns to `source_attr` when asked to
    /// label it directly.
    fn label(&mut self, source_attr: AttrId) -> AttrId;

    /// Whether the user confirms `(source_attr, target_attr)` while
    /// reviewing suggestions. Reviewing compares against the ground truth
    /// even for noisy oracles — recognizing a listed correct answer is much
    /// easier than recalling one, so review noise is not modeled (matching
    /// the paper, which injects noise only into provided labels).
    fn confirms(&self, source_attr: AttrId, target_attr: AttrId) -> bool;

    /// The ground truth behind this oracle (for metric computation).
    fn truth(&self) -> &GroundTruth;
}

/// Always answers with the ground truth.
pub struct PerfectOracle {
    truth: GroundTruth,
}

impl PerfectOracle {
    /// Creates an oracle over the given reference matches.
    pub fn new(truth: GroundTruth) -> Self {
        PerfectOracle { truth }
    }
}

impl Oracle for PerfectOracle {
    fn label(&mut self, source_attr: AttrId) -> AttrId {
        self.truth.target_of(source_attr).expect("oracle asked about an unknown attribute")
    }

    fn confirms(&self, source_attr: AttrId, target_attr: AttrId) -> bool {
        self.truth.is_correct(source_attr, target_attr)
    }

    fn truth(&self) -> &GroundTruth {
        &self.truth
    }
}

/// Corrupts labels with probability `noise_rate`, choosing the
/// embedding-nearest wrong target.
pub struct NoisyOracle {
    truth: GroundTruth,
    noise_rate: f64,
    /// Pre-computed corruption target per source attribute.
    corruption: std::collections::BTreeMap<AttrId, AttrId>,
    rng: ChaCha8Rng,
}

impl NoisyOracle {
    /// Builds the oracle, pre-computing each source attribute's most
    /// plausible wrong answer by embedding similarity.
    pub fn new(
        truth: GroundTruth,
        noise_rate: f64,
        embedding: &EmbeddingSpace,
        source: &Schema,
        target: &Schema,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&noise_rate), "noise rate must be a probability");
        let mut corruption = std::collections::BTreeMap::new();
        for (s, true_t) in truth.pairs() {
            let s_vec = embedding.identifier_vector(&source.attr(s).name);
            let mut best: Option<(AttrId, f64)> = None;
            for t in target.attr_ids() {
                if t == true_t {
                    continue;
                }
                let sim = lsm_embedding::space::cosine(
                    &s_vec,
                    &embedding.identifier_vector(&target.attr(t).name),
                );
                if best.is_none_or(|(_, b)| sim > b) {
                    best = Some((t, sim));
                }
            }
            if let Some((t, _)) = best {
                corruption.insert(s, t);
            }
        }
        NoisyOracle { truth, noise_rate, corruption, rng: ChaCha8Rng::seed_from_u64(seed) }
    }
}

impl Oracle for NoisyOracle {
    fn label(&mut self, source_attr: AttrId) -> AttrId {
        let true_t =
            self.truth.target_of(source_attr).expect("oracle asked about an unknown attribute");
        if self.rng.gen_bool(self.noise_rate) {
            self.corruption.get(&source_attr).copied().unwrap_or(true_t)
        } else {
            true_t
        }
    }

    fn confirms(&self, source_attr: AttrId, target_attr: AttrId) -> bool {
        self.truth.is_correct(source_attr, target_attr)
    }

    fn truth(&self) -> &GroundTruth {
        &self.truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_embedding::EmbeddingConfig;
    use lsm_lexicon::{ConceptBuilder, Domain, Lexicon};
    use lsm_schema::DataType;

    fn fixtures() -> (Schema, Schema, GroundTruth, EmbeddingSpace) {
        let source = Schema::builder("s")
            .entity("E")
            .attr("unit_price", DataType::Decimal)
            .attr("order_date", DataType::Date)
            .build()
            .unwrap();
        let target = Schema::builder("t")
            .entity("F")
            .attr("unit_price", DataType::Decimal)
            .attr("unit_cost", DataType::Decimal)
            .attr("order_date", DataType::Date)
            .build()
            .unwrap();
        let truth = GroundTruth::from_pairs([(AttrId(0), AttrId(0)), (AttrId(1), AttrId(2))]);
        let lex = Lexicon::assemble(vec![
            ConceptBuilder::attribute(Domain::Retail, "unit price").desc("price")
        ]);
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        (source, target, truth, emb)
    }

    #[test]
    fn perfect_oracle_answers_truth() {
        let (_, _, truth, _) = fixtures();
        let mut o = PerfectOracle::new(truth);
        assert_eq!(o.label(AttrId(0)), AttrId(0));
        assert!(o.confirms(AttrId(1), AttrId(2)));
        assert!(!o.confirms(AttrId(1), AttrId(0)));
    }

    #[test]
    fn zero_noise_equals_perfect() {
        let (s, t, truth, emb) = fixtures();
        let mut o = NoisyOracle::new(truth, 0.0, &emb, &s, &t, 1);
        for _ in 0..20 {
            assert_eq!(o.label(AttrId(0)), AttrId(0));
            assert_eq!(o.label(AttrId(1)), AttrId(2));
        }
    }

    #[test]
    fn full_noise_always_corrupts_to_nearest_wrong() {
        let (s, t, truth, emb) = fixtures();
        let mut o = NoisyOracle::new(truth, 1.0, &emb, &s, &t, 1);
        // For unit_price the embedding-nearest wrong target is unit_cost.
        assert_eq!(o.label(AttrId(0)), AttrId(1));
        // Reviewing still recognizes the truth.
        assert!(o.confirms(AttrId(0), AttrId(0)));
    }

    #[test]
    fn intermediate_noise_rate_mixes() {
        let (s, t, truth, emb) = fixtures();
        let mut o = NoisyOracle::new(truth, 0.5, &emb, &s, &t, 42);
        let answers: Vec<AttrId> = (0..100).map(|_| o.label(AttrId(0))).collect();
        let wrong = answers.iter().filter(|&&a| a != AttrId(0)).count();
        assert!((25..=75).contains(&wrong), "wrong answers: {wrong}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_noise_rate_panics() {
        let (s, t, truth, emb) = fixtures();
        NoisyOracle::new(truth, 1.5, &emb, &s, &t, 0);
    }
}
