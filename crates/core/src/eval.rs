//! Non-interactive model evaluation (Section V-B, Tables III/IV, Fig. 4).
//!
//! "We test our model in a non-interactive manner ...: given a set of
//! training matching labels, we train our model and evaluate how accurate
//! it is on the test set." Training labels are a random fraction of the
//! ground truth; top-k accuracy is measured on the held-out attributes.

use crate::labels::LabelStore;
use crate::session::SuggestionEngine;
use lsm_schema::{AttrId, GroundTruth};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The result of one split evaluation.
#[derive(Debug, Clone)]
pub struct SplitEvaluation {
    /// `(k, accuracy)` for each requested k.
    pub top_k: Vec<(usize, f64)>,
    /// Number of training labels used.
    pub train_size: usize,
    /// Number of held-out attributes evaluated.
    pub test_size: usize,
}

impl SplitEvaluation {
    /// The accuracy at a specific k.
    pub fn accuracy(&self, k: usize) -> f64 {
        self.top_k
            .iter()
            .find(|&&(kk, _)| kk == k)
            .map(|&(_, a)| a)
            .unwrap_or_else(|| panic!("k={k} was not evaluated"))
    }
}

/// Trains `engine` on a random `train_fraction` of the ground truth and
/// reports top-k accuracy on the rest.
pub fn evaluate_split<E: SuggestionEngine>(
    engine: &mut E,
    truth: &GroundTruth,
    train_fraction: f64,
    ks: &[usize],
    seed: u64,
) -> SplitEvaluation {
    assert!((0.0..1.0).contains(&train_fraction), "train fraction must be in [0, 1)");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut sources: Vec<AttrId> = truth.sources().collect();
    sources.shuffle(&mut rng);
    let train_size = (sources.len() as f64 * train_fraction).round() as usize;
    let (train, test) = sources.split_at(train_size);
    // With a small schema and a high fraction, `round()` can swallow every
    // source into `train` (e.g. 3 sources × 0.9 → 3); accuracy over an
    // empty test set would be 0/0. Fail loudly instead of reporting NaN.
    assert!(
        !test.is_empty() || sources.is_empty(),
        "evaluate_split: train_fraction {train_fraction} leaves no test attributes \
         ({} sources all fell into the training split); lower the fraction",
        sources.len()
    );

    let mut labels = LabelStore::new();
    for &s in train {
        labels.confirm(s, truth.target_of(s).expect("ground truth covers its sources"));
    }
    engine.retrain(&labels);
    let scores = engine.predict(&labels);
    let top_k = ks.iter().map(|&k| (k, scores.top_k_accuracy(truth, test, k))).collect();
    SplitEvaluation { top_k, train_size, test_size: test.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::PinnedBaselineEngine;
    use lsm_schema::{DataType, Schema, ScoreMatrix};

    fn fixtures() -> (Schema, GroundTruth, ScoreMatrix) {
        let source = Schema::builder("s")
            .entity("A")
            .attr("a", DataType::Text)
            .attr("b", DataType::Text)
            .attr("c", DataType::Text)
            .attr("d", DataType::Text)
            .build()
            .unwrap();
        let truth = GroundTruth::from_pairs([
            (AttrId(0), AttrId(0)),
            (AttrId(1), AttrId(1)),
            (AttrId(2), AttrId(2)),
            (AttrId(3), AttrId(3)),
        ]);
        // A matrix ranking each truth second (top-1 wrong, top-2 right).
        let mut m = ScoreMatrix::zeros(4, 6);
        for i in 0..4u32 {
            m.set(AttrId(i), AttrId(i), 0.8);
            m.set(AttrId(i), AttrId(5), 0.9);
        }
        (source, truth, m)
    }

    #[test]
    fn split_accuracy_reflects_ranking() {
        let (source, truth, scores) = fixtures();
        let mut engine = PinnedBaselineEngine::new(source, scores);
        let eval = evaluate_split(&mut engine, &truth, 0.5, &[1, 2, 3], 7);
        assert_eq!(eval.train_size, 2);
        assert_eq!(eval.test_size, 2);
        assert_eq!(eval.accuracy(1), 0.0);
        assert_eq!(eval.accuracy(2), 1.0);
        assert_eq!(eval.accuracy(3), 1.0);
    }

    #[test]
    fn zero_fraction_tests_everything() {
        let (source, truth, scores) = fixtures();
        let mut engine = PinnedBaselineEngine::new(source, scores);
        let eval = evaluate_split(&mut engine, &truth, 0.0, &[2], 7);
        assert_eq!(eval.train_size, 0);
        assert_eq!(eval.test_size, 4);
        assert_eq!(eval.accuracy(2), 1.0);
    }

    #[test]
    fn splits_are_seed_deterministic() {
        let (source, truth, scores) = fixtures();
        let mut e1 = PinnedBaselineEngine::new(source.clone(), scores.clone());
        let mut e2 = PinnedBaselineEngine::new(source, scores);
        let a = evaluate_split(&mut e1, &truth, 0.5, &[1], 3);
        let b = evaluate_split(&mut e2, &truth, 0.5, &[1], 3);
        assert_eq!(a.accuracy(1), b.accuracy(1));
    }

    /// 3 sources × 0.9 rounds to a train size of 3 — nothing left to test.
    /// That must be a loud failure, not a NaN accuracy.
    #[test]
    #[should_panic(expected = "leaves no test attributes")]
    fn empty_test_split_fails_loudly() {
        let (source, _, scores) = fixtures();
        let truth = GroundTruth::from_pairs([
            (AttrId(0), AttrId(0)),
            (AttrId(1), AttrId(1)),
            (AttrId(2), AttrId(2)),
        ]);
        let mut engine = PinnedBaselineEngine::new(source, scores);
        evaluate_split(&mut engine, &truth, 0.9, &[1], 7);
    }

    #[test]
    #[should_panic(expected = "was not evaluated")]
    fn missing_k_panics() {
        let (source, truth, scores) = fixtures();
        let mut engine = PinnedBaselineEngine::new(source, scores);
        let eval = evaluate_split(&mut engine, &truth, 0.5, &[1], 3);
        eval.accuracy(5);
    }
}
