//! The semi-supervised meta-learner (Section IV-D).
//!
//! "The base classifier for the semi-supervised framework is a simple
//! linear classifier using logistic loss. The inputs of the classifier are
//! the similarity scores given by each of the three featurizers." Training
//! uses *self-training*: fit on the labeled subset, pseudo-label the
//! confident unlabeled points, refit.

use crate::featurize::feature;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Self-training schedule.
#[derive(Debug, Clone, Copy)]
pub struct SelfTrainingConfig {
    /// Number of pseudo-labeling rounds after the initial fit.
    pub rounds: usize,
    /// Probability threshold above which an unlabeled point becomes a
    /// positive pseudo-label (and `1 − threshold` below which it becomes a
    /// negative one).
    pub confidence_threshold: f64,
    /// Cap on pseudo-labels added per round (keeps the training set from
    /// being swamped by easy negatives).
    pub max_pseudo_per_round: usize,
    /// Gradient-descent epochs per fit.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Seed for shuffling.
    pub seed: u64,
}

impl Default for SelfTrainingConfig {
    fn default() -> Self {
        SelfTrainingConfig {
            rounds: 2,
            confidence_threshold: 0.92,
            max_pseudo_per_round: 2000,
            epochs: 60,
            lr: 0.5,
            seed: 0x5e1f,
        }
    }
}

/// Logistic regression over the featurizer scores.
#[derive(Debug, Clone)]
pub struct MetaLearner {
    /// One weight per feature.
    weights: [f64; feature::COUNT],
    bias: f64,
    config: SelfTrainingConfig,
    trained: bool,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl MetaLearner {
    /// A fresh, untrained learner. Until the first labels arrive it scores
    /// pairs by the *uniform prior*: the mean of the featurizer scores —
    /// the cold-start behaviour before the first interaction round.
    pub fn new(config: SelfTrainingConfig) -> Self {
        MetaLearner { weights: [1.0; feature::COUNT], bias: 0.0, config, trained: false }
    }

    /// Whether a supervised fit has happened.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// The current weights (diagnostics / ablation reporting).
    pub fn weights(&self) -> ([f64; feature::COUNT], f64) {
        (self.weights, self.bias)
    }

    /// The predicted matching probability of one feature vector.
    pub fn predict(&self, features: &[f64; feature::COUNT]) -> f64 {
        if !self.trained {
            // Cold start: uniform average of the featurizer scores.
            return features.iter().sum::<f64>() / feature::COUNT as f64;
        }
        let z = self.weights.iter().zip(features).map(|(w, f)| w * f).sum::<f64>() + self.bias;
        sigmoid(z)
    }

    fn fit_supervised(&mut self, data: &[([f64; feature::COUNT], f64)]) {
        if data.is_empty() {
            return;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        // (Re)start from a neutral parameterization each fit: the training
        // set is tiny, so warm starts buy nothing and can trap the weights.
        self.weights = [1.0; feature::COUNT];
        self.bias = 0.0;
        for _ in 0..self.config.epochs {
            // Fisher-Yates via rand's shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                let (x, y) = &data[i];
                let p = {
                    let z = self.weights.iter().zip(x).map(|(w, f)| w * f).sum::<f64>() + self.bias;
                    sigmoid(z)
                };
                let err = p - y;
                for (w, f) in self.weights.iter_mut().zip(x) {
                    // Projected update: every feature is a similarity score,
                    // so a negative weight can only encode training-set
                    // noise (it would rank *dissimilar* pairs higher).
                    *w = (*w - self.config.lr * err * f).max(0.0);
                }
                self.bias -= self.config.lr * err;
            }
        }
        self.trained = true;
    }

    /// Self-training: fit on `labeled`, then for `rounds` iterations
    /// pseudo-label the most confident `unlabeled` points and refit on the
    /// union.
    ///
    /// Requires at least one positive and one negative label to leave the
    /// cold-start prior (a one-class fit would be degenerate).
    pub fn fit(
        &mut self,
        labeled: &[([f64; feature::COUNT], f64)],
        unlabeled: &[[f64; feature::COUNT]],
    ) {
        let _span = lsm_obs::span("meta.fit");
        let has_pos = labeled.iter().any(|&(_, y)| y > 0.5);
        let has_neg = labeled.iter().any(|&(_, y)| y < 0.5);
        if !has_pos || !has_neg {
            self.trained = false;
            return;
        }
        self.fit_supervised(labeled);
        // Guard against degenerate fits: if the trained model does not
        // separate its own training labels (mean positive probability not
        // meaningfully above mean negative probability), it is a
        // near-constant predictor — e.g. the only labels so far are
        // feature-poor identifier columns. A constant would erase the
        // featurizers' ranking, so stay on the cold-start prior instead.
        let mean_prob = |want: f64| {
            let probs: Vec<f64> = labeled
                .iter()
                .filter(|&&(_, y)| (y > 0.5) == (want > 0.5))
                .map(|(x, _)| self.predict(x))
                .collect();
            probs.iter().sum::<f64>() / probs.len().max(1) as f64
        };
        if mean_prob(1.0) - mean_prob(0.0) < 0.05 {
            self.weights = [1.0; feature::COUNT];
            self.bias = 0.0;
            self.trained = false;
            return;
        }
        for _ in 0..self.config.rounds {
            // Collect confident pseudo-labels, most confident first.
            let mut pseudo: Vec<([f64; feature::COUNT], f64, f64)> = Vec::new();
            for x in unlabeled {
                let p = self.predict(x);
                if p >= self.config.confidence_threshold {
                    pseudo.push((*x, 1.0, p));
                } else if p <= 1.0 - self.config.confidence_threshold {
                    pseudo.push((*x, 0.0, 1.0 - p));
                }
            }
            pseudo.sort_by(|a, b| b.2.total_cmp(&a.2));
            pseudo.truncate(self.config.max_pseudo_per_round);
            if pseudo.is_empty() {
                break;
            }
            lsm_obs::add(lsm_obs::Counter::PseudoLabels, pseudo.len() as u64);
            let mut train: Vec<([f64; feature::COUNT], f64)> = labeled.to_vec();
            train.extend(pseudo.into_iter().map(|(x, y, _)| (x, y)));
            self.fit_supervised(&train);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(x: f64) -> ([f64; 3], f64) {
        ([x, x, x], 1.0)
    }
    fn neg(x: f64) -> ([f64; 3], f64) {
        ([x, x, x], 0.0)
    }

    #[test]
    fn cold_start_is_feature_mean() {
        let m = MetaLearner::new(SelfTrainingConfig::default());
        assert!(!m.is_trained());
        let p = m.predict(&[0.3, 0.6, 0.9]);
        assert!((p - 0.6).abs() < 1e-12);
    }

    #[test]
    fn one_class_labels_keep_cold_start() {
        let mut m = MetaLearner::new(SelfTrainingConfig::default());
        m.fit(&[pos(0.9), pos(0.8)], &[]);
        assert!(!m.is_trained());
    }

    #[test]
    fn learns_separable_data() {
        let mut m = MetaLearner::new(SelfTrainingConfig::default());
        let labeled = vec![pos(0.9), pos(0.85), pos(0.7), neg(0.2), neg(0.1), neg(0.3)];
        m.fit(&labeled, &[]);
        assert!(m.is_trained());
        assert!(m.predict(&[0.8, 0.8, 0.8]) > 0.5);
        assert!(m.predict(&[0.15, 0.15, 0.15]) < 0.5);
    }

    #[test]
    fn learns_to_downweight_a_noisy_feature() {
        // Feature 0 is pure noise (always 0.5); features 1, 2 are
        // informative. The learner should rely on the informative ones.
        let labeled = vec![
            ([0.5, 0.9, 0.8], 1.0),
            ([0.5, 0.8, 0.9], 1.0),
            ([0.5, 0.7, 0.9], 1.0),
            ([0.5, 0.1, 0.2], 0.0),
            ([0.5, 0.2, 0.1], 0.0),
            ([0.5, 0.3, 0.2], 0.0),
        ];
        let mut m = MetaLearner::new(SelfTrainingConfig::default());
        m.fit(&labeled, &[]);
        let (w, _) = m.weights();
        assert!(w[1] > w[0], "informative feature must outweigh noise: {w:?}");
        assert!(w[2] > w[0]);
    }

    #[test]
    fn self_training_uses_unlabeled_data() {
        // Sparse labels + plenty of unlabeled structure: pseudo-labeling
        // should sharpen the boundary.
        let labeled = vec![pos(0.95), neg(0.05)];
        let unlabeled: Vec<[f64; 3]> =
            (0..50).map(|i| if i % 2 == 0 { [0.9, 0.9, 0.9] } else { [0.1, 0.1, 0.1] }).collect();
        let mut with_st = MetaLearner::new(SelfTrainingConfig::default());
        with_st.fit(&labeled, &unlabeled);
        let mut without_st =
            MetaLearner::new(SelfTrainingConfig { rounds: 0, ..Default::default() });
        without_st.fit(&labeled, &[]);
        // Both must classify correctly; self-training should be at least as
        // confident on a clear positive.
        let p_st = with_st.predict(&[0.85, 0.85, 0.85]);
        let p_plain = without_st.predict(&[0.85, 0.85, 0.85]);
        assert!(p_st > 0.5);
        assert!(p_st >= p_plain - 1e-6, "st {p_st} vs plain {p_plain}");
    }

    /// Labels whose only linear fit is *inverted* (positives scoring lower
    /// than negatives) collapse under the non-negativity projection; the
    /// learner must fall back to the cold-start prior instead of a
    /// near-constant predictor.
    #[test]
    fn inverted_signal_falls_back_to_the_prior() {
        let mut m = MetaLearner::new(SelfTrainingConfig::default());
        let labeled = vec![pos(0.05), pos(0.1), pos(0.08), neg(0.5), neg(0.6), neg(0.4)];
        m.fit(&labeled, &[]);
        assert!(!m.is_trained(), "inverted signal → cold start");
        // Ranking by feature mean is preserved.
        assert!(m.predict(&[0.9, 0.9, 0.9]) > m.predict(&[0.1, 0.1, 0.1]));
    }

    #[test]
    fn prediction_is_bounded() {
        let mut m = MetaLearner::new(SelfTrainingConfig::default());
        m.fit(&[pos(1.0), neg(0.0)], &[]);
        for x in [[0.0; 3], [1.0; 3], [0.5, 0.1, 0.9]] {
            let p = m.predict(&x);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
