//! Candidate-pair labels (Section IV-B).
//!
//! Each candidate pair `(as, at)` carries a label: correct (`1`), incorrect
//! (`0`), or unlabeled (`−1`). The paper's update rules:
//!
//! * reviewing a correct suggestion sets `(as, at) = 1` and `(as, a't) = 0`
//!   for all other targets,
//! * rejecting all top-k suggestions sets them to `0`,
//! * a direct user label sets `(as, at) = 1` and resets the rest of the row
//!   to unlabeled.
//!
//! A dense `|As| × |At|` label matrix would waste memory — positives are at
//! most one per row and negatives are sparse — so the store keeps one
//! per-row summary.

use lsm_schema::AttrId;
use std::collections::{BTreeMap, BTreeSet};

/// The label of one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// `lp = 1`.
    Correct,
    /// `lp = 0`.
    Incorrect,
    /// `lp = −1`.
    Unlabeled,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Row {
    /// Confirmed target, if any. Implies every other pair in the row is
    /// incorrect.
    positive: Option<AttrId>,
    /// Explicitly rejected targets.
    negative: BTreeSet<AttrId>,
}

/// Sparse label storage over the candidate-pair matrix.
///
/// `PartialEq` compares the full label state — used by the persistence
/// layer to assert that journal replay reconstructs the live session
/// exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelStore {
    rows: BTreeMap<AttrId, Row>,
}

impl LabelStore {
    /// Creates an all-unlabeled store (the preparation step).
    pub fn new() -> Self {
        Self::default()
    }

    /// The label of a pair.
    pub fn get(&self, source: AttrId, target: AttrId) -> Label {
        match self.rows.get(&source) {
            None => Label::Unlabeled,
            Some(row) => {
                if let Some(p) = row.positive {
                    if p == target {
                        Label::Correct
                    } else {
                        Label::Incorrect
                    }
                } else if row.negative.contains(&target) {
                    Label::Incorrect
                } else {
                    Label::Unlabeled
                }
            }
        }
    }

    /// Marks `(source, target)` correct. Per the paper, all other targets
    /// of the row become incorrect (via the positive marker); previously
    /// recorded explicit negatives are cleared as redundant.
    pub fn confirm(&mut self, source: AttrId, target: AttrId) {
        let row = self.rows.entry(source).or_default();
        row.positive = Some(target);
        row.negative.clear();
    }

    /// Marks `(source, target)` incorrect (reviewing rejection).
    pub fn reject(&mut self, source: AttrId, target: AttrId) {
        let row = self.rows.entry(source).or_default();
        if row.positive != Some(target) {
            row.negative.insert(target);
        }
    }

    /// The confirmed target of a source attribute, if any.
    pub fn positive_of(&self, source: AttrId) -> Option<AttrId> {
        self.rows.get(&source).and_then(|r| r.positive)
    }

    /// Whether the source attribute has a confirmed match.
    pub fn is_matched(&self, source: AttrId) -> bool {
        self.positive_of(source).is_some()
    }

    /// All confirmed `(source, target)` pairs in source order.
    pub fn positives(&self) -> impl Iterator<Item = (AttrId, AttrId)> + '_ {
        self.rows.iter().filter_map(|(&s, r)| r.positive.map(|t| (s, t)))
    }

    /// All explicitly rejected pairs (not counting those implied by a
    /// positive).
    pub fn negatives(&self) -> impl Iterator<Item = (AttrId, AttrId)> + '_ {
        self.rows.iter().flat_map(|(&s, r)| r.negative.iter().map(move |&t| (s, t)))
    }

    /// Number of confirmed matches.
    pub fn matched_count(&self) -> usize {
        self.rows.values().filter(|r| r.positive.is_some()).count()
    }

    /// Number of explicit negative labels.
    pub fn negative_count(&self) -> usize {
        self.rows.values().map(|r| r.negative.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_store_is_unlabeled() {
        let s = LabelStore::new();
        assert_eq!(s.get(AttrId(0), AttrId(0)), Label::Unlabeled);
        assert_eq!(s.matched_count(), 0);
        assert!(!s.is_matched(AttrId(0)));
    }

    #[test]
    fn confirm_implies_row_negatives() {
        let mut s = LabelStore::new();
        s.confirm(AttrId(0), AttrId(3));
        assert_eq!(s.get(AttrId(0), AttrId(3)), Label::Correct);
        assert_eq!(s.get(AttrId(0), AttrId(4)), Label::Incorrect);
        assert_eq!(s.get(AttrId(1), AttrId(3)), Label::Unlabeled);
        assert_eq!(s.positive_of(AttrId(0)), Some(AttrId(3)));
    }

    #[test]
    fn reject_marks_single_pair() {
        let mut s = LabelStore::new();
        s.reject(AttrId(0), AttrId(1));
        assert_eq!(s.get(AttrId(0), AttrId(1)), Label::Incorrect);
        assert_eq!(s.get(AttrId(0), AttrId(2)), Label::Unlabeled);
        assert_eq!(s.negative_count(), 1);
    }

    #[test]
    fn confirm_overrides_rejections() {
        let mut s = LabelStore::new();
        s.reject(AttrId(0), AttrId(1));
        s.reject(AttrId(0), AttrId(2));
        s.confirm(AttrId(0), AttrId(1));
        assert_eq!(s.get(AttrId(0), AttrId(1)), Label::Correct);
        assert_eq!(s.negative_count(), 0);
    }

    #[test]
    fn reject_of_confirmed_target_is_ignored() {
        let mut s = LabelStore::new();
        s.confirm(AttrId(0), AttrId(1));
        s.reject(AttrId(0), AttrId(1));
        assert_eq!(s.get(AttrId(0), AttrId(1)), Label::Correct);
    }

    #[test]
    fn iterators_enumerate_labels() {
        let mut s = LabelStore::new();
        s.confirm(AttrId(0), AttrId(5));
        s.confirm(AttrId(2), AttrId(7));
        s.reject(AttrId(1), AttrId(3));
        assert_eq!(
            s.positives().collect::<Vec<_>>(),
            vec![(AttrId(0), AttrId(5)), (AttrId(2), AttrId(7))]
        );
        assert_eq!(s.negatives().collect::<Vec<_>>(), vec![(AttrId(1), AttrId(3))]);
        assert_eq!(s.matched_count(), 2);
    }
}
