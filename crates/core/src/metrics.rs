//! Evaluation metrics: learning curves, labeling cost, reviewing cost,
//! response time (Section V-A).

use serde::{Deserialize, Serialize};

/// One point of the Fig. 5 learning curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Direct labels provided so far.
    pub labels_provided: usize,
    /// Source attributes matched so far (reviewed-correct + labeled).
    pub matched: usize,
    /// Of those, matched to the *correct* target.
    pub matched_correct: usize,
    /// Total source attributes.
    pub total: usize,
}

impl CurvePoint {
    /// X axis of Fig. 5: percent of labels provided.
    pub fn labels_pct(&self) -> f64 {
        100.0 * self.labels_provided as f64 / self.total as f64
    }

    /// Y axis of Fig. 5: percent of attributes correctly matched.
    pub fn correct_pct(&self) -> f64 {
        100.0 * self.matched_correct as f64 / self.total as f64
    }
}

/// The record of one simulated end-to-end session.
///
/// `PartialEq` is exact (f64 `==` on response times): the persistence
/// layer's resume-equivalence guarantee is *bitwise*, not approximate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// Learning-curve points, one per iteration (plus the initial state).
    pub curve: Vec<CurvePoint>,
    /// Total direct labels provided (the human labeling cost).
    pub labels_used: usize,
    /// Total suggestion reviews performed (the reviewing cost).
    pub reviews_done: usize,
    /// Per-iteration response times in seconds (featurize + retrain +
    /// predict), Fig. 9.
    pub response_times: Vec<f64>,
    /// Source attributes in the task.
    pub total_attributes: usize,
}

impl SessionOutcome {
    /// Labeling cost as a percentage of the schema size.
    pub fn labeling_cost_pct(&self) -> f64 {
        100.0 * self.labels_used as f64 / self.total_attributes.max(1) as f64
    }

    /// Final fraction of correctly matched attributes.
    pub fn final_correct_pct(&self) -> f64 {
        self.curve.last().map(|p| p.correct_pct()).unwrap_or(0.0)
    }

    /// Mean response time in seconds.
    pub fn mean_response_time(&self) -> f64 {
        if self.response_times.is_empty() {
            return 0.0;
        }
        self.response_times.iter().sum::<f64>() / self.response_times.len() as f64
    }

    /// The area *above* the curve, normalized to `[0, 1]` — the paper's
    /// proxy for total reviewing cost (Section V-C): lower is better.
    pub fn area_above_curve(&self) -> f64 {
        if self.curve.len() < 2 {
            return 1.0;
        }
        let mut area = 0.0;
        for w in self.curve.windows(2) {
            let dx = (w[1].labels_pct() - w[0].labels_pct()) / 100.0;
            let avg_y = (w[0].correct_pct() + w[1].correct_pct()) / 200.0;
            area += dx * (1.0 - avg_y);
        }
        // Extend flat to 100 % labels so truncated curves compare fairly.
        let last = self.curve.last().expect("len >= 2");
        let dx = (100.0 - last.labels_pct()).max(0.0) / 100.0;
        area += dx * (1.0 - last.correct_pct() / 100.0);
        area.clamp(0.0, 1.0)
    }

    /// Interpolates the correct-match percentage at a given percent of
    /// labels provided (for tabulating curves at fixed x positions).
    pub fn correct_pct_at(&self, labels_pct: f64) -> f64 {
        if self.curve.is_empty() {
            return 0.0;
        }
        let mut prev = self.curve[0];
        if labels_pct <= prev.labels_pct() {
            return prev.correct_pct();
        }
        for &p in &self.curve[1..] {
            if p.labels_pct() >= labels_pct {
                let span = p.labels_pct() - prev.labels_pct();
                if span <= f64::EPSILON {
                    return p.correct_pct();
                }
                let frac = (labels_pct - prev.labels_pct()) / span;
                return prev.correct_pct() + frac * (p.correct_pct() - prev.correct_pct());
            }
            prev = p;
        }
        prev.correct_pct()
    }
}

/// The manual-labeling reference curve: x % labels ⇒ x % matched.
pub fn manual_labeling_curve(total: usize) -> SessionOutcome {
    let curve = (0..=total)
        .map(|i| CurvePoint { labels_provided: i, matched: i, matched_correct: i, total })
        .collect();
    SessionOutcome {
        curve,
        labels_used: total,
        reviews_done: 0,
        response_times: Vec::new(),
        total_attributes: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(points: &[(usize, usize)], total: usize) -> SessionOutcome {
        SessionOutcome {
            curve: points
                .iter()
                .map(|&(l, c)| CurvePoint {
                    labels_provided: l,
                    matched: c,
                    matched_correct: c,
                    total,
                })
                .collect(),
            labels_used: points.last().map(|&(l, _)| l).unwrap_or(0),
            reviews_done: 0,
            response_times: vec![1.0, 3.0],
            total_attributes: total,
        }
    }

    #[test]
    fn curve_point_percentages() {
        let p = CurvePoint { labels_provided: 5, matched: 60, matched_correct: 50, total: 100 };
        assert_eq!(p.labels_pct(), 5.0);
        assert_eq!(p.correct_pct(), 50.0);
    }

    #[test]
    fn labeling_cost_and_response_time() {
        let o = outcome(&[(0, 0), (10, 100)], 100);
        assert_eq!(o.labeling_cost_pct(), 10.0);
        assert_eq!(o.mean_response_time(), 2.0);
        assert_eq!(o.final_correct_pct(), 100.0);
    }

    #[test]
    fn area_above_curve_orders_good_and_bad_sessions() {
        // Fast riser: 70 % correct after 5 % labels.
        let good = outcome(&[(0, 0), (5, 70), (20, 100)], 100);
        // Diagonal (manual labeling).
        let manual = manual_labeling_curve(100);
        assert!(good.area_above_curve() < manual.area_above_curve());
        // Manual labeling's area above the diagonal is 1/2.
        assert!((manual.area_above_curve() - 0.5).abs() < 0.01);
    }

    #[test]
    fn interpolation_between_points() {
        let o = outcome(&[(0, 0), (10, 50), (20, 100)], 100);
        assert_eq!(o.correct_pct_at(0.0), 0.0);
        assert_eq!(o.correct_pct_at(5.0), 25.0);
        assert_eq!(o.correct_pct_at(10.0), 50.0);
        assert_eq!(o.correct_pct_at(15.0), 75.0);
        // Beyond the last point the curve is flat.
        assert_eq!(o.correct_pct_at(50.0), 100.0);
    }

    #[test]
    fn empty_outcome_is_safe() {
        let o = SessionOutcome::default();
        assert_eq!(o.final_correct_pct(), 0.0);
        assert_eq!(o.mean_response_time(), 0.0);
        assert_eq!(o.area_above_curve(), 1.0);
        assert_eq!(o.correct_pct_at(10.0), 0.0);
    }

    #[test]
    fn manual_curve_is_diagonal() {
        let m = manual_labeling_curve(10);
        assert_eq!(m.curve.len(), 11);
        for p in &m.curve {
            assert_eq!(p.labels_pct(), p.correct_pct());
        }
    }
}
