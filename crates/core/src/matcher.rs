//! The LSM matcher: featurization, meta-learning, score adjustment, and
//! top-k suggestions (Sections IV-B through IV-D).

use crate::bert_featurizer::BertFeaturizer;
use crate::featurize::{
    default_threads, embedding_features, feature, lexical_features, parallel_rows, FeatureTable,
};
use crate::labels::LabelStore;
use crate::meta::{MetaLearner, SelfTrainingConfig};
use lsm_embedding::EmbeddingSpace;
use lsm_nn::Tensor;
use lsm_schema::{AttrId, EntityId, RankedSuggestions, Schema, ScoreMatrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the matcher.
#[derive(Debug, Clone, Copy)]
pub struct LsmConfig {
    /// Suggestions per source attribute (the paper uses k = 3).
    pub top_k: usize,
    /// Whether the BERT featurizer participates (ablated in Fig. 6).
    pub use_bert: bool,
    /// Whether incompatible data types zero the score (Section IV-D).
    pub dtype_gating: bool,
    /// Whether the new-entity penalty applies (Section IV-D).
    pub entity_penalty: bool,
    /// Cross-encoder shortlist size per source attribute.
    pub shortlist: usize,
    /// Meta-learner schedule.
    pub self_training: SelfTrainingConfig,
    /// Worker threads for featurization.
    pub threads: usize,
    /// Cap on unlabeled feature vectors sampled for self-training.
    pub self_training_pool: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            top_k: 3,
            use_bert: true,
            dtype_gating: true,
            entity_penalty: true,
            shortlist: 64,
            self_training: SelfTrainingConfig::default(),
            threads: default_threads(),
            self_training_pool: 20_000,
        }
    }
}

/// A matching session's model state over one (source, target) pair.
pub struct LsmMatcher {
    config: LsmConfig,
    source: Schema,
    target: Schema,
    features: FeatureTable,
    meta: MetaLearner,
    bert: Option<BertState>,
}

/// BERT-side caches: per-attribute pooled vectors and per-row shortlists.
struct BertState {
    featurizer: BertFeaturizer,
    /// Pooled encoding of every source attribute text.
    s_vec: Vec<Tensor>,
    /// Pooled encoding of every target attribute text.
    t_vec: Vec<Tensor>,
    /// Scored candidates per source row (the BERT feature column is
    /// maintained on these plus any labeled pairs).
    shortlist: Vec<Vec<AttrId>>,
}

/// Matching-head scores for every shortlisted pair: one batched head
/// forward per source row, rows spread over `threads` workers. Returns
/// `(row, scores-aligned-with-shortlist)` pairs in row order; scores are
/// bitwise-identical for every thread count.
fn score_shortlists(state: &BertState, threads: usize) -> Vec<(usize, Vec<f64>)> {
    let _span = lsm_obs::span("matcher.score_shortlists");
    let fz = &state.featurizer;
    let (s_vec, t_vec, shortlist) = (&state.s_vec, &state.t_vec, &state.shortlist);
    parallel_rows(shortlist.len(), threads, |i| {
        let pairs: Vec<(&Tensor, &Tensor)> =
            shortlist[i].iter().map(|t| (&s_vec[i], &t_vec[t.index()])).collect();
        fz.classify_pooled_batch(&pairs, 1)
    })
}

impl LsmMatcher {
    /// Builds the session state: computes the cheap features over all
    /// candidate pairs, and (when enabled) the BERT shortlist + pooled
    /// cache.
    ///
    /// `bert` should already be domain-pre-trained and
    /// classifier-pre-trained on the target ISS; it is cloned per session
    /// so fine-tuning stays session-local.
    pub fn new(
        source: &Schema,
        target: &Schema,
        embedding: &EmbeddingSpace,
        bert: Option<BertFeaturizer>,
        config: LsmConfig,
    ) -> Self {
        Self::new_with_cache(source, target, embedding, bert, config, None)
    }

    /// Like [`new`](Self::new), but pooled attribute encodings are looked
    /// up in (and written back to) a shared [`PooledCache`] before the
    /// encoder runs. The serve daemon passes one cache to every concurrent
    /// session so the frozen-encoder work for a repeated attribute text is
    /// paid once per process; `pooled_many_cached` guarantees the vectors
    /// are bitwise-identical to the uncached path either way.
    pub fn new_with_cache(
        source: &Schema,
        target: &Schema,
        embedding: &EmbeddingSpace,
        bert: Option<BertFeaturizer>,
        config: LsmConfig,
        cache: Option<&dyn crate::bert_featurizer::PooledCache>,
    ) -> Self {
        let _span = lsm_obs::span("matcher.new");
        let ns = source.attr_count();
        let nt = target.attr_count();
        lsm_obs::add(lsm_obs::Counter::AttrsFeaturized, (ns + nt) as u64);
        let lexical = lexical_features(source, target, config.threads);
        let emb = embedding_features(embedding, source, target, config.threads);
        let mut bert_column = ScoreMatrix::zeros(ns, nt);

        let bert_state = if config.use_bert {
            bert.map(|featurizer| {
                let source_ids: Vec<Vec<u32>> =
                    source.attr_ids().map(|a| featurizer.attr_token_ids(source, a)).collect();
                let target_ids: Vec<Vec<u32>> =
                    target.attr_ids().map(|a| featurizer.attr_token_ids(target, a)).collect();

                // Pooled encoding per attribute: deduplicated, batched, in
                // parallel, with per-worker graph-arena reuse.
                let fz = &featurizer;
                let s_refs: Vec<&[u32]> = source_ids.iter().map(|v| v.as_slice()).collect();
                let t_refs: Vec<&[u32]> = target_ids.iter().map(|v| v.as_slice()).collect();
                let (s_vec, t_vec): (Vec<Tensor>, Vec<Tensor>) = {
                    let _span = lsm_obs::span("matcher.pooled_encode");
                    (
                        fz.pooled_many_cached(&s_refs, config.threads, cache),
                        fz.pooled_many_cached(&t_refs, config.threads, cache),
                    )
                };

                // Description-aware embedding vectors (name + description
                // text) — recall aid for the shortlist only; the embedding
                // *feature* stays name-based per the paper.
                let text_vec = |schema: &Schema, a: AttrId| -> Vec<f32> {
                    let attr = schema.attr(a);
                    let mut toks = lsm_text::tokenize(&attr.name);
                    toks.extend(lsm_text::tokenize::tokenize_text(attr.desc_or_empty()));
                    embedding.phrase_vector(&toks)
                };
                let s_text: Vec<Vec<f32>> =
                    source.attr_ids().map(|a| text_vec(source, a)).collect();
                let t_text: Vec<Vec<f32>> =
                    target.attr_ids().map(|a| text_vec(target, a)).collect();

                // Shortlist per source row: the *union* of per-signal top
                // lists — cheap features, description embedding, and the
                // matching head itself over the pooled encodings. A union
                // is robust: one noisy signal cannot crowd out another
                // signal's hits.
                let m = config.shortlist.min(nt).max(1);
                let _shortlist_span = lsm_obs::span("matcher.shortlist");
                let shortlist: Vec<Vec<AttrId>> = parallel_rows(ns, config.threads, |i| {
                    let s = AttrId(i as u32);
                    // The whole row goes through the matching head as
                    // one batch (a single [nt, 4d] forward per
                    // direction) instead of nt tiny graphs.
                    let head_pairs: Vec<(&Tensor, &Tensor)> =
                        t_vec.iter().map(|v| (&s_vec[i], v)).collect();
                    let head_scores = fz.classify_pooled_batch(&head_pairs, 1);
                    let mut signals: Vec<Vec<(AttrId, f64)>> = vec![Vec::new(); 3];
                    for j in 0..nt {
                        let t = AttrId(j as u32);
                        signals[0].push((t, lexical.get(s, t) + emb.get(s, t)));
                        signals[1].push((t, lsm_embedding::space::cosine(&s_text[i], &t_text[j])));
                        signals[2].push((t, head_scores[j]));
                    }
                    let mut union: Vec<AttrId> = Vec::with_capacity(m);
                    // The matching head is the strongest recall signal;
                    // give it the biggest share of the budget.
                    let quota = [m / 4, m / 8, m - m / 4 - m / 8];
                    for (signal, &q) in signals.iter_mut().zip(&quota) {
                        signal.sort_by(|a, b| b.1.total_cmp(&a.1));
                        let mut added = 0;
                        for &(t, _) in signal.iter() {
                            if added == q {
                                break;
                            }
                            if !union.contains(&t) {
                                union.push(t);
                                added += 1;
                            }
                        }
                    }
                    union
                })
                .into_iter()
                .map(|(_, v)| v)
                .collect();
                drop(_shortlist_span);

                BertState { featurizer, s_vec, t_vec, shortlist }
            })
        } else {
            None
        };

        // Fill the BERT feature column on the shortlist: one batched head
        // forward per source row, rows in parallel.
        if let Some(state) = &bert_state {
            let scored = score_shortlists(state, config.threads);
            for (i, scores) in scored {
                for (&t, &score) in state.shortlist[i].iter().zip(&scores) {
                    bert_column.set(AttrId(i as u32), t, score);
                }
            }
        }

        LsmMatcher {
            config,
            source: source.clone(),
            target: target.clone(),
            features: FeatureTable { columns: vec![lexical, emb, bert_column] },
            meta: MetaLearner::new(config.self_training),
            bert: bert_state,
        }
    }

    /// The matcher configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// Whether the BERT featurizer is active.
    pub fn has_bert(&self) -> bool {
        self.bert.is_some()
    }

    /// Step 2 of each interaction round: fine-tunes the BERT classifier on
    /// the current labels, refreshes the BERT feature column, and retrains
    /// the self-training meta-learner.
    pub fn retrain(&mut self, labels: &LabelStore) {
        let _span = lsm_obs::span("matcher.retrain");
        let nt = self.target.attr_count();
        // Implied negatives: a confirmed match (s, t) implies every other
        // target in the row is wrong (Section IV-E1). Materialize a small
        // sample per row — mostly *random* wrong targets (they keep the
        // learned weights oriented: a random pair has low featurizer scores
        // and label 0) plus one embedding-hard negative (it teaches the
        // classifier that surface similarity alone is not a match).
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.config.self_training.seed ^ (labels.matched_count() as u64) << 17,
        );
        let mut implied_random: Vec<(AttrId, AttrId)> = Vec::new();
        let mut implied_hard: Vec<(AttrId, AttrId)> = Vec::new();
        for (s, t) in labels.positives() {
            for _ in 0..3 {
                let r = AttrId(rng.gen_range(0..nt as u32));
                if r != t {
                    implied_random.push((s, r));
                }
            }
            if let Some((hard, _)) = self
                .features
                .column(feature::EMBEDDING)
                .top_k(s, 2)
                .into_iter()
                .find(|&(j, _)| j != t)
            {
                implied_hard.push((s, hard));
            }
        }

        // ---- BERT fine-tuning on user labels ----
        if let Some(state) = &mut self.bert {
            let _span = lsm_obs::span("matcher.retrain.bert");
            let mut samples: Vec<(AttrId, AttrId, bool)> = Vec::new();
            for (s, t) in labels.positives() {
                samples.push((s, t, true));
            }
            for (s, t) in labels.negatives() {
                samples.push((s, t, false));
            }
            // Hard negatives teach the classifier that surface similarity
            // alone is not a match; random ones anchor the decision floor.
            for &(s, t) in implied_random.iter().chain(&implied_hard) {
                samples.push((s, t, false));
            }
            if !samples.is_empty() {
                state.featurizer.update_with_pooled_labels(samples.iter().map(
                    |&(s, t, correct)| {
                        (state.s_vec[s.index()].clone(), state.t_vec[t.index()].clone(), correct)
                    },
                ));
                // Refresh the BERT column under the updated head: the
                // shortlists (batched per row, rows in parallel) plus every
                // labeled pair (one batch).
                let scored = score_shortlists(state, self.config.threads);
                let label_pairs: Vec<(&Tensor, &Tensor)> = samples
                    .iter()
                    .map(|&(s, t, _)| (&state.s_vec[s.index()], &state.t_vec[t.index()]))
                    .collect();
                let label_scores =
                    state.featurizer.classify_pooled_batch(&label_pairs, self.config.threads);
                let col = self.features.column_mut(feature::BERT);
                for (i, scores) in scored {
                    for (&t, &score) in state.shortlist[i].iter().zip(&scores) {
                        col.set(AttrId(i as u32), t, score);
                    }
                }
                for (&(s, t, _), &score) in samples.iter().zip(&label_scores) {
                    col.set(s, t, score);
                }
            }
        }

        // ---- meta-learner training set ----
        let _meta_span = lsm_obs::span("matcher.retrain.meta");
        let mut labeled: Vec<([f64; feature::COUNT], f64)> = Vec::new();
        for (s, t) in labels.positives() {
            labeled.push((self.features.vector(s, t), 1.0));
        }
        // Meta negatives are the *random* ones only: a hard negative has a
        // high embedding score with label 0, which would teach the linear
        // meta-learner an inverted (negative) weight for the embedding
        // feature. Discriminating hard negatives is the BERT feature's job.
        for &(s, t) in &implied_random {
            labeled.push((self.features.vector(s, t), 0.0));
        }
        for (s, t) in labels.negatives() {
            labeled.push((self.features.vector(s, t), 0.0));
        }

        // Unlabeled pool for self-training: a deterministic stride sample.
        let ns = self.source.attr_count();
        let nt = self.target.attr_count();
        let total = ns * nt;
        let stride = (total / self.config.self_training_pool.max(1)).max(1);
        let mut unlabeled: Vec<[f64; feature::COUNT]> = Vec::with_capacity(total.div_ceil(stride));
        let mut idx = 0;
        while idx < total {
            let s = AttrId((idx / nt) as u32);
            let t = AttrId((idx % nt) as u32);
            unlabeled.push(self.features.vector(s, t));
            idx += stride;
        }
        self.meta.fit(&labeled, &unlabeled);
    }

    /// Step 2 prediction: scores every candidate pair and applies the
    /// score adjustments.
    pub fn predict(&self, labels: &LabelStore) -> ScoreMatrix {
        let _span = lsm_obs::span("matcher.predict");
        let ns = self.source.attr_count();
        let nt = self.target.attr_count();
        let mut m = ScoreMatrix::zeros(ns, nt);
        // Matched target entities so far (for the new-entity penalty).
        let matched_entities: Vec<EntityId> = {
            let mut es: Vec<EntityId> =
                labels.positives().map(|(_, t)| self.target.attr(t).entity).collect();
            es.sort_unstable();
            es.dedup();
            es
        };
        // Pre-compute the per-entity penalty once: the BFS behind
        // `sp(at, M)` must not run per candidate pair.
        let entity_penalty: Vec<f64> = if self.config.entity_penalty && !matched_entities.is_empty()
        {
            let graph = self.target.join_graph();
            self.target.entity_ids().map(|e| graph.entity_penalty(e, &matched_entities)).collect()
        } else {
            vec![1.0; self.target.entity_count()]
        };

        // Rows are independent, so they parallelize freely; each row's
        // arithmetic is untouched, keeping scores bitwise-identical to the
        // serial sweep at every thread count.
        let rows: Vec<(usize, Vec<f64>)> = parallel_rows(ns, self.config.threads, |i| {
            let s = AttrId(i as u32);
            let mut row = vec![0.0f64; nt];
            if let Some(t) = labels.positive_of(s) {
                // Confirmed rows are settled.
                row[t.index()] = 1.0;
                return row;
            }
            let s_dtype = self.source.attr(s).dtype;
            for (j, slot) in row.iter_mut().enumerate() {
                let t = AttrId(j as u32);
                if self.config.dtype_gating && !s_dtype.compatible(self.target.attr(t).dtype) {
                    continue; // stays 0.0
                }
                let mut score = self.meta.predict(&self.features.vector(s, t));
                score *= entity_penalty[self.target.attr(t).entity.index()];
                *slot = score;
            }
            row
        });
        for (i, row) in rows {
            m.row_mut(AttrId(i as u32)).copy_from_slice(&row);
        }
        m
    }

    /// Top-k suggestions for every *unmatched* source attribute.
    pub fn suggestions(&self, scores: &ScoreMatrix, labels: &LabelStore) -> Vec<RankedSuggestions> {
        self.source
            .attr_ids()
            .filter(|&s| !labels.is_matched(s))
            .map(|s| RankedSuggestions {
                source: s,
                candidates: scores.top_k(s, self.config.top_k),
            })
            .collect()
    }

    /// One feature column (diagnostics / per-featurizer analysis).
    pub fn feature_column(&self, f: usize) -> &ScoreMatrix {
        self.features.column(f)
    }

    /// The meta-learner's current weights and bias (diagnostics).
    pub fn meta_weights(&self) -> ([f64; feature::COUNT], f64) {
        self.meta.weights()
    }

    /// The cross-encoder shortlist of one source attribute (diagnostics).
    pub fn shortlist_of(&self, s: AttrId) -> &[AttrId] {
        self.bert.as_ref().map(|b| b.shortlist[s.index()].as_slice()).unwrap_or(&[])
    }

    /// The source schema of this session.
    pub fn source(&self) -> &Schema {
        &self.source
    }

    /// The target schema of this session.
    pub fn target(&self) -> &Schema {
        &self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert_featurizer::BertFeaturizerConfig;
    use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
    use lsm_lexicon::{ConceptBuilder, ConceptDtype, Domain, Lexicon};
    use lsm_schema::DataType;

    fn lexicon() -> Lexicon {
        Lexicon::assemble(vec![
            ConceptBuilder::attribute(Domain::Retail, "quantity")
                .syn("unit count")
                .private("item amount")
                .dtype(ConceptDtype::Integer)
                .desc("number of units"),
            ConceptBuilder::attribute(Domain::Retail, "total amount")
                .syn("line total")
                .dtype(ConceptDtype::Decimal)
                .desc("value of the line"),
            ConceptBuilder::attribute(Domain::Retail, "order date")
                .syn("purchase date")
                .dtype(ConceptDtype::Date)
                .desc("date of the order"),
        ])
    }

    fn schemas() -> (Schema, Schema) {
        let source = Schema::builder("cust")
            .entity("Orders")
            .attr("unit_count", DataType::Integer)
            .attr("purchase_date", DataType::Date)
            .build()
            .unwrap();
        let target = Schema::builder("iss")
            .entity("TransactionLine")
            .attr_desc("quantity", DataType::Integer, "number of units")
            .attr_desc("total_amount", DataType::Decimal, "value of the line")
            .attr_desc("order_date", DataType::Date, "date of the order")
            .build()
            .unwrap();
        (source, target)
    }

    fn matcher(config: LsmConfig) -> LsmMatcher {
        let lex = lexicon();
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        let (s, t) = schemas();
        let bert = if config.use_bert {
            let mut b = BertFeaturizer::pretrain(&lex, BertFeaturizerConfig::tiny());
            b.pretrain_classifier(&t);
            Some(b)
        } else {
            None
        };
        LsmMatcher::new(&s, &t, &emb, bert, config)
    }

    #[test]
    fn cold_start_prediction_ranks_synonyms() {
        let m = matcher(LsmConfig { use_bert: false, ..Default::default() });
        let labels = LabelStore::new();
        let scores = m.predict(&labels);
        // unit_count → quantity should win its row.
        assert_eq!(scores.best(AttrId(0)).unwrap().0, AttrId(0));
        // purchase_date → order_date.
        assert_eq!(scores.best(AttrId(1)).unwrap().0, AttrId(2));
    }

    #[test]
    fn dtype_gating_zeroes_incompatible_pairs() {
        let m = matcher(LsmConfig { use_bert: false, ..Default::default() });
        let scores = m.predict(&LabelStore::new());
        // unit_count (Integer) vs order_date (Date) must be zero.
        assert_eq!(scores.get(AttrId(0), AttrId(2)), 0.0);
        let m2 = matcher(LsmConfig { use_bert: false, dtype_gating: false, ..Default::default() });
        let scores2 = m2.predict(&LabelStore::new());
        assert!(scores2.get(AttrId(0), AttrId(2)) > 0.0);
    }

    #[test]
    fn confirmed_rows_are_pinned() {
        let m = matcher(LsmConfig { use_bert: false, ..Default::default() });
        let mut labels = LabelStore::new();
        labels.confirm(AttrId(0), AttrId(1));
        let scores = m.predict(&labels);
        assert_eq!(scores.best(AttrId(0)).unwrap(), (AttrId(1), 1.0));
        // Suggestions skip matched rows.
        let sugg = m.suggestions(&scores, &labels);
        assert_eq!(sugg.len(), 1);
        assert_eq!(sugg[0].source, AttrId(1));
    }

    #[test]
    fn retrain_with_labels_trains_meta() {
        let mut m = matcher(LsmConfig { use_bert: false, ..Default::default() });
        let mut labels = LabelStore::new();
        labels.confirm(AttrId(0), AttrId(0));
        labels.reject(AttrId(1), AttrId(1));
        m.retrain(&labels);
        let scores = m.predict(&labels);
        assert_eq!(scores.best(AttrId(1)).unwrap().0, AttrId(2));
    }

    #[test]
    fn bert_column_is_populated_on_shortlist() {
        let m = matcher(LsmConfig { shortlist: 2, self_training_pool: 100, ..Default::default() });
        assert!(m.has_bert());
        let col = m.features.column(feature::BERT);
        // Each row has exactly `shortlist` populated candidates; at least
        // one non-zero per row is expected from the pre-trained classifier.
        for s in m.source().attr_ids() {
            let nonzero = m.target().attr_ids().filter(|&t| col.get(s, t) != 0.0).count();
            assert!(nonzero <= 2, "row {s} has {nonzero} > shortlist entries");
            assert!(nonzero > 0, "row {s} has an empty BERT column");
        }
    }

    /// Acceptance criterion: thread count must never change scores. The
    /// parallel kernels and batched head are bitwise-identical to their
    /// serial counterparts, so the full `predict` matrix must match bit
    /// for bit — cold and after a retrain round.
    #[test]
    fn predict_is_bitwise_identical_across_thread_counts() {
        let lex = lexicon();
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        let (s, t) = schemas();
        let mut b = BertFeaturizer::pretrain(&lex, BertFeaturizerConfig::tiny());
        b.pretrain_classifier(&t);
        let build = |threads: usize, bert: BertFeaturizer| {
            LsmMatcher::new(&s, &t, &emb, Some(bert), LsmConfig { threads, ..Default::default() })
        };
        let mut m1 = build(1, b.clone());
        let mut m4 = build(4, b);
        let assert_same = |a: &ScoreMatrix, b: &ScoreMatrix| {
            for si in s.attr_ids() {
                for ti in t.attr_ids() {
                    assert_eq!(a.get(si, ti).to_bits(), b.get(si, ti).to_bits(), "({si}, {ti})");
                }
            }
        };
        let labels = LabelStore::new();
        assert_same(&m1.predict(&labels), &m4.predict(&labels));
        // And after a label round — retrain exercises the batched column
        // refresh and the head fine-tuning on both matchers.
        let mut labels = LabelStore::new();
        labels.confirm(AttrId(0), AttrId(0));
        labels.reject(AttrId(1), AttrId(1));
        m1.retrain(&labels);
        m4.retrain(&labels);
        assert_same(&m1.predict(&labels), &m4.predict(&labels));
    }

    #[test]
    fn entity_penalty_discourages_new_entities() {
        // Two-entity target: confirming a match in entity 0 should depress
        // scores into (unconnected) entity 1.
        let lex = lexicon();
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        let source = Schema::builder("cust")
            .entity("Orders")
            .attr("unit_count", DataType::Integer)
            .attr("line_total", DataType::Decimal)
            .build()
            .unwrap();
        let target = Schema::builder("iss")
            .entity("TransactionLine")
            .attr("quantity", DataType::Integer)
            .attr("total_amount", DataType::Decimal)
            .entity("Promotion")
            .attr("unit_count", DataType::Integer)
            .build()
            .unwrap();
        let config = LsmConfig { use_bert: false, ..Default::default() };
        let m = LsmMatcher::new(&source, &target, &emb, None, config);
        let mut labels = LabelStore::new();
        labels.confirm(AttrId(1), AttrId(1)); // line_total → total_amount
        let with_penalty = m.predict(&labels);
        let m2 = LsmMatcher::new(
            &source,
            &target,
            &emb,
            None,
            LsmConfig { use_bert: false, entity_penalty: false, ..Default::default() },
        );
        let without_penalty = m2.predict(&labels);
        // The exact-name trap in the new entity is weakened by the penalty.
        let trap = AttrId(2);
        assert!(with_penalty.get(AttrId(0), trap) < without_penalty.get(AttrId(0), trap));
    }
}
