//! The fine-tuned language-model featurizer (Section IV-C1).
//!
//! Life cycle, mirroring the paper:
//!
//! 1. **Language-model pre-training** — once per domain
//!    ([`BertFeaturizer::pretrain`]): train the BPE vocabulary, MLM-pre-train
//!    the mini-encoder on the synthetic corpus, then teach the matching
//!    head the corpus's paraphrase knowledge (synonym statements rendered
//!    as classification pairs). Together these stand in for the published
//!    Books+Wikipedia BERT checkpoint, which arrives already knowing that
//!    *discount* and *price change percentage* co-refer.
//! 2. **Matching-classifier pre-training** — once per ISS
//!    ([`BertFeaturizer::pretrain_classifier`]): the paper's self-repeating,
//!    self-explaining, and PK/FK-linking positives plus corrupted
//!    negatives, trained end-to-end (encoder + head).
//! 3. **Label updates** — every interaction round
//!    ([`BertFeaturizer::update_with_labels`]): user-labeled pairs join the
//!    training set with a larger sample weight; only the head is updated so
//!    per-attribute encodings stay cacheable.
//!
//! ## Architecture note (documented substitution)
//!
//! The paper feeds the joint sentence `[CLS] a [SEP] b [SEP]` through a
//! 110M-parameter cross-encoder and classifies `E'[CLS]`. A 2-layer
//! mini-transformer cannot learn reliable cross-segment comparison from
//! scratch, so we use the Sentence-BERT formulation instead: each
//! attribute text is encoded separately into a pooled vector `u`/`v`, and
//! the matching classifier scores the explicit comparison features
//! `[u; v; (u−v)²; u⊙v]`. This preserves the paper's training signals and
//! interface (attribute texts in, similarity score out) while being
//! learnable — and cacheable — at our scale.

use lsm_lexicon::{CorpusConfig, CorpusGenerator, Lexicon};
use lsm_nn::layers::Linear;
use lsm_nn::{
    Adam, AdamConfig, BertConfig, BertEncoder, BpeVocab, FastBackend, FastEncoder, Graph,
    MlmConfig, MlmTrainer, NodeId, ParamStore, SpecialToken, Tensor,
};
use lsm_schema::{AttrId, Schema};
use lsm_text::tokenize;
use lsm_text::tokenize::tokenize_text;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Configuration of the featurizer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BertFeaturizerConfig {
    /// Encoder dimensions.
    pub encoder: EncoderSize,
    /// BPE merge budget.
    pub bpe_merges: usize,
    /// MLM pre-training schedule.
    pub mlm: MlmConfig,
    /// End-to-end epochs of the domain paraphrase stage.
    pub paraphrase_epochs: usize,
    /// End-to-end epochs of the ISS classifier pre-training.
    pub pretrain_epochs: usize,
    /// Cap on samples per end-to-end epoch.
    pub pretrain_cap: usize,
    /// End-to-end learning rate.
    pub pretrain_lr: f32,
    /// Head-only epochs per label update.
    pub classifier_epochs: usize,
    /// Head-only learning rate.
    pub classifier_lr: f32,
    /// Sample weight of user labels relative to pre-training samples
    /// ("a larger sample weight", Section IV-C1).
    pub label_weight: f32,
    /// Maximum replay samples per label-update fit.
    pub replay_cap: usize,
    /// Whether ISS pre-training emits self-repeating samples (ablation).
    pub use_self_repeating: bool,
    /// Whether ISS pre-training emits self-explaining samples (ablation).
    pub use_self_explaining: bool,
    /// Whether ISS pre-training emits PK/FK-linking samples (ablation).
    pub use_pkfk_linking: bool,
    /// Seed for parameter init and sampling.
    pub seed: u64,
}

/// Encoder size presets.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum EncoderSize {
    /// d=48, 2 layers — the experiment configuration.
    Small,
    /// d=16, 1 layer — unit tests.
    Tiny,
}

/// Inference backend for the *frozen* encoder
/// ([`BertFeaturizer::set_backend`]).
///
/// `F32` is the paper-faithful default: the graph path in the exact
/// rounding class, bitwise-deterministic at every thread count. The other
/// three compile the frozen weights into a graph-free
/// [`FastEncoder`] plan; they change pooled-vector bits (fma rounding
/// and/or reduced precision) but not the matching decisions they feed —
/// the int8 accuracy gate in `tests/quant_accuracy.rs` pins that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderBackend {
    /// Paper-faithful f32 graph path (default).
    F32,
    /// Graph-free f32 plan on the SIMD microkernels.
    Simd,
    /// Int8 weights + activations, one-shot-calibrated over the
    /// pre-training paraphrase corpus.
    Int8,
    /// f16-storage weights decoded on the fly (half the plan memory).
    F16,
}

impl EncoderBackend {
    /// Stable snake-case name (benchmark tables, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            EncoderBackend::F32 => "f32",
            EncoderBackend::Simd => "simd",
            EncoderBackend::Int8 => "int8",
            EncoderBackend::F16 => "f16",
        }
    }
}

impl BertFeaturizerConfig {
    /// The experiment configuration.
    pub fn small() -> Self {
        BertFeaturizerConfig {
            encoder: EncoderSize::Small,
            bpe_merges: 600,
            mlm: MlmConfig { steps: 2000, batch_size: 8, ..Default::default() },
            paraphrase_epochs: 25,
            pretrain_epochs: 8,
            pretrain_cap: 8000,
            pretrain_lr: 1e-3,
            classifier_epochs: 8,
            classifier_lr: 2e-3,
            label_weight: 5.0,
            replay_cap: 1000,
            use_self_repeating: true,
            use_self_explaining: true,
            use_pkfk_linking: true,
            seed: 0xbe27,
        }
    }

    /// A configuration small enough for debug-mode tests.
    pub fn tiny() -> Self {
        BertFeaturizerConfig {
            encoder: EncoderSize::Tiny,
            bpe_merges: 150,
            mlm: MlmConfig { steps: 60, batch_size: 4, ..Default::default() },
            paraphrase_epochs: 20,
            pretrain_epochs: 15,
            pretrain_cap: 600,
            pretrain_lr: 3e-3,
            classifier_epochs: 15,
            classifier_lr: 5e-3,
            label_weight: 5.0,
            replay_cap: 400,
            use_self_repeating: true,
            use_self_explaining: true,
            use_pkfk_linking: true,
            seed: 0xbe27,
        }
    }
}

/// A shared cache of pooled attribute encodings, consulted by
/// [`BertFeaturizer::pooled_many_cached`].
///
/// The encoder is frozen at inference time, so a pooled vector is a pure
/// function of `(backend, token ids)` — that pair is the cache key.
/// Implementations must be safe to share across threads (the serve daemon
/// hands one instance to every concurrent session) and must return on
/// `get` exactly the bits a prior `put` stored: the bitwise-identity
/// guarantee of [`pooled_many`](BertFeaturizer::pooled_many) extends to
/// the cached path only if the cache never alters a stored tensor.
pub trait PooledCache: Send + Sync {
    /// The cached pooled vector for `ids` under `backend`, if present.
    fn get(&self, backend: &str, ids: &[u32]) -> Option<Tensor>;
    /// Stores a freshly computed pooled vector. Implementations may
    /// decline (e.g. capacity eviction) — correctness never depends on a
    /// `put` being retained.
    fn put(&self, backend: &str, ids: &[u32], pooled: &Tensor);
}

/// One head training sample: cached pooled vectors of the two sides, the
/// label, and the sample weight.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HeadSample {
    u: Tensor,
    v: Tensor,
    label: f32,
    weight: f32,
}

/// The Sentence-BERT-style matching head over pooled vectors.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct CompareHead {
    hidden: Linear,
    out: Linear,
}

impl CompareHead {
    fn new(store: &mut ParamStore, d: usize, rng: &mut impl Rng) -> Self {
        CompareHead {
            hidden: Linear::new(store, "cmp.hidden", 4 * d, d, rng),
            out: Linear::new(store, "cmp.out", d, 1, rng),
        }
    }

    /// The matching logit for pooled vectors `u`, `v` already on the graph.
    fn logit(&self, g: &mut Graph, store: &ParamStore, u: NodeId, v: NodeId) -> NodeId {
        let neg_v = g.scale(v, -1.0);
        let diff = g.add(u, neg_v);
        let diff_sq = g.mul(diff, diff);
        let prod = g.mul(u, v);
        let features = g.concat_cols(&[u, v, diff_sq, prod]);
        let h = self.hidden.forward(g, store, features);
        let a = g.gelu(h);
        self.out.forward(g, store, a)
    }
}

/// The language-model featurizer.
#[derive(Clone, Serialize, Deserialize)]
pub struct BertFeaturizer {
    config: BertFeaturizerConfig,
    vocab: BpeVocab,
    store: ParamStore,
    encoder: BertEncoder,
    head: CompareHead,
    /// Domain paraphrase pairs, replayed during ISS pre-training so the
    /// identity-heavy ISS samples do not erase the synonym knowledge.
    paraphrase_pairs: Vec<(Vec<u32>, Vec<u32>, f32)>,
    /// ISS pre-training samples (pooled, cached) — the replay buffer for
    /// head-only label updates.
    iss_samples: Vec<HeadSample>,
    /// Human-label samples accumulated over the session.
    label_samples: Vec<HeadSample>,
    /// Compiled fast-encoder plan; `None` means the paper-faithful F32
    /// graph path. Never serialized — a plan is a cheap pure function of
    /// the weights, so [`load`](Self::load) resets to `F32` and callers
    /// re-select a backend explicitly.
    #[serde(skip)]
    fast: Option<FastEncoder>,
}

impl BertFeaturizer {
    /// Stage 1: vocabulary, MLM pre-training, and paraphrase-knowledge
    /// distillation. Expensive; run once per domain and clone per session.
    pub fn pretrain(lexicon: &Lexicon, config: BertFeaturizerConfig) -> Self {
        let _span = lsm_obs::span("bert.pretrain");
        let corpus_cfg = CorpusConfig { seed: config.seed, ..Default::default() };
        let sentences = CorpusGenerator::new(lexicon, corpus_cfg).generate();
        let vocab = BpeVocab::train(&sentences, config.bpe_merges);
        let encoded: Vec<Vec<u32>> = sentences.iter().map(|s| vocab.encode_words(s)).collect();

        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let bert_config = match config.encoder {
            EncoderSize::Small => BertConfig::small(vocab.size()),
            EncoderSize::Tiny => BertConfig::tiny(vocab.size()),
        };
        let encoder = BertEncoder::new(bert_config, &mut store, &mut rng);
        let head = CompareHead::new(&mut store, bert_config.d_model, &mut rng);
        let mlm =
            MlmTrainer::new(config.mlm, &mut store, bert_config.d_model, vocab.size(), &mut rng);
        {
            let _span = lsm_obs::span("bert.pretrain.mlm");
            mlm.train(&encoder, &mut store, &vocab, &encoded);
        }

        let mut featurizer = BertFeaturizer {
            config,
            vocab,
            store,
            encoder,
            head,
            paraphrase_pairs: Vec::new(),
            iss_samples: Vec::new(),
            label_samples: Vec::new(),
            fast: None,
        };

        // Paraphrase distillation: surface forms of the same concept (in
        // the same "name [+ description]" composites the downstream
        // attribute texts use) are matches; cross-concept pairs are not.
        // This is the world knowledge a real pre-trained BERT arrives with.
        let mut pairs: Vec<(Vec<u32>, Vec<u32>, f32)> = Vec::new();
        let concepts = lexicon.concepts();
        for c in concepts {
            let mut forms: Vec<Vec<u32>> =
                c.all_phrasings().map(|p| featurizer.vocab.encode_words(p)).collect();
            for a in &c.abbreviations {
                forms.push(featurizer.vocab.encode_word(a));
            }
            forms.retain(|f| !f.is_empty());
            let desc_words: Vec<String> =
                c.description.split_whitespace().map(|w| w.to_lowercase()).collect();
            let desc = featurizer.vocab.encode_words(&desc_words);
            let with_desc = |form: &[u32]| -> Vec<u32> {
                let mut v = form.to_vec();
                v.extend_from_slice(&desc);
                v
            };
            // Qualified variants ("total <form>") keep ISS-style names
            // in-distribution.
            let qualify = |form: &[u32], rng: &mut ChaCha8Rng, vocab: &BpeVocab| -> Vec<u32> {
                let q = lsm_lexicon::QUALIFIERS[rng.gen_range(0..lsm_lexicon::QUALIFIERS.len())];
                let mut v = vocab.encode_word(q);
                v.extend_from_slice(form);
                v
            };
            for i in 0..forms.len() {
                for j in i..forms.len() {
                    // One positive per (i, j), context mixed in randomly so
                    // the head sees bare phrases, qualified names, and
                    // name+description composites.
                    let left = if rng.gen_bool(0.25) {
                        qualify(&forms[i], &mut rng, &featurizer.vocab)
                    } else {
                        forms[i].clone()
                    };
                    let right =
                        if rng.gen_bool(0.5) { with_desc(&forms[j]) } else { forms[j].clone() };
                    pairs.push((left, right, 1.0));
                    // One matched negative.
                    let other = &concepts[rng.gen_range(0..concepts.len())];
                    if other.id == c.id {
                        continue;
                    }
                    let mut neg = featurizer.vocab.encode_words(&other.canonical);
                    if rng.gen_bool(0.5) {
                        let odesc: Vec<String> = other
                            .description
                            .split_whitespace()
                            .map(|w| w.to_lowercase())
                            .collect();
                        neg.extend(featurizer.vocab.encode_words(&odesc));
                    }
                    if !neg.is_empty() {
                        pairs.push((forms[i].clone(), neg, 0.0));
                    }
                }
            }
        }
        let (epochs, cap, lr) = (config.paraphrase_epochs, config.pretrain_cap, config.pretrain_lr);
        featurizer.fit_pairs_end_to_end(&pairs, epochs, cap, lr, &mut rng);
        featurizer.paraphrase_pairs = pairs;
        featurizer
    }

    /// Subword encoding of one attribute's text (`name desc`), where the
    /// name is first split on identifier boundaries.
    pub fn attr_token_ids(&self, schema: &Schema, attr: AttrId) -> Vec<u32> {
        let a = schema.attr(attr);
        let mut words = tokenize(&a.name);
        words.extend(tokenize_text(a.desc_or_empty()));
        self.vocab.encode_words(&words)
    }

    /// The pooled encoding of one attribute text — cacheable (the encoder
    /// is frozen after pre-training).
    pub fn single_pooled(&self, ids: &[u32]) -> Tensor {
        let mut g = Graph::for_inference();
        self.pooled_with_graph(&mut g, ids)
    }

    /// One pooled encoding through a caller-provided (reusable) graph.
    /// When a fast backend is selected the graph is bypassed entirely —
    /// the compiled plan runs the forward over borrowed slices.
    fn pooled_with_graph(&self, g: &mut Graph, ids: &[u32]) -> Tensor {
        if ids.is_empty() {
            return Tensor::zeros(1, self.encoder.config.d_model);
        }
        let with_specials = self.prep_sequence(ids);
        if let Some(plan) = &self.fast {
            return plan.pooled(&with_specials);
        }
        let pooled = self.encoder.pooled(g, &self.store, &with_specials);
        g.value(pooled).clone()
    }

    /// `[CLS] ids [SEP]`, truncated to the encoder's window.
    fn prep_sequence(&self, ids: &[u32]) -> Vec<u32> {
        let mut with_specials = Vec::with_capacity(ids.len() + 2);
        with_specials.push(SpecialToken::Cls.id());
        with_specials.extend_from_slice(&ids[..ids.len().min(self.encoder.config.max_seq - 2)]);
        with_specials.push(SpecialToken::Sep.id());
        with_specials
    }

    /// The active inference backend for the frozen encoder.
    pub fn backend(&self) -> EncoderBackend {
        match &self.fast {
            None => EncoderBackend::F32,
            Some(plan) => match plan.backend() {
                FastBackend::Simd => EncoderBackend::Simd,
                FastBackend::Int8 => EncoderBackend::Int8,
                FastBackend::F16 => EncoderBackend::F16,
            },
        }
    }

    /// Selects the inference backend for the frozen encoder.
    ///
    /// Compiling a plan copies the encoder weights once; `Int8`
    /// additionally runs one-shot activation calibration over (a capped
    /// sample of) the pre-training paraphrase corpus. Any subsequent
    /// encoder *training* (`pretrain_classifier`) invalidates the plan and
    /// silently resets the backend to `F32` — re-select afterwards.
    /// Pooled-vector caches are per-backend state: callers that switch
    /// backends mid-session must drop caches built under the old one.
    pub fn set_backend(&mut self, backend: EncoderBackend) {
        let _span = lsm_obs::span("bert.set_backend");
        match backend {
            EncoderBackend::F32 => self.fast = None,
            EncoderBackend::Simd => {
                self.fast = Some(FastEncoder::from_bert(&self.encoder, &self.store));
            }
            EncoderBackend::Int8 => {
                let plan = FastEncoder::from_bert(&self.encoder, &self.store);
                let calib = self.calibration_corpus(256);
                self.fast = Some(plan.to_int8(&calib));
            }
            EncoderBackend::F16 => {
                self.fast = Some(FastEncoder::from_bert(&self.encoder, &self.store).to_f16());
            }
        }
    }

    /// CLS/SEP-prepped sequences for int8 activation calibration, drawn
    /// from the pre-training paraphrase corpus (both sides of up to `cap`
    /// pairs). Falls back to the bare special-token sequence when no
    /// corpus is available (a featurizer that never pre-trained), so
    /// calibration is always possible.
    fn calibration_corpus(&self, cap: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::with_capacity(cap);
        'outer: for (a, b, _) in &self.paraphrase_pairs {
            for side in [a, b] {
                if side.is_empty() {
                    continue;
                }
                out.push(self.prep_sequence(side));
                if out.len() >= cap {
                    break 'outer;
                }
            }
        }
        if out.is_empty() {
            out.push(self.prep_sequence(&[]));
        }
        out
    }

    /// Pooled encodings for many attribute texts at once. Identical token
    /// sequences are encoded once (attribute texts repeat heavily across
    /// replay pairs and self-pairs), unique sequences are spread over
    /// `threads` workers, and each worker reuses one inference-mode graph
    /// arena across its items. Element `i` of the result is bitwise
    /// equal to `single_pooled(ids_list[i])` for every thread count.
    pub fn pooled_many(&self, ids_list: &[&[u32]], threads: usize) -> Vec<Tensor> {
        let _span = lsm_obs::span("bert.pooled_many");
        let mut unique: Vec<&[u32]> = Vec::new();
        let mut index_of: std::collections::HashMap<&[u32], usize> =
            std::collections::HashMap::new();
        let slots: Vec<usize> = ids_list
            .iter()
            .map(|&ids| {
                *index_of.entry(ids).or_insert_with(|| {
                    unique.push(ids);
                    unique.len() - 1
                })
            })
            .collect();
        lsm_obs::add(lsm_obs::Counter::PooledCacheHits, (ids_list.len() - unique.len()) as u64);
        let unique = &unique;
        let pooled: Vec<Tensor> = crate::featurize::parallel_rows_stateful(
            unique.len(),
            threads,
            Graph::for_inference,
            |g, i| {
                g.reset();
                self.pooled_with_graph(g, unique[i])
            },
        )
        .into_iter()
        .map(|(_, v)| v)
        .collect();
        slots.into_iter().map(|idx| pooled[idx].clone()).collect()
    }

    /// Like [`pooled_many`](Self::pooled_many), but consults a shared
    /// cross-request cache before encoding. Entries are keyed by the
    /// active backend's name plus the exact token-id sequence, so a hit
    /// returns the vector an earlier call computed through the identical
    /// code path: element `i` of the result is bitwise equal to
    /// `single_pooled(ids_list[i])` whether it was served from the cache
    /// or computed here. `cache: None` degenerates to `pooled_many`.
    pub fn pooled_many_cached(
        &self,
        ids_list: &[&[u32]],
        threads: usize,
        cache: Option<&dyn PooledCache>,
    ) -> Vec<Tensor> {
        let Some(cache) = cache else { return self.pooled_many(ids_list, threads) };
        let _span = lsm_obs::span("bert.pooled_many");
        let backend = self.backend().name();
        let mut unique: Vec<&[u32]> = Vec::new();
        let mut index_of: std::collections::HashMap<&[u32], usize> =
            std::collections::HashMap::new();
        let slots: Vec<usize> = ids_list
            .iter()
            .map(|&ids| {
                *index_of.entry(ids).or_insert_with(|| {
                    unique.push(ids);
                    unique.len() - 1
                })
            })
            .collect();
        lsm_obs::add(lsm_obs::Counter::PooledCacheHits, (ids_list.len() - unique.len()) as u64);
        let mut resolved: Vec<Option<Tensor>> =
            unique.iter().map(|ids| cache.get(backend, ids)).collect();
        let missing: Vec<usize> = (0..unique.len()).filter(|&i| resolved[i].is_none()).collect();
        let unique = &unique;
        let computed = crate::featurize::parallel_rows_stateful(
            missing.len(),
            threads,
            Graph::for_inference,
            |g, i| {
                g.reset();
                self.pooled_with_graph(g, unique[missing[i]])
            },
        );
        for ((_, pooled), &slot) in computed.into_iter().zip(&missing) {
            cache.put(backend, unique[slot], &pooled);
            resolved[slot] = Some(pooled);
        }
        // Every slot is Some by construction; the fallback recomputes
        // rather than panicking (R8: no panic reachable from a pub API).
        slots
            .into_iter()
            .map(|idx| resolved[idx].clone().unwrap_or_else(|| self.single_pooled(unique[idx])))
            .collect()
    }

    /// The matching probability for two cached pooled vectors. The head is
    /// trained with symmetric augmentation; inference averages both
    /// directions to cancel any residual asymmetry.
    pub fn classify_pooled(&self, u: &Tensor, v: &Tensor) -> f64 {
        self.classify_pooled_batch(&[(u, v)], 1)[0]
    }

    /// Matching probabilities for a whole batch of pooled pairs in one
    /// head forward: the batch is stacked into `[n, d]` matrices so each
    /// direction costs one GEMM instead of `n` tiny ones. Every head op is
    /// row-wise independent, so element `i` is bitwise equal to
    /// `classify_pooled(pairs[i].0, pairs[i].1)` at every thread count.
    pub fn classify_pooled_batch(&self, pairs: &[(&Tensor, &Tensor)], threads: usize) -> Vec<f64> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let _span = lsm_obs::span("bert.head_batch");
        lsm_obs::add(lsm_obs::Counter::HeadPairs, pairs.len() as u64);
        let d = self.encoder.config.d_model;
        let n = pairs.len();
        let mut u = Tensor::zeros(n, d);
        let mut v = Tensor::zeros(n, d);
        for (i, (pu, pv)) in pairs.iter().enumerate() {
            u.row_mut(i).copy_from_slice(pu.row(0));
            v.row_mut(i).copy_from_slice(pv.row(0));
        }
        let mut g = Graph::for_inference();
        g.set_threads(threads);
        let un = g.input(u);
        let vn = g.input(v);
        let z1 = self.head.logit(&mut g, &self.store, un, vn);
        let z2 = self.head.logit(&mut g, &self.store, vn, un);
        let p1 = g.sigmoid(z1);
        let p2 = g.sigmoid(z2);
        let (p1, p2) = (g.value(p1), g.value(p2));
        (0..n).map(|i| (p1.get(i, 0) as f64 + p2.get(i, 0) as f64) / 2.0).collect()
    }

    /// The matching probability for a pair of attributes (convenience,
    /// uncached).
    pub fn score_pair(&self, source: &Schema, s: AttrId, target: &Schema, t: AttrId) -> f64 {
        let u = self.single_pooled(&self.attr_token_ids(source, s));
        let v = self.single_pooled(&self.attr_token_ids(target, t));
        self.classify_pooled(&u, &v)
    }

    /// End-to-end (encoder + head) BCE training on token-pair samples.
    fn fit_pairs_end_to_end(
        &mut self,
        pairs: &[(Vec<u32>, Vec<u32>, f32)],
        epochs: usize,
        cap: usize,
        lr: f32,
        rng: &mut ChaCha8Rng,
    ) {
        if pairs.is_empty() {
            return;
        }
        let _span = lsm_obs::span("bert.fit_end_to_end");
        // Encoder weights are about to change: any compiled fast plan is a
        // stale snapshot. Training always runs on the F32 graph path.
        self.fast = None;
        let max_seq = self.encoder.config.max_seq;
        let mut opt = Adam::new(AdamConfig { lr, ..Default::default() });
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        let prep = |ids: &[u32]| -> Vec<u32> {
            let mut v = Vec::with_capacity(ids.len() + 2);
            v.push(SpecialToken::Cls.id());
            v.extend_from_slice(&ids[..ids.len().min(max_seq - 2)]);
            v.push(SpecialToken::Sep.id());
            v
        };
        for _ in 0..epochs {
            order.shuffle(rng);
            let epoch_slice = &order[..order.len().min(cap)];
            for chunk in epoch_slice.chunks(8) {
                let mut g = Graph::new();
                let mut losses = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let (a, b, label) = &pairs[i];
                    // The concatenation features are direction-sensitive;
                    // the matching relation is not. Randomly swap sides so
                    // the head learns a symmetric decision.
                    let (a, b) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
                    let u = self.encoder.pooled(&mut g, &self.store, &prep(a));
                    let v = self.encoder.pooled(&mut g, &self.store, &prep(b));
                    let z = self.head.logit(&mut g, &self.store, u, v);
                    losses.push(g.bce_with_logits(z, *label, 1.0));
                }
                let loss = g.mean_scalars(&losses);
                g.backward(loss, &mut self.store);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
        }
    }

    /// Stage 2: pre-trains the matching classifier on the ISS (once per
    /// vertical): the paper's three positive sample types plus corrupted
    /// negatives, mixed with the domain paraphrase pairs, trained
    /// end-to-end. Pooled vectors are then cached as the replay buffer for
    /// head-only label updates.
    pub fn pretrain_classifier(&mut self, target: &Schema) {
        let _span = lsm_obs::span("bert.pretrain_classifier");
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0xc1a5);
        let attr_ids: Vec<AttrId> = target.attr_ids().collect();
        let tokenized: Vec<Vec<u32>> =
            attr_ids.iter().map(|&a| self.attr_token_ids(target, a)).collect();
        let name_ids: Vec<Vec<u32>> = attr_ids
            .iter()
            .map(|&a| self.vocab.encode_words(&tokenize(&target.attr(a).name)))
            .collect();
        let desc_ids: Vec<Vec<u32>> = attr_ids
            .iter()
            .map(|&a| self.vocab.encode_words(&tokenize_text(target.attr(a).desc_or_empty())))
            .collect();

        let mut pairs: Vec<(Vec<u32>, Vec<u32>, f32)> = Vec::new();
        let mut push_pair = |a: &[u32], b: &[u32], label: f32| {
            if !a.is_empty() && !b.is_empty() {
                pairs.push((a.to_vec(), b.to_vec(), label));
            }
        };
        let random_other = |rng: &mut ChaCha8Rng, not: usize, n: usize| -> usize {
            loop {
                let j = rng.gen_range(0..n);
                if j != not {
                    return j;
                }
            }
        };

        let n = attr_ids.len();
        for i in 0..n {
            // Self-repeating positive + corrupted negative.
            if self.config.use_self_repeating {
                push_pair(&tokenized[i], &tokenized[i], 1.0);
                let j = random_other(&mut rng, i, n);
                push_pair(&tokenized[i], &tokenized[j], 0.0);
            }
            // Self-explaining positive + corrupted negative (needs a desc).
            if self.config.use_self_explaining && !desc_ids[i].is_empty() {
                push_pair(&name_ids[i], &desc_ids[i], 1.0);
                let j = random_other(&mut rng, i, n);
                if !desc_ids[j].is_empty() {
                    push_pair(&name_ids[i], &desc_ids[j], 0.0);
                }
            }
        }
        // PK/FK-linking positives + corrupted negatives.
        if self.config.use_pkfk_linking {
            for fk in &target.foreign_keys {
                push_pair(&tokenized[fk.from.index()], &tokenized[fk.to.index()], 1.0);
                let j = random_other(&mut rng, fk.to.index(), n);
                push_pair(&tokenized[fk.from.index()], &tokenized[j], 0.0);
            }
        }

        // Mix in the paraphrase pairs so the identity-heavy ISS samples do
        // not erase the synonym knowledge, then train end-to-end.
        let mut training_pairs = pairs.clone();
        training_pairs.extend(self.paraphrase_pairs.iter().cloned());
        let (epochs, cap, lr) =
            (self.config.pretrain_epochs, self.config.pretrain_cap, self.config.pretrain_lr);
        self.fit_pairs_end_to_end(&training_pairs, epochs, cap, lr, &mut rng);

        // Cache the replay buffer under the final encoder: ISS samples plus
        // a slice of paraphrase pairs. Sides are encoded through the
        // deduplicating batch path — the same attribute text appears in
        // many replay pairs.
        let mut replay_pairs = pairs;
        let keep = (self.config.replay_cap / 2).min(self.paraphrase_pairs.len());
        replay_pairs.extend(self.paraphrase_pairs.iter().take(keep).cloned());
        let mut sides: Vec<&[u32]> = Vec::with_capacity(replay_pairs.len() * 2);
        for (a, b, _) in &replay_pairs {
            sides.push(a);
            sides.push(b);
        }
        let pooled = self.pooled_many(&sides, crate::featurize::default_threads());
        self.iss_samples = replay_pairs
            .iter()
            .zip(pooled.chunks_exact(2))
            .map(|((_, _, label), uv)| HeadSample {
                u: uv[0].clone(),
                v: uv[1].clone(),
                label: *label,
                weight: 1.0,
            })
            .collect();
        self.label_samples.clear();
    }

    /// Stage 3: folds user labels into the head training set (with the
    /// configured larger weight) and retrains the head only — the encoder
    /// stays frozen so per-attribute pooled caches remain valid.
    pub fn update_with_labels(
        &mut self,
        source: &Schema,
        target: &Schema,
        labels: impl IntoIterator<Item = (AttrId, AttrId, bool)>,
    ) {
        let samples: Vec<(Tensor, Tensor, bool)> = labels
            .into_iter()
            .map(|(s, t, correct)| {
                (
                    self.single_pooled(&self.attr_token_ids(source, s)),
                    self.single_pooled(&self.attr_token_ids(target, t)),
                    correct,
                )
            })
            .collect();
        self.update_with_pooled_labels(samples);
    }

    /// Like [`update_with_labels`](Self::update_with_labels) but takes the
    /// pooled vectors directly — sessions cache per-attribute encodings, so
    /// re-encoding every labeled attribute each round would be wasted work.
    pub fn update_with_pooled_labels(
        &mut self,
        labels: impl IntoIterator<Item = (Tensor, Tensor, bool)>,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.config.seed ^ (0x1abe + self.label_samples.len() as u64),
        );
        self.label_samples.clear();
        for (u, v, correct) in labels {
            self.label_samples.push(HeadSample {
                u,
                v,
                label: if correct { 1.0 } else { 0.0 },
                weight: self.config.label_weight,
            });
        }
        self.train_head(self.config.classifier_epochs, &mut rng);
    }

    /// Trains the head on the replay buffer + label samples.
    fn train_head(&mut self, epochs: usize, rng: &mut ChaCha8Rng) {
        let _span = lsm_obs::span("bert.train_head");
        let mut replay: Vec<&HeadSample> = self.iss_samples.iter().collect();
        if replay.len() > self.config.replay_cap {
            replay.shuffle(rng);
            replay.truncate(self.config.replay_cap);
        }
        let all: Vec<HeadSample> =
            replay.into_iter().chain(self.label_samples.iter()).cloned().collect();
        if all.is_empty() {
            return;
        }
        let mut opt = Adam::new(AdamConfig { lr: self.config.classifier_lr, ..Default::default() });
        let batch = 16;
        let mut order: Vec<usize> = (0..all.len()).collect();
        for _ in 0..epochs {
            order.shuffle(rng);
            for chunk in order.chunks(batch) {
                let mut g = Graph::new();
                let mut losses = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let sample = &all[i];
                    // Symmetric augmentation, as in end-to-end training.
                    let (su, sv) = if rng.gen_bool(0.5) {
                        (&sample.u, &sample.v)
                    } else {
                        (&sample.v, &sample.u)
                    };
                    let u = g.input(su.clone());
                    let v = g.input(sv.clone());
                    let z = self.head.logit(&mut g, &self.store, u, v);
                    losses.push(g.bce_with_logits(z, sample.label, sample.weight));
                }
                let loss = g.mean_scalars(&losses);
                g.backward(loss, &mut self.store);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
        }
    }

    /// Serializes the featurizer (weights, vocabulary, replay buffers) to
    /// a JSON file. Pre-training is by far the most expensive step of the
    /// pipeline, so experiment harnesses cache the result on disk.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a featurizer saved with [`save`](Self::save).
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }

    /// A debug-format snapshot of the configuration; caches compare these
    /// to detect stale artifacts after hyper-parameter changes.
    pub fn config_snapshot(&self) -> String {
        format!("{:?}", self.config)
    }

    /// A fingerprint of the configuration + vocabulary, used by caches to
    /// detect stale artifacts.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.vocab.size().hash(&mut h);
        self.store.scalar_count().hash(&mut h);
        self.config.seed.hash(&mut h);
        self.config.bpe_merges.hash(&mut h);
        h.finish()
    }

    /// Overrides the configuration (used by ablations to toggle the ISS
    /// pre-training sample types on an already MLM-pre-trained featurizer).
    pub fn set_config(&mut self, config: BertFeaturizerConfig) {
        self.config = config;
    }

    /// Number of cached pre-training samples (diagnostics).
    pub fn iss_sample_count(&self) -> usize {
        self.iss_samples.len()
    }

    /// The subword vocabulary.
    pub fn vocab(&self) -> &BpeVocab {
        &self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_lexicon::{ConceptBuilder, ConceptDtype, Domain, Lexicon};
    use lsm_schema::DataType;

    fn tiny_lexicon() -> Lexicon {
        Lexicon::assemble(vec![
            ConceptBuilder::attribute(Domain::Retail, "quantity")
                .syn("unit count")
                .private("item amount")
                .abbr("qty")
                .dtype(ConceptDtype::Integer)
                .desc("number of units in the line")
                .related("total amount"),
            ConceptBuilder::attribute(Domain::Retail, "total amount")
                .syn("line total")
                .dtype(ConceptDtype::Decimal)
                .desc("monetary value of the line"),
            ConceptBuilder::attribute(Domain::Retail, "store city")
                .syn("shop town")
                .dtype(ConceptDtype::Text)
                .desc("city where the store is located"),
            ConceptBuilder::entity(Domain::Retail, "transaction line")
                .syn("order line")
                .desc("one position of a transaction"),
        ])
    }

    fn tiny_target() -> Schema {
        Schema::builder("iss")
            .entity("TransactionLine")
            .attr_desc("transaction_line_id", DataType::Integer, "primary key of the line")
            .attr_desc("quantity", DataType::Integer, "number of units in the line")
            .attr_desc("total_amount", DataType::Decimal, "monetary value of the line")
            .pk("transaction_line_id")
            .entity("Store")
            .attr_desc("store_id", DataType::Integer, "primary key of the store")
            .attr_desc("store_city", DataType::Text, "city where the store is located")
            .attr_desc("transaction_line_id", DataType::Integer, "latest line")
            .pk("store_id")
            .foreign_key("Store", "transaction_line_id", "TransactionLine", "transaction_line_id")
            .build()
            .unwrap()
    }

    fn featurizer() -> BertFeaturizer {
        let lex = tiny_lexicon();
        let mut f = BertFeaturizer::pretrain(&lex, BertFeaturizerConfig::tiny());
        f.pretrain_classifier(&tiny_target());
        f
    }

    #[test]
    fn pretraining_produces_samples_and_scores() {
        let f = featurizer();
        assert!(f.iss_sample_count() > 0);
        let target = tiny_target();
        let score = f.score_pair(&target, AttrId(1), &target, AttrId(1));
        assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn self_pairs_score_above_random_pairs() {
        let f = featurizer();
        let target = tiny_target();
        let self_score = f.score_pair(&target, AttrId(1), &target, AttrId(1));
        let cross_score = f.score_pair(&target, AttrId(1), &target, AttrId(4));
        assert!(self_score > cross_score, "self {self_score:.3} vs cross {cross_score:.3}");
    }

    /// The paraphrase stage must connect private jargon to its concept —
    /// the core claim of the PLM substitution.
    #[test]
    fn paraphrase_knowledge_transfers_to_attribute_names() {
        let f = featurizer();
        let target = tiny_target();
        let source = Schema::builder("cust")
            .entity("Orders")
            .attr("item_amount", DataType::Integer)
            .build()
            .unwrap();
        // item_amount is private jargon for quantity (t attr 1); store_city
        // (t attr 4) is unrelated.
        let syn = f.score_pair(&source, AttrId(0), &target, AttrId(1));
        let unrelated = f.score_pair(&source, AttrId(0), &target, AttrId(4));
        assert!(syn > unrelated, "private synonym {syn:.3} should beat unrelated {unrelated:.3}");
    }

    #[test]
    fn label_updates_move_scores() {
        let mut f = featurizer();
        let target = tiny_target();
        let source = Schema::builder("cust")
            .entity("Orders")
            .attr("pieces_sold", DataType::Integer)
            .build()
            .unwrap();
        let before = f.score_pair(&source, AttrId(0), &target, AttrId(1));
        f.update_with_labels(
            &source,
            &target,
            vec![(AttrId(0), AttrId(1), true), (AttrId(0), AttrId(4), false)],
        );
        let after = f.score_pair(&source, AttrId(0), &target, AttrId(1));
        assert!(after > before, "label update should raise the pair: {before:.3} → {after:.3}");
    }

    #[test]
    fn pooled_vectors_are_deterministic_and_cacheable() {
        let f = featurizer();
        let target = tiny_target();
        let ids = f.attr_token_ids(&target, AttrId(1));
        let p1 = f.single_pooled(&ids);
        let p2 = f.single_pooled(&ids);
        assert_eq!(p1, p2);
        let v = f.single_pooled(&f.attr_token_ids(&target, AttrId(2)));
        let direct = f.score_pair(&target, AttrId(1), &target, AttrId(2));
        let cached = f.classify_pooled(&p1, &v);
        assert!((direct - cached).abs() < 1e-9);
    }

    /// Disk persistence must preserve behaviour exactly — the experiment
    /// harness caches pre-trained featurizers between runs.
    #[test]
    fn save_load_round_trip_preserves_scores() {
        let f = featurizer();
        let target = tiny_target();
        let dir = std::env::temp_dir().join("lsm_featurizer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("featurizer.json");
        f.save(&path).unwrap();
        let loaded = BertFeaturizer::load(&path).unwrap();
        assert_eq!(loaded.config_snapshot(), f.config_snapshot());
        assert_eq!(loaded.iss_sample_count(), f.iss_sample_count());
        for s in target.attr_ids() {
            for t in target.attr_ids() {
                let a = f.score_pair(&target, s, &target, t);
                let b = loaded.score_pair(&target, s, &target, t);
                assert!((a - b).abs() < 1e-9, "({s}, {t}): {a} vs {b}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_pooled_handles_empty_ids() {
        let f = featurizer();
        let p = f.single_pooled(&[]);
        assert!(p.data().iter().all(|&v| v == 0.0));
    }

    fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
        a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
    }

    /// Backend selection: every fast backend stays close to the F32 graph
    /// path on pooled vectors, re-selection is bitwise-reproducible, and
    /// switching back to F32 restores the original bits exactly.
    #[test]
    fn fast_backends_track_f32_and_are_deterministic() {
        let mut f = featurizer();
        let target = tiny_target();
        let ids: Vec<Vec<u32>> = target.attr_ids().map(|a| f.attr_token_ids(&target, a)).collect();
        assert_eq!(f.backend(), EncoderBackend::F32);
        let reference: Vec<Tensor> = ids.iter().map(|i| f.single_pooled(i)).collect();

        for (backend, tol) in
            [(EncoderBackend::Simd, 1e-4), (EncoderBackend::F16, 2e-2), (EncoderBackend::Int8, 0.2)]
        {
            f.set_backend(backend);
            assert_eq!(f.backend(), backend);
            let first: Vec<Tensor> = ids.iter().map(|i| f.single_pooled(i)).collect();
            for (r, p) in reference.iter().zip(&first) {
                let d = max_abs_diff(r, p);
                assert!(d < tol, "{} drifted {d} from f32", backend.name());
            }
            // Re-selecting the same backend (including a fresh int8
            // calibration pass) must reproduce identical bits.
            f.set_backend(backend);
            for (a, b) in first.iter().zip(ids.iter().map(|i| f.single_pooled(i))) {
                let same = a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "{} not deterministic across re-selection", backend.name());
            }
        }

        f.set_backend(EncoderBackend::F32);
        for (r, i) in reference.iter().zip(&ids) {
            assert_eq!(r, &f.single_pooled(i), "F32 path changed after backend round-trip");
        }
    }

    /// The batched path must agree with singles under a fast backend too
    /// (the plan is `Sync`; workers share it without a graph).
    #[test]
    fn batched_pooling_matches_singles_under_int8() {
        let mut f = featurizer();
        let target = tiny_target();
        f.set_backend(EncoderBackend::Int8);
        let ids: Vec<Vec<u32>> = target.attr_ids().map(|a| f.attr_token_ids(&target, a)).collect();
        let refs: Vec<&[u32]> = ids.iter().map(|v| v.as_slice()).collect();
        for threads in [1, 4] {
            for (i, p) in f.pooled_many(&refs, threads).iter().enumerate() {
                let single = f.single_pooled(refs[i]);
                let same =
                    single.data().iter().zip(p.data()).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "int8 pooled_many diverged at threads={threads}");
            }
        }
    }

    /// Classifier pre-training mutates the encoder, so it must drop any
    /// compiled plan back to the F32 path (stale-snapshot guard).
    #[test]
    fn encoder_training_resets_fast_backend() {
        let mut f = featurizer();
        f.set_backend(EncoderBackend::Simd);
        assert_eq!(f.backend(), EncoderBackend::Simd);
        f.pretrain_classifier(&tiny_target());
        assert_eq!(f.backend(), EncoderBackend::F32);
    }

    /// The batched inference paths must be drop-in replacements: same
    /// bits as the single-item paths, at every thread count.
    #[test]
    fn batched_paths_match_singles_bitwise() {
        let f = featurizer();
        let target = tiny_target();
        let ids: Vec<Vec<u32>> = target.attr_ids().map(|a| f.attr_token_ids(&target, a)).collect();
        let refs: Vec<&[u32]> = ids.iter().map(|v| v.as_slice()).collect();
        for threads in [1, 4] {
            let many = f.pooled_many(&refs, threads);
            for (ids, p) in refs.iter().zip(&many) {
                let single = f.single_pooled(ids);
                let same_bits =
                    single.data().iter().zip(p.data()).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same_bits, "pooled_many diverged at threads={threads}");
            }
            let pairs: Vec<(&Tensor, &Tensor)> =
                many.iter().flat_map(|u| many.iter().map(move |v| (u, v))).collect();
            let batch = f.classify_pooled_batch(&pairs, threads);
            for (&(u, v), b) in pairs.iter().zip(&batch) {
                assert_eq!(
                    f.classify_pooled(u, v).to_bits(),
                    b.to_bits(),
                    "batched head diverged at threads={threads}"
                );
            }
        }
    }
}
