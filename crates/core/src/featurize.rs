//! The cheap featurizers: lexical and word-embedding scores for every
//! candidate pair (Section IV-C2), computed once per session.

use crossbeam::thread;
use lsm_embedding::EmbeddingSpace;
use lsm_schema::{AttrId, Schema, ScoreMatrix};
use lsm_text::lexical_similarity;

/// Indices of the feature columns in the meta-learner input.
pub mod feature {
    /// Lexical featurizer (LCS / min-length).
    pub const LEXICAL: usize = 0;
    /// Word-embedding featurizer (cosine).
    pub const EMBEDDING: usize = 1;
    /// BERT featurizer (matching-classifier probability).
    pub const BERT: usize = 2;
    /// Total number of features.
    pub const COUNT: usize = 3;
}

/// Dense per-pair feature storage: one [`ScoreMatrix`] per feature column.
#[derive(Debug, Clone)]
pub struct FeatureTable {
    /// `columns[f]` is the matrix of feature `f` scores.
    pub columns: Vec<ScoreMatrix>,
}

impl FeatureTable {
    /// The feature vector of one pair.
    pub fn vector(&self, s: AttrId, t: AttrId) -> [f64; feature::COUNT] {
        let mut v = [0.0; feature::COUNT];
        for (f, col) in self.columns.iter().enumerate() {
            v[f] = col.get(s, t);
        }
        v
    }

    /// Mutable access to one feature column (the BERT column is refreshed
    /// whenever the classifier is updated).
    pub fn column_mut(&mut self, f: usize) -> &mut ScoreMatrix {
        &mut self.columns[f]
    }

    /// Immutable access to one feature column.
    pub fn column(&self, f: usize) -> &ScoreMatrix {
        &self.columns[f]
    }
}

/// Computes the lexical feature over all pairs, parallelized across source
/// rows with scoped threads.
pub fn lexical_features(source: &Schema, target: &Schema, threads: usize) -> ScoreMatrix {
    let _span = lsm_obs::span("featurize.lexical");
    let ns = source.attr_count();
    let nt = target.attr_count();
    let mut m = ScoreMatrix::zeros(ns, nt);
    let t_names: Vec<&str> = target.attributes.iter().map(|a| a.name.as_str()).collect();
    let rows: Vec<(usize, Vec<f64>)> = parallel_rows(ns, threads, |s| {
        let s_name = &source.attributes[s].name;
        t_names.iter().map(|t| lexical_similarity(s_name, t)).collect()
    });
    for (s, row) in rows {
        m.row_mut(AttrId(s as u32)).copy_from_slice(&row);
    }
    m
}

/// Computes the embedding feature over all pairs. Attribute vectors are
/// computed once per attribute, then cosines per pair.
pub fn embedding_features(
    space: &EmbeddingSpace,
    source: &Schema,
    target: &Schema,
    threads: usize,
) -> ScoreMatrix {
    let _span = lsm_obs::span("featurize.embedding");
    let ns = source.attr_count();
    let nt = target.attr_count();
    let s_vecs: Vec<Vec<f32>> =
        source.attributes.iter().map(|a| space.identifier_vector(&a.name)).collect();
    let t_vecs: Vec<Vec<f32>> =
        target.attributes.iter().map(|a| space.identifier_vector(&a.name)).collect();
    let mut m = ScoreMatrix::zeros(ns, nt);
    let rows: Vec<(usize, Vec<f64>)> = parallel_rows(ns, threads, |s| {
        t_vecs.iter().map(|t| lsm_embedding::space::cosine(&s_vecs[s], t)).collect()
    });
    for (s, row) in rows {
        m.row_mut(AttrId(s as u32)).copy_from_slice(&row);
    }
    m
}

/// Runs `work` for each row index on `threads` scoped worker threads,
/// returning `(row, result)` pairs in arbitrary order.
pub fn parallel_rows<F, R>(rows: usize, threads: usize, work: F) -> Vec<(usize, R)>
where
    F: Fn(usize) -> R + Sync,
    R: Send,
{
    let threads = threads.max(1).min(rows.max(1));
    if threads <= 1 {
        return (0..rows).map(|r| (r, work(r))).collect();
    }
    let work = &work;
    let mut out: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut r = w;
                    while r < rows {
                        local.push((r, work(r)));
                        r += threads;
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("thread scope failed");
    out.sort_by_key(|&(r, _)| r);
    out
}

/// Like [`parallel_rows`] but each worker thread carries reusable state
/// created by `init` — e.g. an inference-mode `Graph` arena — passed
/// mutably to every `work` call on that worker.
pub fn parallel_rows_stateful<S, I, F, R>(
    rows: usize,
    threads: usize,
    init: I,
    work: F,
) -> Vec<(usize, R)>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
    R: Send,
{
    let threads = threads.max(1).min(rows.max(1));
    if threads <= 1 {
        let mut state = init();
        return (0..rows).map(|r| (r, work(&mut state, r))).collect();
    }
    let (init, work) = (&init, &work);
    let mut out: Vec<(usize, R)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move |_| {
                    let mut state = init();
                    let mut local = Vec::new();
                    let mut r = w;
                    while r < rows {
                        local.push((r, work(&mut state, r)));
                        r += threads;
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("thread scope failed");
    out.sort_by_key(|&(r, _)| r);
    out
}

/// A sensible worker count for featurization.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_embedding::EmbeddingConfig;
    use lsm_lexicon::full_lexicon;
    use lsm_schema::DataType;

    fn pair() -> (Schema, Schema) {
        let s = Schema::builder("s")
            .entity("E")
            .attr("qty", DataType::Integer)
            .attr("unit_count", DataType::Integer)
            .build()
            .unwrap();
        let t = Schema::builder("t")
            .entity("F")
            .attr("quantity", DataType::Integer)
            .attr("city", DataType::Text)
            .build()
            .unwrap();
        (s, t)
    }

    #[test]
    fn lexical_features_match_direct_computation() {
        let (s, t) = pair();
        let m = lexical_features(&s, &t, 4);
        assert_eq!(m.get(AttrId(0), AttrId(0)), lexical_similarity("qty", "quantity"));
        assert_eq!(m.get(AttrId(1), AttrId(1)), lexical_similarity("unit_count", "city"));
    }

    #[test]
    fn parallel_and_serial_agree() {
        let (s, t) = pair();
        let serial = lexical_features(&s, &t, 1);
        let parallel = lexical_features(&s, &t, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn embedding_features_capture_synonyms() {
        let lex = full_lexicon();
        let space = lsm_embedding::EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        let (s, t) = pair();
        let m = embedding_features(&space, &s, &t, 2);
        // unit_count (public syn of quantity) beats city.
        assert!(m.get(AttrId(1), AttrId(0)) > m.get(AttrId(1), AttrId(1)));
    }

    #[test]
    fn feature_table_vectors() {
        let (s, t) = pair();
        let lex = lexical_features(&s, &t, 1);
        let table = FeatureTable {
            columns: vec![lex.clone(), ScoreMatrix::zeros(2, 2), ScoreMatrix::zeros(2, 2)],
        };
        let v = table.vector(AttrId(0), AttrId(0));
        assert_eq!(v[feature::LEXICAL], lex.get(AttrId(0), AttrId(0)));
        assert_eq!(v[feature::BERT], 0.0);
    }

    #[test]
    fn parallel_rows_covers_all_indices() {
        let results = parallel_rows(17, 4, |r| r * 2);
        assert_eq!(results.len(), 17);
        for (r, v) in results {
            assert_eq!(v, r * 2);
        }
        // Zero rows is fine.
        assert!(parallel_rows(0, 4, |r| r).is_empty());
    }

    #[test]
    fn parallel_rows_stateful_covers_indices_and_reuses_state() {
        for threads in [1, 3, 8] {
            let results = parallel_rows_stateful(
                10,
                threads,
                || 0usize,
                |calls, r| {
                    *calls += 1;
                    (r * 3, *calls)
                },
            );
            assert_eq!(results.len(), 10);
            let mut max_calls = 0;
            for (r, (v, calls)) in results {
                assert_eq!(v, r * 3);
                max_calls = max_calls.max(calls);
            }
            // With fewer workers than rows, some worker must have seen its
            // state survive across calls.
            assert!(max_calls >= 10usize.div_ceil(threads));
        }
    }
}
