//! Attribute-selection strategies for active learning (Section IV-E2).
//!
//! The *least-confident-anchor* strategy keeps an anchor set — by default
//! the primary/foreign keys of the source schema — and asks the user to
//! label the unlabeled anchor with the lowest prediction confidence
//! (softmax of the row's matching scores). Once every anchor is labeled,
//! least-confidence selection extends to all remaining attributes. The
//! random strategy is the Fig. 5 control.

use crate::labels::LabelStore;
use lsm_schema::{AttrId, Schema, ScoreMatrix};
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;

/// How the next attribute(s) to label are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Least-confident-anchor (the paper's smart strategy).
    LeastConfidentAnchor,
    /// Uniformly random among unmatched attributes (the control).
    Random,
}

/// Selects up to `n` unmatched source attributes for the user to label.
///
/// * `scores` — the current prediction matrix (for confidences),
/// * `anchors` — the anchor set (pass [`Schema::anchor_set`] output or a
///   user-provided set),
/// * on the very first iteration (no labels at all) the smart strategy
///   takes the first `n` anchors, as the paper specifies.
pub fn select_attributes(
    strategy: SelectionStrategy,
    source: &Schema,
    scores: &ScoreMatrix,
    labels: &LabelStore,
    anchors: &[AttrId],
    n: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<AttrId> {
    let unmatched: Vec<AttrId> = source.attr_ids().filter(|&a| !labels.is_matched(a)).collect();
    if unmatched.is_empty() || n == 0 {
        return Vec::new();
    }
    match strategy {
        SelectionStrategy::Random => {
            let mut pool = unmatched;
            pool.shuffle(rng);
            pool.truncate(n);
            pool
        }
        SelectionStrategy::LeastConfidentAnchor => {
            let unmatched_anchors: Vec<AttrId> =
                anchors.iter().copied().filter(|&a| !labels.is_matched(a)).collect();
            // First iteration: take the anchors in order.
            if labels.matched_count() == 0 && !unmatched_anchors.is_empty() {
                return unmatched_anchors.into_iter().take(n).collect();
            }
            let pool = if unmatched_anchors.is_empty() { unmatched } else { unmatched_anchors };
            let mut by_confidence: Vec<(AttrId, f64)> =
                pool.into_iter().map(|a| (a, scores.softmax_confidence(a))).collect();
            // total_cmp: a NaN confidence (possible when a score row is
            // poisoned) must sort as a value — greater than every number —
            // not silently collapse to Equal and fall back to pool order,
            // which would break the documented AttrId tie-break.
            by_confidence.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            by_confidence.into_iter().take(n).map(|(a, _)| a).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_schema::DataType;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::builder("s")
            .entity("A")
            .attr("a_id", DataType::Integer)
            .attr("x", DataType::Text)
            .attr("y", DataType::Text)
            .pk("a_id")
            .entity("B")
            .attr("b_id", DataType::Integer)
            .attr("a_id", DataType::Integer)
            .pk("b_id")
            .foreign_key("B", "a_id", "A", "a_id")
            .build()
            .unwrap()
    }

    fn peaked_scores() -> ScoreMatrix {
        // 5 source attrs × 4 targets; row confidence increases with row id.
        let mut m = ScoreMatrix::zeros(5, 4);
        for s in 0..5u32 {
            m.set(AttrId(s), AttrId(0), s as f64 * 2.0);
        }
        m
    }

    #[test]
    fn first_iteration_takes_anchors_in_order() {
        let s = schema();
        let anchors = s.anchor_set();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let picked = select_attributes(
            SelectionStrategy::LeastConfidentAnchor,
            &s,
            &peaked_scores(),
            &LabelStore::new(),
            &anchors,
            2,
            &mut rng,
        );
        assert_eq!(picked, anchors[..2].to_vec());
    }

    #[test]
    fn smart_selection_prefers_least_confident_anchor() {
        let s = schema();
        let anchors = s.anchor_set(); // a_id(0), b_id(3), a_id(4)
        let mut labels = LabelStore::new();
        labels.confirm(AttrId(0), AttrId(0)); // not the first iteration anymore
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let picked = select_attributes(
            SelectionStrategy::LeastConfidentAnchor,
            &s,
            &peaked_scores(),
            &labels,
            &anchors,
            1,
            &mut rng,
        );
        // Remaining anchors are rows 3 and 4; row 3 is less peaked.
        assert_eq!(picked, vec![AttrId(3)]);
    }

    #[test]
    fn selection_extends_past_exhausted_anchors() {
        let s = schema();
        let anchors = s.anchor_set();
        let mut labels = LabelStore::new();
        for &a in &anchors {
            labels.confirm(a, AttrId(0));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let picked = select_attributes(
            SelectionStrategy::LeastConfidentAnchor,
            &s,
            &peaked_scores(),
            &labels,
            &anchors,
            1,
            &mut rng,
        );
        // Non-anchor rows are 1 and 2; row 1 is less confident.
        assert_eq!(picked, vec![AttrId(1)]);
    }

    /// A poisoned (all-NaN-confidence) row set must still select
    /// deterministically by the AttrId tie-break, and a NaN row must never
    /// outrank a finite low-confidence row.
    #[test]
    fn nan_confidences_sort_deterministically() {
        let s = schema();
        let anchors = s.anchor_set(); // rows 0, 3, 4
        let mut labels = LabelStore::new();
        labels.confirm(AttrId(0), AttrId(0)); // past the first iteration

        // Row 3 gets a NaN confidence (0/0-style poisoned scores); row 4
        // stays finite and must win the least-confident pick.
        let mut m = peaked_scores();
        for v in m.row_mut(AttrId(3)) {
            *v = f64::NAN;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let picked = select_attributes(
            SelectionStrategy::LeastConfidentAnchor,
            &s,
            &m,
            &labels,
            &anchors,
            1,
            &mut rng,
        );
        assert_eq!(picked, vec![AttrId(4)], "NaN sorts above every finite confidence");

        // All candidates NaN: the AttrId tie-break decides, deterministically.
        for v in m.row_mut(AttrId(4)) {
            *v = f64::NAN;
        }
        let picked = select_attributes(
            SelectionStrategy::LeastConfidentAnchor,
            &s,
            &m,
            &labels,
            &anchors,
            2,
            &mut rng,
        );
        assert_eq!(picked, vec![AttrId(3), AttrId(4)]);
    }

    #[test]
    fn random_selection_only_returns_unmatched() {
        let s = schema();
        let mut labels = LabelStore::new();
        labels.confirm(AttrId(0), AttrId(0));
        labels.confirm(AttrId(1), AttrId(1));
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let picked = select_attributes(
            SelectionStrategy::Random,
            &s,
            &peaked_scores(),
            &labels,
            &[],
            10,
            &mut rng,
        );
        assert_eq!(picked.len(), 3);
        assert!(!picked.contains(&AttrId(0)));
        assert!(!picked.contains(&AttrId(1)));
    }

    #[test]
    fn empty_when_everything_matched() {
        let s = schema();
        let mut labels = LabelStore::new();
        for a in s.attr_ids() {
            labels.confirm(a, AttrId(0));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for strategy in [SelectionStrategy::Random, SelectionStrategy::LeastConfidentAnchor] {
            let picked = select_attributes(
                strategy,
                &s,
                &peaked_scores(),
                &labels,
                &s.anchor_set(),
                1,
                &mut rng,
            );
            assert!(picked.is_empty());
        }
    }
}
