//! # lsm-core
//!
//! The Learned Schema Matcher (LSM) — the paper's primary contribution.
//!
//! The matching pipeline (Fig. 2 of the paper):
//!
//! 1. **Preparation** — candidate pairs are the Cartesian product
//!    `As × At`; all start unlabeled ([`labels::LabelStore`]).
//! 2. **Featurization** — three featurizers score every pair: the
//!    fine-tuned BERT featurizer ([`bert_featurizer`]), the word-embedding
//!    featurizer, and the lexical featurizer ([`featurize`]).
//! 3. **Training & prediction** — a logistic meta-learner trained with
//!    self-training (semi-supervised) combines the featurizer scores
//!    ([`meta`]); predictions are adjusted by data-type gating and the
//!    new-entity penalty, and top-k suggestions are emitted
//!    ([`matcher::LsmMatcher`]).
//! 4. **User interaction** — the user reviews suggestions and labels the
//!    attribute chosen by the *least-confident-anchor* strategy
//!    ([`active`]); the simulated user lives in [`oracle`], the end-to-end
//!    loop in [`session`].
//!
//! [`eval`] hosts the non-interactive evaluation protocol (Tables III/IV,
//! Fig. 4) shared with the baselines.
//!
//! ## Scale engineering (documented substitution)
//!
//! The paper fine-tunes all of BERT every iteration on a Tesla P100. On
//! CPU, we freeze the MLM-pre-trained encoder and train only the matching
//! classifier head — both during the per-ISS classifier pre-training and
//! during per-iteration label updates. Pooled pair encodings are therefore
//! cacheable, which makes the interactive loop tractable while preserving
//! the architecture and the training signals of the paper. The
//! cross-encoder is evaluated on a per-source-attribute shortlist chosen by
//! the cheap featurizers plus a bi-encoder pass (pooled-vector cosine) that
//! itself carries the MLM knowledge, so hard matches still surface.

#![forbid(unsafe_code)]

pub mod active;
pub mod bert_featurizer;
pub mod eval;
pub mod featurize;
pub mod labels;
pub mod matcher;
pub mod meta;
pub mod metrics;
pub mod oracle;
pub mod session;

pub use active::SelectionStrategy;
pub use bert_featurizer::{BertFeaturizer, BertFeaturizerConfig, EncoderBackend, PooledCache};
pub use eval::{evaluate_split, SplitEvaluation};
pub use labels::{Label, LabelStore};
pub use matcher::{LsmConfig, LsmMatcher};
pub use meta::{MetaLearner, SelfTrainingConfig};
pub use metrics::{CurvePoint, SessionOutcome};
pub use oracle::{NoisyOracle, Oracle, PerfectOracle};
pub use session::{
    iteration_rng, resume_session, run_session, run_session_with_sink, NullSink,
    PinnedBaselineEngine, ReviewOutcome, SessionConfig, SessionEvent, SessionSink, SessionState,
    SinkError, SuggestionEngine,
};
