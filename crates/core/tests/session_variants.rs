//! External tests of the session driver under non-default configurations:
//! batch labeling (N > 1), ablated scoring, larger k, and degenerate
//! schemata.

use lsm_core::metrics::manual_labeling_curve;
use lsm_core::session::PinnedBaselineEngine;
use lsm_core::{
    run_session, LabelStore, LsmConfig, LsmMatcher, PerfectOracle, SelectionStrategy,
    SessionConfig, SuggestionEngine,
};
use lsm_datasets::customers::{generate_customer, CustomerSpec};
use lsm_datasets::iss::{generate_retail_iss, IssConfig};
use lsm_datasets::rename::{NamingStyle, RenameMix};
use lsm_datasets::Dataset;
use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::full_lexicon;
use lsm_schema::{DataType, Schema, ScoreMatrix};

fn task() -> (EmbeddingSpace, Dataset) {
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let iss = generate_retail_iss(&lexicon, IssConfig::small());
    let spec = CustomerSpec {
        name: "Variant Customer",
        entities: 3,
        attributes: 20,
        foreign_keys: 2,
        descriptions: false,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0xabc,
    };
    (embedding, generate_customer(&iss, &lexicon, spec, 31))
}

fn matcher(embedding: &EmbeddingSpace, d: &Dataset, config: LsmConfig) -> LsmMatcher {
    LsmMatcher::new(&d.source, &d.target, embedding, None, config)
}

#[test]
fn batch_labeling_needs_fewer_iterations() {
    let (embedding, d) = task();
    let run = |n: usize| {
        let mut m = matcher(&embedding, &d, LsmConfig { use_bert: false, ..Default::default() });
        let mut oracle = PerfectOracle::new(d.ground_truth.clone());
        let config = SessionConfig { labels_per_iter: n, ..Default::default() };
        run_session(&mut m, &mut oracle, config)
    };
    let one = run(1);
    let three = run(3);
    assert_eq!(one.curve.last().unwrap().matched, d.source.attr_count());
    assert_eq!(three.curve.last().unwrap().matched, d.source.attr_count());
    // Batch labeling runs fewer retrain rounds (iterations ≈ curve points).
    assert!(three.curve.len() <= one.curve.len());
}

#[test]
fn ablated_scoring_still_terminates() {
    let (embedding, d) = task();
    for config in [
        LsmConfig { use_bert: false, dtype_gating: false, ..Default::default() },
        LsmConfig { use_bert: false, entity_penalty: false, ..Default::default() },
        LsmConfig { use_bert: false, top_k: 5, ..Default::default() },
    ] {
        let mut m = matcher(&embedding, &d, config);
        let mut oracle = PerfectOracle::new(d.ground_truth.clone());
        let outcome = run_session(
            &mut m,
            &mut oracle,
            SessionConfig { top_k: config.top_k, ..Default::default() },
        );
        assert_eq!(outcome.curve.last().unwrap().matched, d.source.attr_count());
    }
}

#[test]
fn wider_review_list_reduces_label_cost() {
    let (embedding, d) = task();
    let run = |k: usize| {
        let mut m =
            matcher(&embedding, &d, LsmConfig { use_bert: false, top_k: k, ..Default::default() });
        let mut oracle = PerfectOracle::new(d.ground_truth.clone());
        run_session(&mut m, &mut oracle, SessionConfig { top_k: k, ..Default::default() })
    };
    let narrow = run(1);
    let wide = run(5);
    // Reviewing 5 suggestions catches more matches per round than 1.
    assert!(wide.labels_used <= narrow.labels_used);
}

#[test]
fn single_attribute_schema_terminates_immediately_after_one_interaction() {
    let source = Schema::builder("one").entity("E").attr("lonely", DataType::Text).build().unwrap();
    let mut scores = ScoreMatrix::zeros(1, 2);
    scores.set(lsm_schema::AttrId(0), lsm_schema::AttrId(1), 0.9);
    let truth =
        lsm_schema::GroundTruth::from_pairs([(lsm_schema::AttrId(0), lsm_schema::AttrId(1))]);
    let mut engine = PinnedBaselineEngine::new(source, scores);
    let mut oracle = PerfectOracle::new(truth);
    let outcome = run_session(&mut engine, &mut oracle, SessionConfig::default());
    assert_eq!(outcome.curve.last().unwrap().matched_correct, 1);
    // The correct target was in the top suggestions: zero labels needed.
    assert_eq!(outcome.labels_used, 0);
}

#[test]
fn random_strategy_differs_across_seeds_but_smart_does_not() {
    let (embedding, d) = task();
    let run = |strategy, seed| {
        let mut m = matcher(&embedding, &d, LsmConfig { use_bert: false, ..Default::default() });
        let mut oracle = PerfectOracle::new(d.ground_truth.clone());
        let config = SessionConfig { strategy, seed, ..Default::default() };
        run_session(&mut m, &mut oracle, config)
    };
    let smart_a = run(SelectionStrategy::LeastConfidentAnchor, 1);
    let smart_b = run(SelectionStrategy::LeastConfidentAnchor, 2);
    assert_eq!(smart_a.curve, smart_b.curve, "smart selection is seed-independent");
    let manual = manual_labeling_curve(d.source.attr_count());
    assert!(smart_a.area_above_curve() < manual.area_above_curve());
}

/// Labels provided through the engine trait must round-trip: a retrained
/// matcher pins confirmed rows in its predictions.
#[test]
fn engine_trait_contract() {
    let (embedding, d) = task();
    let mut m = matcher(&embedding, &d, LsmConfig { use_bert: false, ..Default::default() });
    let mut labels = LabelStore::new();
    let (s, t) = d.ground_truth.pairs().next().unwrap();
    labels.confirm(s, t);
    SuggestionEngine::retrain(&mut m, &labels);
    let scores = SuggestionEngine::predict(&m, &labels);
    assert_eq!(scores.best(s).unwrap().0, t);
}
