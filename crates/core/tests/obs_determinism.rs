//! Tracing must be observation-only: every matcher/session result is
//! bitwise identical with the obs sink on vs. off, and the recorded
//! `session.respond` stage is the *same measurement* as
//! `SessionOutcome::response_times` (totals agree exactly, not just
//! within the 1% acceptance bound).

use lsm_core::{
    run_session, BertFeaturizer, BertFeaturizerConfig, LabelStore, LsmConfig, LsmMatcher,
    PerfectOracle, SessionConfig,
};
use lsm_datasets::customers::{generate_customer, CustomerSpec};
use lsm_datasets::iss::{generate_retail_iss, IssConfig};
use lsm_datasets::rename::{NamingStyle, RenameMix};
use lsm_datasets::Dataset;
use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::{full_lexicon, ConceptBuilder, ConceptDtype, Domain, Lexicon};
use lsm_schema::{AttrId, DataType, Schema, ScoreMatrix};

/// The obs sink is process-global: never interleave these tests.
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn task() -> (EmbeddingSpace, Dataset) {
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let iss = generate_retail_iss(&lexicon, IssConfig::small());
    let spec = CustomerSpec {
        name: "Obs Customer",
        entities: 3,
        attributes: 18,
        foreign_keys: 2,
        descriptions: false,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0x0b5,
    };
    (embedding, generate_customer(&iss, &lexicon, spec, 7))
}

fn assert_matrices_bitwise_equal(a: &ScoreMatrix, b: &ScoreMatrix, rows: usize) {
    for i in 0..rows {
        let s = AttrId(i as u32);
        let (ra, rb) = (a.row(s), b.row(s));
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.to_bits(), y.to_bits(), "row {i} diverges with tracing on");
        }
    }
}

#[test]
fn no_bert_predict_and_session_identical_with_tracing_on_vs_off() {
    let _g = serial();
    let (embedding, d) = task();
    let config = LsmConfig { use_bert: false, ..Default::default() };

    lsm_obs::reset();
    lsm_obs::disable();
    let matcher_off = LsmMatcher::new(&d.source, &d.target, &embedding, None, config);
    let scores_off = matcher_off.predict(&LabelStore::new());
    let mut m = matcher_off;
    let mut oracle = PerfectOracle::new(d.ground_truth.clone());
    let outcome_off = run_session(&mut m, &mut oracle, SessionConfig::default());

    lsm_obs::enable();
    let matcher_on = LsmMatcher::new(&d.source, &d.target, &embedding, None, config);
    let scores_on = matcher_on.predict(&LabelStore::new());
    let mut m = matcher_on;
    let mut oracle = PerfectOracle::new(d.ground_truth.clone());
    let outcome_on = run_session(&mut m, &mut oracle, SessionConfig::default());
    lsm_obs::disable();

    assert_matrices_bitwise_equal(&scores_off, &scores_on, d.source.attr_count());
    assert_eq!(outcome_off.curve, outcome_on.curve);
    assert_eq!(outcome_off.labels_used, outcome_on.labels_used);
    assert_eq!(outcome_off.reviews_done, outcome_on.reviews_done);
}

#[test]
fn respond_stage_is_the_same_measurement_as_response_times() {
    let _g = serial();
    let (embedding, d) = task();
    let config = LsmConfig { use_bert: false, ..Default::default() };

    lsm_obs::reset();
    lsm_obs::enable();
    let mut m = LsmMatcher::new(&d.source, &d.target, &embedding, None, config);
    let mut oracle = PerfectOracle::new(d.ground_truth.clone());
    let outcome = run_session(&mut m, &mut oracle, SessionConfig::default());
    lsm_obs::disable();

    let snap = lsm_obs::snapshot();
    let respond = snap.stage("session.respond").expect("respond stage recorded");
    assert_eq!(respond.count as usize, outcome.response_times.len());
    let sum: f64 = outcome.response_times.iter().sum();
    // Identical f64 samples accumulated in identical order: exact match,
    // far inside the 1% acceptance bound.
    assert!(
        (respond.total_s - sum).abs() <= 1e-12 * sum.max(1.0),
        "stage total {} vs response_times sum {}",
        respond.total_s,
        sum
    );
    let iteration = snap.stage("session.iteration").expect("iteration stage recorded");
    assert_eq!(iteration.count, respond.count);
    assert!(iteration.total_s >= respond.total_s);
}

// -- tiny-BERT variant: the heavily instrumented path (encoder forwards,
// head batches, pooled cache) must also be observation-only. ------------

fn tiny_lexicon() -> Lexicon {
    Lexicon::assemble(vec![
        ConceptBuilder::attribute(Domain::Retail, "quantity")
            .syn("unit count")
            .abbr("qty")
            .dtype(ConceptDtype::Integer)
            .desc("number of units in the line"),
        ConceptBuilder::attribute(Domain::Retail, "total amount")
            .syn("line total")
            .dtype(ConceptDtype::Decimal)
            .desc("monetary value of the line"),
        ConceptBuilder::attribute(Domain::Retail, "store city")
            .syn("shop town")
            .dtype(ConceptDtype::Text)
            .desc("city where the store is located"),
        ConceptBuilder::entity(Domain::Retail, "transaction line")
            .syn("order line")
            .desc("one position of a transaction"),
    ])
}

fn tiny_schema(name: &str) -> Schema {
    Schema::builder(name)
        .entity("TransactionLine")
        .attr_desc("line_id", DataType::Integer, "primary key of the line")
        .attr_desc("quantity", DataType::Integer, "number of units in the line")
        .attr_desc("total_amount", DataType::Decimal, "monetary value of the line")
        .attr_desc("store_city", DataType::Text, "city where the store is located")
        .pk("line_id")
        .build()
        .unwrap()
}

#[test]
fn tiny_bert_predict_identical_with_tracing_on_vs_off() {
    let _g = serial();
    let lexicon = tiny_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let target = tiny_schema("target");
    let source = tiny_schema("source");
    let mut bert = BertFeaturizer::pretrain(&lexicon, BertFeaturizerConfig::tiny());
    bert.pretrain_classifier(&target);
    let config = LsmConfig { use_bert: true, ..Default::default() };

    lsm_obs::reset();
    lsm_obs::disable();
    let m_off = LsmMatcher::new(&source, &target, &embedding, Some(bert.clone()), config);
    let scores_off = m_off.predict(&LabelStore::new());

    lsm_obs::enable();
    let m_on = LsmMatcher::new(&source, &target, &embedding, Some(bert), config);
    let scores_on = m_on.predict(&LabelStore::new());
    lsm_obs::disable();

    assert_matrices_bitwise_equal(&scores_off, &scores_on, source.attr_count());

    // And the instrumentation did see the BERT path.
    let snap = lsm_obs::snapshot();
    assert!(snap.counter("encoder_forwards") > 0);
    assert!(snap.counter("head_pairs") > 0);
    assert!(snap.counter("gemm_calls") > 0);
    assert!(snap.stage("bert.pooled_many").is_some());
    assert!(snap.stage("matcher.score_shortlists").is_some());
}
