//! End-to-end accuracy gate for the quantized encoder backends.
//!
//! The int8 plan trades the f32 graph path's bit-exactness for speed.
//! This test pins the price on a real tier-1 matching task: on the
//! MovieLens→IMDB public pair, F1 under the decision rule the session
//! loop uses (one argmax-predicted target per source attribute) must stay
//! within 0.5 points — 0.005 absolute, the ISSUE 6 gate — of the f32
//! path. Because source attribute count equals ground-truth match count,
//! precision = recall = F1 = top-1 accuracy under this rule; we still
//! report it as F1 to match the paper's tables.

use lsm_core::{BertFeaturizer, BertFeaturizerConfig, EncoderBackend};
use lsm_datasets::Dataset;
use lsm_lexicon::full_lexicon;
use lsm_nn::Tensor;

/// Matching F1 under the one-prediction-per-source-attribute rule.
fn matching_f1(f: &BertFeaturizer, d: &Dataset) -> f64 {
    let src_ids: Vec<Vec<u32>> =
        d.source.attr_ids().map(|a| f.attr_token_ids(&d.source, a)).collect();
    let tgt_ids: Vec<Vec<u32>> =
        d.target.attr_ids().map(|a| f.attr_token_ids(&d.target, a)).collect();
    let src_refs: Vec<&[u32]> = src_ids.iter().map(|v| v.as_slice()).collect();
    let tgt_refs: Vec<&[u32]> = tgt_ids.iter().map(|v| v.as_slice()).collect();
    let src_pooled = f.pooled_many(&src_refs, 2);
    let tgt_pooled = f.pooled_many(&tgt_refs, 2);

    let pairs: Vec<(&Tensor, &Tensor)> =
        src_pooled.iter().flat_map(|u| tgt_pooled.iter().map(move |v| (u, v))).collect();
    let scores = f.classify_pooled_batch(&pairs, 2);

    let n_targets = tgt_pooled.len();
    let mut correct = 0usize;
    for (si, s) in d.source.attr_ids().enumerate() {
        let row = &scores[si * n_targets..(si + 1) * n_targets];
        let best =
            row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(ti, _)| ti).unwrap();
        let predicted = d.target.attr_ids().nth(best).unwrap();
        if d.ground_truth.target_of(s) == Some(predicted) {
            correct += 1;
        }
    }
    correct as f64 / src_ids.len() as f64
}

#[test]
fn int8_backend_f1_within_half_a_point_of_f32() {
    let d = lsm_datasets::public_data::movielens_imdb();
    d.validate().unwrap();
    let mut f = BertFeaturizer::pretrain(&full_lexicon(), BertFeaturizerConfig::tiny());
    f.pretrain_classifier(&d.target);

    let f1_f32 = matching_f1(&f, &d);
    f.set_backend(EncoderBackend::Int8);
    let f1_int8 = matching_f1(&f, &d);
    f.set_backend(EncoderBackend::Simd);
    let f1_simd = matching_f1(&f, &d);

    // Sanity: the baseline must clearly beat random assignment
    // (1/|target attrs| ≈ 0.05 here) — a gate comparing two near-zero
    // scores would pass vacuously. The tiny debug-mode encoder is far from
    // the experiment configuration, so this is a floor, not a quality bar.
    assert!(
        f1_f32 > 0.15,
        "f32 baseline F1 {f1_f32:.3} too weak for the drift gate to mean anything"
    );
    assert!(
        (f1_f32 - f1_int8).abs() <= 0.005,
        "int8 F1 drifted beyond the 0.5-point gate: f32 {f1_f32:.4} vs int8 {f1_int8:.4}"
    );
    assert!(
        (f1_f32 - f1_simd).abs() <= 0.005,
        "simd F1 drifted beyond the 0.5-point gate: f32 {f1_f32:.4} vs simd {f1_simd:.4}"
    );
}
