//! Identifier tokenization.
//!
//! Splits schema identifiers such as `TransactionLine`,
//! `product_item_price_amount`, `promisedAvailableCurbsidePickupTimestamp`,
//! or `EAN13Code` into lowercase word tokens. Boundary rules:
//!
//! * any non-alphanumeric character (underscore, hyphen, dot, space, ...)
//!   is a separator,
//! * a lowercase→uppercase transition starts a new token (`camelCase`),
//! * an uppercase run followed by a lowercase letter keeps the run as an
//!   acronym and starts the new token at its last capital (`HTTPServer` →
//!   `http`, `server`),
//! * digit runs are their own tokens (`ean13` → `ean`, `13`).

/// Splits an identifier into lowercase word tokens.
///
/// ```
/// use lsm_text::tokenize;
/// assert_eq!(tokenize("product_item_price_amount"),
///            vec!["product", "item", "price", "amount"]);
/// assert_eq!(tokenize("TransactionLine"), vec!["transaction", "line"]);
/// assert_eq!(tokenize("HTTPServerURL"), vec!["http", "server", "url"]);
/// assert_eq!(tokenize("ean13"), vec!["ean", "13"]);
/// ```
pub fn tokenize(identifier: &str) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Class {
        Lower,
        Upper,
        Digit,
        Other,
    }
    fn classify(c: char) -> Class {
        if c.is_lowercase() {
            Class::Lower
        } else if c.is_uppercase() {
            Class::Upper
        } else if c.is_ascii_digit() {
            Class::Digit
        } else {
            Class::Other
        }
    }

    let chars: Vec<char> = identifier.chars().collect();
    let mut tokens = Vec::new();
    let mut current = String::new();
    for i in 0..chars.len() {
        let c = chars[i];
        let class = classify(c);
        if class == Class::Other {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            continue;
        }
        let boundary = if current.is_empty() {
            false
        } else {
            let prev = classify(chars[i - 1]);
            match (prev, class) {
                // camelCase: aB
                (Class::Lower, Class::Upper) => true,
                // digit boundary in both directions
                (Class::Digit, Class::Lower | Class::Upper) => true,
                (Class::Lower | Class::Upper, Class::Digit) => true,
                // acronym end: ABc -> split before B (last capital of run)
                (Class::Upper, Class::Lower) => {
                    // The previous char belongs to this token; split before
                    // it if the char before that was also uppercase.
                    if i >= 2 && classify(chars[i - 2]) == Class::Upper {
                        // Move the previous capital into the new token.
                        let moved = current.pop().expect("non-empty current");
                        if !current.is_empty() {
                            tokens.push(std::mem::take(&mut current));
                        }
                        current.push(moved);
                    }
                    false
                }
                _ => false,
            }
        };
        if boundary && !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
        current.push(c);
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens.iter().map(|t| t.to_lowercase()).collect()
}

/// Tokenizes and re-joins with single spaces: the canonical normalized form
/// of an identifier for embedding and language-model input.
///
/// ```
/// use lsm_text::normalize_join;
/// assert_eq!(normalize_join("OrderLine.TotalAmount"), "order line total amount");
/// ```
pub fn normalize_join(identifier: &str) -> String {
    tokenize(identifier).join(" ")
}

/// Tokenizes free-flowing text (e.g. attribute descriptions): splits on
/// whitespace/punctuation and lowercases, additionally splitting any
/// camelCase identifiers embedded in the prose.
pub fn tokenize_text(text: &str) -> Vec<String> {
    text.split(|c: char| c.is_whitespace()).flat_map(tokenize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_case_splits_on_underscores() {
        assert_eq!(tokenize("order_id"), vec!["order", "id"]);
        assert_eq!(
            tokenize("promised_avalailable_curbside_pickup_timestamp"),
            vec!["promised", "avalailable", "curbside", "pickup", "timestamp"]
        );
    }

    #[test]
    fn camel_and_pascal_case_split_on_case_change() {
        assert_eq!(tokenize("orderId"), vec!["order", "id"]);
        assert_eq!(tokenize("TransactionLine"), vec!["transaction", "line"]);
        assert_eq!(tokenize("TotalOrderLineAmount"), vec!["total", "order", "line", "amount"]);
    }

    #[test]
    fn acronym_runs_stay_together() {
        assert_eq!(tokenize("EAN"), vec!["ean"]);
        assert_eq!(tokenize("HTTPServer"), vec!["http", "server"]);
        assert_eq!(tokenize("parseURLQuick"), vec!["parse", "url", "quick"]);
    }

    #[test]
    fn digits_are_separate_tokens() {
        assert_eq!(tokenize("ean13"), vec!["ean", "13"]);
        assert_eq!(tokenize("address_line2"), vec!["address", "line", "2"]);
        assert_eq!(tokenize("13f"), vec!["13", "f"]);
    }

    #[test]
    fn punctuation_separates() {
        assert_eq!(tokenize("Orders.discount"), vec!["orders", "discount"]);
        assert_eq!(tokenize("a-b c"), vec!["a", "b", "c"]);
        assert_eq!(tokenize("--"), Vec::<String>::new());
        assert_eq!(tokenize(""), Vec::<String>::new());
    }

    #[test]
    fn mixed_everything() {
        assert_eq!(tokenize("productSKU_code2X"), vec!["product", "sku", "code", "2", "x"]);
    }

    #[test]
    fn normalize_join_spaces_tokens() {
        assert_eq!(normalize_join("OrderLine.TotalAmount"), "order line total amount");
        assert_eq!(normalize_join(""), "");
    }

    #[test]
    fn tokenize_text_handles_prose() {
        assert_eq!(
            tokenize_text("The orderId of the Transaction, if any."),
            vec!["the", "order", "id", "of", "the", "transaction", "if", "any"]
        );
    }
}
