//! # lsm-text
//!
//! Identifier tokenization and string-similarity metrics for schema
//! matching.
//!
//! Schema attribute names mix `snake_case`, `camelCase`, acronyms, digits,
//! and abbreviations. Every matcher in the LSM paper — the baselines of
//! Section III as much as LSM's own featurizers — starts by splitting such
//! identifiers into word tokens and then measuring similarity. This crate
//! supplies:
//!
//! * [`tokenize()`] — identifier → word tokens (handles `snake_case`,
//!   `camelCase`, `PascalCase`, digit runs, and acronym boundaries),
//! * [`metrics`] — the string-similarity toolbox used by COMA and friends:
//!   longest common subsequence, Levenshtein, Jaro-Winkler, n-gram overlap,
//!   affix similarity, Soundex,
//! * [`lexical`] — the paper's lexical featurizer
//!   `lcs(a, b) / min(len(a), len(b))` (Section IV-C2),
//! * [`tfidf`] — a TF-IDF vector space with cosine similarity, the substrate
//!   of LSD's WHIRL nearest-neighbour learner.

#![forbid(unsafe_code)]

pub mod lexical;
pub mod metrics;
pub mod tfidf;
pub mod tokenize;

pub use lexical::lexical_similarity;
pub use tokenize::{normalize_join, tokenize};
