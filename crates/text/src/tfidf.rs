//! TF-IDF vector space with cosine similarity.
//!
//! LSD's strongest individual learner is WHIRL: a nearest-neighbour
//! classifier over TF-IDF encodings of textual descriptions (Doan et al.,
//! 2000). This module provides the vector space: fit a vocabulary + IDF
//! table on a corpus of token lists, then embed documents and compare them
//! with cosine similarity.

use std::collections::{BTreeMap, HashMap};

/// A sparse TF-IDF document vector (term-id → weight), L2-normalized at
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct TfIdfVector {
    weights: Vec<(u32, f64)>,
}

impl TfIdfVector {
    /// Cosine similarity between two vectors (both are unit-length, so this
    /// is their dot product). Runs in `O(|a| + |b|)` — entries are sorted by
    /// term id.
    pub fn cosine(&self, other: &TfIdfVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut dot = 0.0;
        while i < self.weights.len() && j < other.weights.len() {
            let (ta, wa) = self.weights[i];
            let (tb, wb) = other.weights[j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        dot
    }

    /// Number of non-zero terms.
    pub fn nnz(&self) -> usize {
        self.weights.len()
    }

    /// True when the document had no in-vocabulary terms.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// A fitted TF-IDF vector space: vocabulary plus smoothed IDF weights.
///
/// The vocabulary map is lookup-only (term ids are assigned in first-seen
/// corpus order and never iterated), so a `HashMap` is deterministic here.
#[derive(Debug, Clone)]
pub struct TfIdfSpace {
    vocab: HashMap<String, u32>,
    idf: Vec<f64>,
    documents: usize,
}

impl TfIdfSpace {
    /// Fits the space on a corpus of tokenized documents.
    ///
    /// IDF uses the smoothed form `ln((1 + N) / (1 + df)) + 1`, which keeps
    /// weights positive even for terms present in every document.
    pub fn fit<S: AsRef<str>>(corpus: &[Vec<S>]) -> Self {
        let mut vocab: HashMap<String, u32> = HashMap::new();
        let mut df: Vec<usize> = Vec::new();
        for doc in corpus {
            let mut seen: Vec<u32> = Vec::new();
            for tok in doc {
                let tok = tok.as_ref();
                let id = *vocab.entry(tok.to_string()).or_insert_with(|| {
                    df.push(0);
                    (df.len() - 1) as u32
                });
                if !seen.contains(&id) {
                    seen.push(id);
                    df[id as usize] += 1;
                }
            }
        }
        let n = corpus.len();
        let idf = df.iter().map(|&d| ((1.0 + n as f64) / (1.0 + d as f64)).ln() + 1.0).collect();
        TfIdfSpace { vocab, idf, documents: n }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Number of documents the space was fitted on.
    pub fn document_count(&self) -> usize {
        self.documents
    }

    /// Embeds a tokenized document. Out-of-vocabulary tokens are dropped.
    pub fn embed<S: AsRef<str>>(&self, doc: &[S]) -> TfIdfVector {
        // A BTreeMap keeps term-frequency iteration in term-id order, so the
        // weight vector comes out sorted without a separate sort step.
        let mut tf: BTreeMap<u32, f64> = BTreeMap::new();
        for tok in doc {
            if let Some(&id) = self.vocab.get(tok.as_ref()) {
                *tf.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut weights: Vec<(u32, f64)> =
            tf.into_iter().map(|(id, count)| (id, count * self.idf[id as usize])).collect();
        let norm: f64 = weights.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut weights {
                *w /= norm;
            }
        }
        TfIdfVector { weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<&'static str>> {
        vec![
            vec!["order", "id", "unique"],
            vec!["order", "total", "amount"],
            vec!["store", "name"],
            vec!["customer", "name"],
        ]
    }

    #[test]
    fn fit_builds_vocab_and_counts() {
        let space = TfIdfSpace::fit(&corpus());
        assert_eq!(space.document_count(), 4);
        // order, id, unique, total, amount, store, name, customer
        assert_eq!(space.vocab_size(), 8);
    }

    #[test]
    fn identical_documents_have_cosine_one() {
        let space = TfIdfSpace::fit(&corpus());
        let v = space.embed(&["order", "id"]);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_documents_have_cosine_zero() {
        let space = TfIdfSpace::fit(&corpus());
        let a = space.embed(&["order", "id"]);
        let b = space.embed(&["store", "name"]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn rare_terms_weigh_more_than_common_ones() {
        let space = TfIdfSpace::fit(&corpus());
        // "order" appears in 2 docs, "unique" in 1: a doc sharing the rare
        // term should be closer than one sharing only the common term.
        let probe = space.embed(&["order", "unique"]);
        let shares_rare = space.embed(&["unique", "total"]);
        let shares_common = space.embed(&["order", "total"]);
        assert!(probe.cosine(&shares_rare) > probe.cosine(&shares_common));
    }

    #[test]
    fn oov_tokens_are_dropped() {
        let space = TfIdfSpace::fit(&corpus());
        let v = space.embed(&["zebra", "xylophone"]);
        assert!(v.is_empty());
        assert_eq!(v.cosine(&space.embed(&["order"])), 0.0);
    }

    #[test]
    fn cosine_is_symmetric_and_bounded() {
        let space = TfIdfSpace::fit(&corpus());
        let a = space.embed(&["order", "total", "name"]);
        let b = space.embed(&["customer", "name", "order"]);
        let ab = a.cosine(&b);
        assert!((ab - b.cosine(&a)).abs() < 1e-12);
        assert!((0.0..=1.0 + 1e-12).contains(&ab));
    }

    #[test]
    fn term_frequency_matters() {
        let space = TfIdfSpace::fit(&corpus());
        let single = space.embed(&["order", "name"]);
        let repeated = space.embed(&["order", "order", "order", "name"]);
        let probe = space.embed(&["order"]);
        assert!(probe.cosine(&repeated) > probe.cosine(&single));
    }
}
