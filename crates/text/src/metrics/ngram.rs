//! Character n-gram overlap (Dice coefficient).

use std::collections::BTreeMap;

/// Multiset of character n-grams of `s`, ordered so the overlap scan below
/// iterates deterministically. Strings shorter than `n` yield the whole
/// string as a single gram so that very short names still compare.
fn grams(s: &str, n: usize) -> BTreeMap<Vec<char>, usize> {
    let chars: Vec<char> = s.chars().collect();
    let mut out = BTreeMap::new();
    if chars.is_empty() {
        return out;
    }
    if chars.len() < n {
        *out.entry(chars).or_insert(0) += 1;
        return out;
    }
    for w in chars.windows(n) {
        *out.entry(w.to_vec()).or_insert(0) += 1;
    }
    out
}

/// Dice similarity over character n-gram multisets:
/// `2 · |grams(a) ∩ grams(b)| / (|grams(a)| + |grams(b)|)`.
pub fn ngram_similarity(a: &str, b: &str, n: usize) -> f64 {
    assert!(n > 0, "n-gram size must be positive");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let ga = grams(a, n);
    let gb = grams(b, n);
    let total: usize = ga.values().sum::<usize>() + gb.values().sum::<usize>();
    if total == 0 {
        return 0.0;
    }
    let shared: usize = ga.iter().map(|(g, &ca)| ca.min(gb.get(g).copied().unwrap_or(0))).sum();
    2.0 * shared as f64 / total as f64
}

/// Trigram Dice similarity, COMA's default n-gram matcher.
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    ngram_similarity(a, b, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_are_one() {
        assert_eq!(trigram_similarity("discount", "discount"), 1.0);
        assert_eq!(ngram_similarity("ab", "ab", 3), 1.0);
    }

    #[test]
    fn disjoint_strings_are_zero() {
        assert_eq!(trigram_similarity("abcdef", "xyzuvw"), 0.0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(trigram_similarity("", ""), 1.0);
        assert_eq!(trigram_similarity("", "abc"), 0.0);
    }

    #[test]
    fn partial_overlap_is_fractional() {
        let s = trigram_similarity("order_id", "order_key");
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            trigram_similarity("item_amount", "quantity"),
            trigram_similarity("quantity", "item_amount")
        );
    }

    #[test]
    fn bigram_vs_trigram() {
        // Shorter grams are more permissive.
        let bi = ngram_similarity("price", "prize", 2);
        let tri = ngram_similarity("price", "prize", 3);
        assert!(bi >= tri);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gram_panics() {
        ngram_similarity("a", "b", 0);
    }
}
