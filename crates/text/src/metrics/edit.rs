//! Levenshtein edit distance.

/// Levenshtein distance between `a` and `b` over Unicode scalar values
/// (insertions, deletions, substitutions all cost 1).
///
/// `O(|a| × |b|)` time, `O(min)` space.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        if ac.len() <= bc.len() {
            (ac, bc)
        } else {
            (bc, ac)
        }
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, &cl) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cs) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(cl != cs);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Edit similarity `1 - dist / max(|a|, |b|)`. Returns `1.0` for two empty
/// strings.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let (la, lb) = (a.chars().count(), b.chars().count());
    let denom = la.max(lb);
    if denom == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basic() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", ""), 3);
    }

    #[test]
    fn distance_symmetric() {
        assert_eq!(edit_distance("discount", "amount"), edit_distance("amount", "discount"));
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let (a, b, c) = ("item_amount", "quantity", "amount");
        assert!(edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c));
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("same", "same"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("order_id", "order_key");
        assert!(s > 0.0 && s < 1.0);
    }

    /// The paper's COMA example: edit distance pulls `item_amount` toward
    /// `product_item_price_amount` rather than the correct `quantity`.
    #[test]
    fn coma_failure_mode_reproduces() {
        let wrong = edit_similarity("item_amount", "product_item_price_amount");
        let right = edit_similarity("item_amount", "quantity");
        assert!(wrong > right);
    }
}
