//! Affix (common prefix/suffix) similarity, one of COMA's name matchers.

/// Length of the common prefix of `a` and `b` (in chars).
fn common_prefix(a: &str, b: &str) -> usize {
    a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count()
}

/// Length of the common suffix of `a` and `b` (in chars).
fn common_suffix(a: &str, b: &str) -> usize {
    a.chars().rev().zip(b.chars().rev()).take_while(|(x, y)| x == y).count()
}

/// Affix similarity: `max(prefix, suffix) / min(|a|, |b|)`, clamped to
/// `[0, 1]`. Two empty strings are identical (`1.0`); one empty string
/// matches nothing (`0.0`).
pub fn affix_similarity(a: &str, b: &str) -> f64 {
    let (la, lb) = (a.chars().count(), b.chars().count());
    if la == 0 && lb == 0 {
        return 1.0;
    }
    let denom = la.min(lb);
    if denom == 0 {
        return 0.0;
    }
    let affix = common_prefix(a, b).max(common_suffix(a, b));
    (affix as f64 / denom as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_prefix_scores() {
        // "order_" is a shared prefix of length 6; min length 8.
        assert!((affix_similarity("order_id", "order_key") - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn shared_suffix_scores() {
        let s = affix_similarity("item_amount", "total_amount");
        assert!((s - 7.0 / 11.0).abs() < 1e-12); // "_amount"
    }

    #[test]
    fn identical_is_one_and_disjoint_is_zero() {
        assert_eq!(affix_similarity("abc", "abc"), 1.0);
        assert_eq!(affix_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(affix_similarity("", ""), 1.0);
        assert_eq!(affix_similarity("", "abc"), 0.0);
    }

    #[test]
    fn substring_containment_saturates() {
        // "id" is both prefix and suffix constrained by min length.
        assert_eq!(affix_similarity("id", "identifier"), 1.0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(affix_similarity("abcx", "abcy"), affix_similarity("abcy", "abcx"));
    }
}
