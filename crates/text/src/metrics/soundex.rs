//! American Soundex phonetic codes, one of COMA's name matchers.

/// Soundex digit class of an ASCII letter, or `None` for vowels and the
/// letters `h`, `w`, `y` (which separate/merge runs per the algorithm).
fn digit(c: char) -> Option<u8> {
    match c.to_ascii_lowercase() {
        'b' | 'f' | 'p' | 'v' => Some(1),
        'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => Some(2),
        'd' | 't' => Some(3),
        'l' => Some(4),
        'm' | 'n' => Some(5),
        'r' => Some(6),
        _ => None,
    }
}

/// The 4-character American Soundex code of `s` (e.g. `"Robert"` →
/// `"R163"`). Non-alphabetic characters are skipped. Returns `"0000"` for
/// strings without any letter.
pub fn soundex(s: &str) -> String {
    let letters: Vec<char> = s.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    let Some(&first) = letters.first() else {
        return "0000".to_string();
    };
    let mut code = String::with_capacity(4);
    code.push(first.to_ascii_uppercase());
    let mut last_digit = digit(first);
    for &c in &letters[1..] {
        let d = digit(c);
        match d {
            Some(d) => {
                if last_digit != Some(d) {
                    code.push(char::from(b'0' + d));
                    if code.len() == 4 {
                        break;
                    }
                }
            }
            None => {
                // 'h' and 'w' do not reset the run; vowels and 'y' do.
                let lower = c.to_ascii_lowercase();
                if lower != 'h' && lower != 'w' {
                    last_digit = None;
                    continue;
                }
            }
        }
        if d.is_some() {
            last_digit = d;
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    code
}

/// `1.0` when two strings share a Soundex code, else `0.0` — the binary
/// phonetic matcher used within COMA's aggregation.
pub fn soundex_similarity(a: &str, b: &str) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if soundex(a) == soundex(b) {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex("Honeyman"), "H555");
    }

    #[test]
    fn short_names_pad_with_zeros() {
        assert_eq!(soundex("a"), "A000");
        assert_eq!(soundex("at"), "A300");
    }

    #[test]
    fn non_alpha_is_skipped() {
        assert_eq!(soundex("o'brien"), soundex("obrien"));
        assert_eq!(soundex("123"), "0000");
        assert_eq!(soundex(""), "0000");
    }

    #[test]
    fn similarity_is_binary() {
        assert_eq!(soundex_similarity("Robert", "Rupert"), 1.0);
        assert_eq!(soundex_similarity("Robert", "Smith"), 0.0);
        assert_eq!(soundex_similarity("", ""), 1.0);
    }
}
