//! Jaro and Jaro-Winkler similarity.

/// Jaro similarity in `[0, 1]`.
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    let s: Vec<char> = a.chars().collect();
    let t: Vec<char> = b.chars().collect();
    if s.is_empty() && t.is_empty() {
        return 1.0;
    }
    if s.is_empty() || t.is_empty() {
        return 0.0;
    }
    let window = (s.len().max(t.len()) / 2).saturating_sub(1);
    let mut s_matched = vec![false; s.len()];
    let mut t_matched = vec![false; t.len()];
    let mut matches = 0usize;
    for (i, &cs) in s.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(t.len());
        for j in lo..hi {
            if !t_matched[j] && t[j] == cs {
                s_matched[i] = true;
                t_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions between the matched sequences.
    let s_seq: Vec<char> = s.iter().zip(&s_matched).filter_map(|(&c, &m)| m.then_some(c)).collect();
    let t_seq: Vec<char> = t.iter().zip(&t_matched).filter_map(|(&c, &m)| m.then_some(c)).collect();
    let transpositions = s_seq.iter().zip(&t_seq).filter(|(a, b)| a != b).count() / 2;
    let m = matches as f64;
    (m / s.len() as f64 + m / t.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by up to 4 characters of common
/// prefix with scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let jaro = jaro_similarity(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    jaro + prefix * 0.1 * (1.0 - jaro)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn jaro_known_values() {
        assert!(close(jaro_similarity("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro_similarity("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro_similarity("CRATE", "TRACE"), 0.733));
    }

    #[test]
    fn jaro_identity_and_disjoint() {
        assert_eq!(jaro_similarity("abc", "abc"), 1.0);
        assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
        assert_eq!(jaro_similarity("", ""), 1.0);
        assert_eq!(jaro_similarity("", "abc"), 0.0);
    }

    #[test]
    fn winkler_boosts_shared_prefix() {
        let plain = jaro_similarity("prefix_a", "prefix_b");
        let boosted = jaro_winkler("prefix_a", "prefix_b");
        assert!(boosted > plain);
        assert!(boosted <= 1.0);
    }

    #[test]
    fn winkler_known_value() {
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.961));
    }

    #[test]
    fn jaro_symmetric() {
        assert!(close(
            jaro_similarity("discount", "price_change"),
            jaro_similarity("price_change", "discount")
        ));
    }
}
