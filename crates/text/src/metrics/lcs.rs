//! Longest common subsequence.

/// Length of the longest common subsequence of `a` and `b`, over Unicode
/// scalar values.
///
/// Runs in `O(|a| × |b|)` time and `O(min(|a|, |b|))` space (two rolling
/// rows).
pub fn lcs_length(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        if ac.len() <= bc.len() {
            (ac, bc)
        } else {
            (bc, ac)
        }
    };
    if short.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; short.len() + 1];
    let mut curr = vec![0usize; short.len() + 1];
    for &cl in &long {
        for (j, &cs) in short.iter().enumerate() {
            curr[j + 1] = if cl == cs { prev[j] + 1 } else { prev[j + 1].max(curr[j]) };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// LCS similarity normalized by the longer string:
/// `lcs(a, b) / max(|a|, |b|)`. Returns `1.0` for two empty strings.
pub fn lcs_similarity(a: &str, b: &str) -> f64 {
    let (la, lb) = (a.chars().count(), b.chars().count());
    let denom = la.max(lb);
    if denom == 0 {
        return 1.0;
    }
    lcs_length(a, b) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_basic() {
        assert_eq!(lcs_length("abcde", "ace"), 3);
        assert_eq!(lcs_length("abc", "abc"), 3);
        assert_eq!(lcs_length("abc", "def"), 0);
    }

    #[test]
    fn lcs_empty() {
        assert_eq!(lcs_length("", "abc"), 0);
        assert_eq!(lcs_length("", ""), 0);
    }

    #[test]
    fn lcs_is_symmetric() {
        assert_eq!(lcs_length("quantity", "item_amount"), lcs_length("item_amount", "quantity"));
    }

    #[test]
    fn lcs_handles_abbreviations() {
        // "qty" is a subsequence of "quantity".
        assert_eq!(lcs_length("qty", "quantity"), 3);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(lcs_similarity("", ""), 1.0);
        assert_eq!(lcs_similarity("abc", "abc"), 1.0);
        assert_eq!(lcs_similarity("abc", ""), 0.0);
        let s = lcs_similarity("discount", "price_change_percentage");
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn lcs_unicode() {
        assert_eq!(lcs_length("naïve", "naive"), 4);
    }
}
