//! String-similarity metrics.
//!
//! COMA (Do & Rahm, VLDB 2002) combines a library of name matchers — affix,
//! n-gram, edit distance, Soundex — and the other baselines each lean on one
//! or more of these. All similarities returned here are normalized to
//! `[0, 1]` with `1` meaning identical.

pub mod affix;
pub mod edit;
pub mod jaro;
pub mod lcs;
pub mod ngram;
pub mod soundex;

pub use affix::affix_similarity;
pub use edit::{edit_distance, edit_similarity};
pub use jaro::{jaro_similarity, jaro_winkler};
pub use lcs::{lcs_length, lcs_similarity};
pub use ngram::{ngram_similarity, trigram_similarity};
pub use soundex::{soundex, soundex_similarity};
