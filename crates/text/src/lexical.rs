//! The paper's lexical featurizer.
//!
//! Section IV-C2: *"For the attribute pair (as, at), the similarity score is
//! calculated as `lsc(as.name, at.name) / min(len(as.name), len(at.name))`
//! where `lsc` computes the length of the longest common subsequence. The
//! lexical featurizer is capable of handling abbreviations."*
//!
//! Normalizing by the *shorter* string is what makes abbreviations work: the
//! characters of `qty` appear in order inside `quantity`, so
//! `lcs = 3 = len("qty")` and the score is `1.0`.

use crate::metrics::lcs::lcs_length;

/// The lexical featurizer score `lcs(a, b) / min(|a|, |b|)` over lowercase
/// forms. Returns `1.0` for two empty strings and `0.0` when exactly one is
/// empty.
pub fn lexical_similarity(a: &str, b: &str) -> f64 {
    let a = a.to_lowercase();
    let b = b.to_lowercase();
    let (la, lb) = (a.chars().count(), b.chars().count());
    if la == 0 && lb == 0 {
        return 1.0;
    }
    let denom = la.min(lb);
    if denom == 0 {
        return 0.0;
    }
    lcs_length(&a, &b) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_names_score_one() {
        assert_eq!(lexical_similarity("discount", "discount"), 1.0);
    }

    #[test]
    fn abbreviation_scores_one() {
        assert_eq!(lexical_similarity("qty", "quantity"), 1.0);
        assert_eq!(lexical_similarity("amt", "amount"), 1.0);
        assert_eq!(lexical_similarity("desc", "description"), 1.0);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(lexical_similarity("OrderID", "order_id"), 1.0 * 7.0 / 7.0);
    }

    #[test]
    fn unrelated_names_score_low() {
        assert!(lexical_similarity("store", "unit") < 0.5);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(lexical_similarity("", ""), 1.0);
        assert_eq!(lexical_similarity("", "abc"), 0.0);
    }

    #[test]
    fn bounded_and_symmetric() {
        let pairs = [("item_amount", "quantity"), ("a", "b"), ("ean", "european_article_number")];
        for (a, b) in pairs {
            let s = lexical_similarity(a, b);
            assert!((0.0..=1.0).contains(&s));
            assert_eq!(s, lexical_similarity(b, a));
        }
    }

    /// The min-normalization is also the featurizer's known weakness: short
    /// names embedded in long ones score highly. This is why LSM combines
    /// several featurizers.
    #[test]
    fn substring_containment_saturates() {
        assert_eq!(lexical_similarity("amount", "product_item_price_amount"), 1.0);
    }
}
