//! Property-based tests over the string-metric invariants every matcher
//! relies on: boundedness, symmetry, identity, and tokenizer totality.

use lsm_text::lexical_similarity;
use lsm_text::metrics::{
    affix_similarity, edit_distance, edit_similarity, jaro_similarity, jaro_winkler, lcs_length,
    lcs_similarity, soundex, trigram_similarity,
};
use lsm_text::{normalize_join, tokenize};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_]{0,24}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn similarities_are_bounded_and_symmetric(a in ident(), b in ident()) {
        for (name, f) in [
            ("lexical", lexical_similarity as fn(&str, &str) -> f64),
            ("edit", edit_similarity),
            ("jaro", jaro_similarity),
            ("jaro_winkler", jaro_winkler),
            ("trigram", trigram_similarity),
            ("affix", affix_similarity),
            ("lcs", lcs_similarity),
        ] {
            let ab = f(&a, &b);
            let ba = f(&b, &a);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ab), "{}({:?},{:?}) = {}", name, a, b, ab);
            prop_assert!((ab - ba).abs() < 1e-9, "{} asymmetric on ({:?},{:?})", name, a, b);
        }
    }

    #[test]
    fn identity_scores_one(a in "[A-Za-z0-9_]{1,24}") {
        prop_assert_eq!(lexical_similarity(&a, &a), 1.0);
        prop_assert_eq!(edit_similarity(&a, &a), 1.0);
        prop_assert_eq!(jaro_similarity(&a, &a), 1.0);
        prop_assert_eq!(trigram_similarity(&a, &a), 1.0);
    }

    #[test]
    fn edit_distance_is_a_metric(a in ident(), b in ident(), c in ident()) {
        let ab = edit_distance(&a, &b);
        let ba = edit_distance(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(edit_distance(&a, &a), 0);
        // Triangle inequality.
        prop_assert!(edit_distance(&a, &c) <= ab + edit_distance(&b, &c));
    }

    #[test]
    fn lcs_is_bounded_by_lengths(a in ident(), b in ident()) {
        let l = lcs_length(&a, &b);
        prop_assert!(l <= a.chars().count());
        prop_assert!(l <= b.chars().count());
    }

    #[test]
    fn tokenize_is_total_and_lossless_on_alnum(s in "[A-Za-z0-9_.]{0,40}") {
        let tokens = tokenize(&s);
        // Tokens are non-empty, lowercase, and cover all alphanumerics.
        let rejoined: String = tokens.concat();
        let expected: String = s.chars().filter(|c| c.is_alphanumeric()).collect::<String>().to_lowercase();
        prop_assert_eq!(rejoined, expected);
        for t in &tokens {
            prop_assert!(!t.is_empty());
        }
        // normalize_join is idempotent under re-tokenization.
        let joined = normalize_join(&s);
        prop_assert_eq!(normalize_join(&joined), joined.clone());
    }

    #[test]
    fn soundex_shape(s in "[A-Za-z]{1,16}") {
        let code = soundex(&s);
        prop_assert_eq!(code.len(), 4);
        let mut chars = code.chars();
        prop_assert!(chars.next().unwrap().is_ascii_uppercase());
        prop_assert!(chars.all(|c| c.is_ascii_digit()));
    }
}
