//! Table IV: top-k accuracy of LSM vs the best baseline on the public
//! schemata (median of independent trials, k ∈ {1, 3, 5}).

use lsm_bench::{
    baseline_split_accuracies, lsm_split_accuracies, median, trials, write_artifact, Harness,
};
use lsm_core::LsmConfig;

fn main() {
    let harness = Harness::build();
    let ctx = harness.ctx();
    let ks = [1usize, 3, 5];
    let n = trials();

    println!("Table IV: top-k accuracy on the public schemata (median of {n} trials)");
    println!("{:<18} {:>22} {:>30}", "", "Best Baseline (1/3/5)", "LSM (1/3/5)");
    let mut rows = Vec::new();
    for d in harness.publics() {
        eprintln!("[table4] {} ...", d.name);
        let (bname, b_accs) = baseline_split_accuracies(&ctx, &d, &ks, n);
        let l_accs = lsm_split_accuracies(&harness, &d, LsmConfig::default(), &ks, n);
        let b_med: Vec<f64> = (0..ks.len())
            .map(|i| median(&b_accs.iter().map(|t| t[i]).collect::<Vec<_>>()))
            .collect();
        let l_med: Vec<f64> = (0..ks.len())
            .map(|i| median(&l_accs.iter().map(|t| t[i]).collect::<Vec<_>>()))
            .collect();
        println!(
            "{:<18} {:>6.2} {:>6.2} {:>6.2}   {:>8.2} {:>6.2} {:>6.2}   (best baseline: {bname})",
            d.name, b_med[0], b_med[1], b_med[2], l_med[0], l_med[1], l_med[2]
        );
        rows.push(serde_json::json!({
            "dataset": d.name,
            "best_baseline": bname,
            "baseline_top_k": { "1": b_med[0], "3": b_med[1], "5": b_med[2] },
            "lsm_top_k": { "1": l_med[0], "3": l_med[1], "5": l_med[2] },
        }));
    }
    write_artifact("table4", &serde_json::json!({ "trials": n, "rows": rows }))
        .expect("write artifact");
}
