//! Table I: statistics of the customer (source) schemata.

use lsm_bench::{base_seed, write_artifact, Harness};
use lsm_schema::SchemaStats;

fn main() {
    let harness = Harness::build();
    let customers = harness.customers(base_seed());

    println!("Table I: Statistics on the customers' (source) schemata");
    println!(
        "{:<18} {:>9} {:>7} {:>13} {:>7}   Desc.",
        "", "# Entities", "# Attr.", "# Uniq.Names", "# PK/FK"
    );
    let mut rows = Vec::new();
    for d in &customers {
        let stats = SchemaStats::of(&d.source);
        println!("{stats}");
        rows.push(serde_json::json!({
            "name": stats.name,
            "entities": stats.entities,
            "attributes": stats.attributes,
            "unique_attr_names": stats.unique_attr_names,
            "pk_fk": stats.pk_fk,
            "descriptions": stats.has_descriptions,
        }));
    }
    let iss = SchemaStats::of(&harness.iss.schema);
    println!(
        "\nTarget ISS: {} entities, {} attributes, {} PK/FK relationships",
        iss.entities, iss.attributes, iss.pk_fk
    );
    write_artifact(
        "table1",
        &serde_json::json!({
            "customers": rows,
            "iss": { "entities": iss.entities, "attributes": iss.attributes, "pk_fk": iss.pk_fk },
        }),
    )
    .expect("write artifact");
}
