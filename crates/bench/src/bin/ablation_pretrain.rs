//! Ablation of the matching-classifier pre-training sample types
//! (Section IV-C1): self-repeating, self-explaining, and PK/FK-linking
//! positives, each disabled in turn.
//!
//! Note: unlike the other binaries this one cannot reuse the memoized
//! per-ISS featurizer — each variant re-runs classifier pre-training.

use lsm_bench::{base_seed, mean, trials, write_artifact, Harness};
use lsm_core::bert_featurizer::BertFeaturizerConfig;
use lsm_core::{evaluate_split, LsmConfig, LsmMatcher};

fn main() {
    let harness = Harness::build();
    let n = trials();
    let base = if lsm_bench::fast_mode() {
        BertFeaturizerConfig::tiny()
    } else {
        BertFeaturizerConfig::small()
    };
    let variants: [(&str, BertFeaturizerConfig); 4] = [
        ("all sample types", base),
        ("no self-repeating", BertFeaturizerConfig { use_self_repeating: false, ..base }),
        ("no self-explaining", BertFeaturizerConfig { use_self_explaining: false, ..base }),
        ("no pk/fk linking", BertFeaturizerConfig { use_pkfk_linking: false, ..base }),
    ];

    // One (smaller) customer keeps the quadruple pre-training affordable.
    let dataset = harness.customers(base_seed()).into_iter().next().expect("customer A exists");
    println!(
        "Ablation: classifier pre-training sample types on {} (top-3, split protocol, {n} trials)",
        dataset.name
    );

    let mut artifact = Vec::new();
    for (name, cfg) in variants {
        eprintln!("[ablation_pretrain] {name} ...");
        // Featurizer must be rebuilt per variant: the toggles act during
        // classifier pre-training.
        let mut bert = harness.bert.clone();
        bert.set_config(cfg);
        bert.pretrain_classifier(&dataset.target);
        let accs: Vec<f64> = (0..n)
            .map(|trial| {
                let mut matcher = LsmMatcher::new(
                    &dataset.source,
                    &dataset.target,
                    &harness.embedding,
                    Some(bert.clone()),
                    LsmConfig::default(),
                );
                evaluate_split(
                    &mut matcher,
                    &dataset.ground_truth,
                    0.5,
                    &[3],
                    base_seed() + trial as u64,
                )
                .accuracy(3)
            })
            .collect();
        println!("{name:<22} top-3 {:.2}", mean(&accs));
        artifact.push(serde_json::json!({ "variant": name, "top3": mean(&accs) }));
    }
    write_artifact("ablation_pretrain", &serde_json::json!({ "rows": artifact }))
        .expect("write artifact");
}
