//! Ablation of the Section IV-D score adjustments: data-type gating and
//! the new-entity penalty, on the split-evaluation protocol.

use lsm_bench::{base_seed, lsm_matcher_for, mean, trials, write_artifact, Harness};
use lsm_core::{evaluate_split, LsmConfig};

fn main() {
    let harness = Harness::build();
    let n = trials();
    let variants: [(&str, LsmConfig); 4] = [
        ("full", LsmConfig::default()),
        ("no dtype gating", LsmConfig { dtype_gating: false, ..Default::default() }),
        ("no entity penalty", LsmConfig { entity_penalty: false, ..Default::default() }),
        ("neither", LsmConfig { dtype_gating: false, entity_penalty: false, ..Default::default() }),
    ];

    println!("Ablation: score adjustments (top-3 accuracy, split protocol, {n} trials)");
    print!("{:<14}", "customer");
    for (name, _) in &variants {
        print!(" {name:>20}");
    }
    println!();

    let mut artifact = Vec::new();
    for d in harness.customers(base_seed()) {
        eprintln!("[ablation_scoring] {} ...", d.name);
        print!("{:<14}", d.name);
        let mut row = serde_json::Map::new();
        row.insert("customer".into(), serde_json::json!(d.name));
        for (name, config) in variants {
            let accs: Vec<f64> = (0..n)
                .map(|trial| {
                    let mut matcher = lsm_matcher_for(&harness, &d, config);
                    evaluate_split(
                        &mut matcher,
                        &d.ground_truth,
                        0.5,
                        &[3],
                        base_seed() + trial as u64,
                    )
                    .accuracy(3)
                })
                .collect();
            print!(" {:>20.2}", mean(&accs));
            row.insert(name.to_string(), serde_json::json!(mean(&accs)));
        }
        println!();
        artifact.push(serde_json::Value::Object(row));
    }
    write_artifact("ablation_scoring", &serde_json::json!({ "rows": artifact }))
        .expect("write artifact");
}
