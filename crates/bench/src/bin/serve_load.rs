//! Concurrent serving benchmark for the `lsm-serve` daemon.
//!
//! Spawns the daemon in-process on an ephemeral loopback port, then
//! drives N concurrent client sessions (default 8) over real TCP: each
//! client opens its own journal-backed session on the same dataset and
//! answers the selection strategy's picks from ground truth until the
//! session completes. Every `LABEL` reply carries the cost of committing
//! the iteration *and* eagerly computing the next round's suggestions, so
//! the request round-trip is the **label-round latency** — the number an
//! interactive reviewer actually waits on.
//!
//! Reported to `results/BENCH_serve.json`:
//!
//! * `serve.round_p50/p95/p99/mean_seconds` — label-round latency across
//!   every round of every session (gated by the perf-regression gate),
//! * `serve.sessions_per_second` and `serve.wall_s` — completed-session
//!   throughput (recorded, never time-gated),
//! * `serve.cache` — shared pooled-encoding cache hits/misses/hit rate;
//!   with a model enabled and >1 session the hit rate must be positive
//!   (sessions share the target ISS encodings) or the run FAILS,
//! * `pipeline_stages.metrics` — the obs snapshot (the `serve.respond`
//!   stage percentiles feed `BENCH_trajectory.json`, namespaced apart
//!   from the in-process driver's `session.respond`).
//!
//! ```text
//! serve_load [out.json] [--sessions N] [--model off|tiny|small]
//!            [--dataset name] [--cache-capacity N] [--repeats N]
//!            [--compare baseline.json] [--advisory] [--trajectory t.json]
//! ```
//!
//! Exit codes mirror `perf_report`: 1 = confirmed regression (or a zero
//! cache hit rate when one was required), 2 = usage error.

use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

fn simd_caps() -> (&'static str, usize) {
    if cfg!(target_feature = "avx512f") {
        ("avx512f", 16)
    } else if cfg!(target_feature = "avx2") {
        ("avx2", 8)
    } else if cfg!(target_feature = "neon") {
        ("neon", 4)
    } else if cfg!(target_feature = "sse2") {
        ("sse2", 4)
    } else {
        ("scalar", 1)
    }
}

fn host_report() -> Value {
    let (feature, lanes) = simd_caps();
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into());
    json!({
        "logical_cores": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "simd_target_feature": feature,
        "simd_f32_lanes": lanes,
        "rustc": rustc,
        "arch": std::env::consts::ARCH,
        "os": std::env::consts::OS,
    })
}

/// Nearest-rank percentile of an ascending-sorted sample, `q` in [0, 1].
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client { reader, writer: stream }
    }

    fn request(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).expect("send request");
        self.writer.write_all(b"\n").expect("send newline");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        serde_json::from_str(reply.trim_end()).expect("reply is one JSON object")
    }

    fn ok(&mut self, line: &str) -> Value {
        let v = self.request(line);
        assert_eq!(v["ok"], Value::Bool(true), "request {line:?} failed: {v}");
        v
    }
}

struct CliArgs {
    out_path: String,
    sessions: usize,
    model: String,
    dataset: String,
    cache_capacity: usize,
    compare: Option<String>,
    advisory: bool,
    trajectory: String,
    repeats: usize,
}

fn parse_args() -> Result<CliArgs, String> {
    let mut cli = CliArgs {
        out_path: "results/BENCH_serve.json".into(),
        sessions: 8,
        model: "tiny".into(),
        dataset: "movielens".into(),
        cache_capacity: 4096,
        compare: None,
        advisory: false,
        trajectory: "results/BENCH_trajectory.json".into(),
        repeats: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sessions" => {
                let n = args.next().ok_or("--sessions requires a count")?;
                cli.sessions = n
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("invalid --sessions {n:?}"))?;
            }
            "--model" => {
                let m = args.next().ok_or("--model requires off|tiny|small")?;
                if !["off", "tiny", "small"].contains(&m.as_str()) {
                    return Err(format!("unknown --model {m:?}; expected off|tiny|small"));
                }
                cli.model = m;
            }
            "--dataset" => {
                cli.dataset = args.next().ok_or("--dataset requires a name")?;
            }
            "--cache-capacity" => {
                let n = args.next().ok_or("--cache-capacity requires a count")?;
                cli.cache_capacity =
                    n.parse().map_err(|_| format!("invalid --cache-capacity {n:?}"))?;
            }
            "--compare" => {
                cli.compare = Some(args.next().ok_or("--compare requires a baseline path")?);
            }
            "--advisory" => cli.advisory = true,
            "--trajectory" => {
                cli.trajectory = args.next().ok_or("--trajectory requires a path (or `none`)")?;
            }
            "--repeats" => {
                let n = args.next().ok_or("--repeats requires a count")?;
                cli.repeats =
                    n.parse().ok().filter(|&n| n >= 1).ok_or(format!("invalid --repeats {n:?}"))?;
            }
            other if !other.starts_with('-') => cli.out_path = other.to_string(),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cli)
}

/// One full load pass: spawn, drive every session to completion, shut
/// down, report.
fn run_load(cli: &CliArgs) -> Value {
    let dataset = lsm_datasets::by_name(&cli.dataset, 1).unwrap_or_else(|| {
        eprintln!("serve_load: unknown dataset {:?}", cli.dataset);
        std::process::exit(2);
    });
    let truth: BTreeMap<String, String> = dataset
        .source
        .attr_ids()
        .map(|s| {
            let t = dataset.ground_truth.target_of(s).expect("total ground truth");
            (dataset.source.qualified_name(s), dataset.target.qualified_name(t))
        })
        .collect();
    let total_attrs = dataset.source.attr_count();

    let journal_dir = std::env::temp_dir().join(format!("lsm-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let config = lsm_serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        journal_dir: journal_dir.clone(),
        cache_capacity: cli.cache_capacity,
        ..Default::default()
    };
    let handle = lsm_serve::spawn(config).expect("spawn daemon");
    let addr = handle.addr();
    eprintln!(
        "serve_load: daemon on {addr}; {} sessions × {} ({} attrs, model {})",
        cli.sessions, cli.dataset, total_attrs, cli.model
    );

    // Warm up shared state off the clock: featurizer pre-training and the
    // first cache fill happen once per daemon, not once per measured
    // round. The load below still measures real cross-session contention.
    if cli.model != "off" {
        handle.preload(match cli.model.as_str() {
            "small" => lsm_serve::ServeModel::Small,
            _ => lsm_serve::ServeModel::Tiny,
        });
    }

    let wall = Instant::now();
    let mut per_session: Vec<(usize, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cli.sessions)
            .map(|i| {
                let truth = &truth;
                let model = &cli.model;
                let dataset = &cli.dataset;
                scope.spawn(move || {
                    let mut c = Client::connect(addr);
                    let open = c.ok(&format!(
                        r#"OPEN {{"session":"load-{i}","dataset":{dataset:?},"model":{model:?}}}"#
                    ));
                    assert_eq!(open["resumed"], Value::Bool(false));
                    let mut latencies = Vec::new();
                    loop {
                        let s = c.ok(&format!(r#"SUGGEST {{"session":"load-{i}"}}"#));
                        if s["complete"] == Value::Bool(true) {
                            break;
                        }
                        let pick =
                            s["pick"][0].as_str().expect("incomplete session has a pick").to_string();
                        let target = &truth[&pick];
                        let line = format!(
                            r#"LABEL {{"session":"load-{i}","source":{pick:?},"target":{target:?}}}"#
                        );
                        let t = Instant::now();
                        c.ok(&line);
                        latencies.push(t.elapsed().as_secs_f64());
                    }
                    c.ok(&format!(r#"EXPORT {{"session":"load-{i}"}}"#));
                    c.ok(&format!(r#"CLOSE {{"session":"load-{i}"}}"#));
                    (i, latencies)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();
    per_session.sort_by_key(|&(i, _)| i);

    let cache = handle.cache_stats();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&journal_dir);

    let mut rounds: Vec<f64> = per_session.iter().flat_map(|(_, l)| l.iter().copied()).collect();
    rounds.sort_by(f64::total_cmp);
    let mean =
        if rounds.is_empty() { 0.0 } else { rounds.iter().sum::<f64>() / rounds.len() as f64 };

    let snapshot: Value =
        serde_json::from_str(&lsm_obs::snapshot().to_json()).expect("obs metrics JSON parses");

    json!({
        "bench": "serve",
        "host": host_report(),
        "scenario": format!(
            "{} concurrent TCP sessions on {} (model {}, cache capacity {})",
            cli.sessions, cli.dataset, cli.model, cli.cache_capacity
        ),
        "serve": {
            "sessions": cli.sessions,
            "dataset": cli.dataset.clone(),
            "model": cli.model.clone(),
            "total_attributes": total_attrs,
            "label_rounds": rounds.len(),
            "round_p50_seconds": percentile(&rounds, 0.50),
            "round_p95_seconds": percentile(&rounds, 0.95),
            "round_p99_seconds": percentile(&rounds, 0.99),
            "round_mean_seconds": mean,
            // Wall-clock throughput: real but scheduler-dependent, so the
            // key deliberately avoids the gated *seconds suffixes.
            "wall_s": wall_s,
            "sessions_per_second": cli.sessions as f64 / wall_s.max(1e-9),
            "rounds_per_session": per_session.iter().map(|(_, l)| l.len()).collect::<Vec<_>>(),
            "cache": {
                "capacity": cli.cache_capacity,
                "hits": cache.hits,
                "misses": cache.misses,
                "insertions": cache.insertions,
                "evictions": cache.evictions,
                "hit_rate": cache.hit_rate(),
            },
        },
        "pipeline_stages": { "metrics": snapshot },
    })
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("serve_load: {e}");
            std::process::exit(2);
        }
    };
    lsm_obs::enable();

    let mut reports = Vec::with_capacity(cli.repeats);
    for rep in 0..cli.repeats {
        if cli.repeats > 1 {
            eprintln!("serve_load: run {}/{} …", rep + 1, cli.repeats);
        }
        if rep > 0 {
            lsm_obs::reset();
        }
        reports.push(run_load(&cli));
    }
    let report = reports.last().expect("at least one run").clone();
    let merged = lsm_bench::regress::median_merge(
        &reports.iter().map(lsm_bench::regress::flatten_metrics).collect::<Vec<_>>(),
    );

    if let Some(dir) = std::path::Path::new(&cli.out_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&cli.out_path, serde_json::to_string_pretty(&report).expect("serialize"))
        .expect("write report");
    println!("{}", serde_json::to_string_pretty(&report).expect("serialize"));
    eprintln!("serve_load: wrote {}", cli.out_path);

    if cli.trajectory != "none" {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut entry = lsm_bench::regress::trajectory_entry(&report, ts);
        entry["metrics"] = serde_json::to_value(&merged).expect("metric map serializes");
        match lsm_bench::regress::append_trajectory(std::path::Path::new(&cli.trajectory), entry) {
            Ok(n) => eprintln!("serve_load: trajectory {} now has {n} entries", cli.trajectory),
            Err(e) => {
                eprintln!("serve_load: cannot append trajectory {}: {e}", cli.trajectory);
                std::process::exit(2);
            }
        }
    }

    let mut regressed = false;
    if let Some(baseline_path) = &cli.compare {
        let path = std::path::Path::new(baseline_path);
        // A missing baseline is the first run of this bench tag, reported
        // explicitly and advisory; a corrupt one is still a hard error.
        match lsm_bench::regress::load_baseline(path) {
            Ok(Some(baseline)) => {
                let fp = lsm_bench::regress::host_fingerprint(&report["host"]);
                let cmp = lsm_bench::regress::compare(&baseline, &merged, &fp, cli.advisory);
                eprint!("{}", cmp.render_table());
                let cmp_path = std::path::Path::new(&cli.out_path).with_extension("compare.json");
                if let Ok(text) = serde_json::to_string_pretty(&cmp.to_json()) {
                    if std::fs::write(&cmp_path, text).is_ok() {
                        eprintln!("serve_load: wrote {}", cmp_path.display());
                    }
                }
                regressed = cmp.failed();
            }
            Ok(None) => {
                eprintln!("{}", lsm_bench::regress::first_run_notice("serve_load", path));
            }
            Err(e) => {
                eprintln!("serve_load: {e}");
                std::process::exit(2);
            }
        }
    }

    // Acceptance guard: concurrent sessions over one target ISS must
    // share pooled encodings. A zero hit rate with a model enabled means
    // the cross-session cache is not actually plugged in.
    let hit_rate = report["serve"]["cache"]["hit_rate"].as_f64().unwrap_or(0.0);
    if cli.model != "off" && cli.sessions > 1 && hit_rate <= 0.0 {
        eprintln!(
            "serve_load: FAIL — pooled-encoding cache hit rate is 0 across {} sessions",
            cli.sessions
        );
        std::process::exit(1);
    }
    eprintln!(
        "serve_load: p99 label round {:.1} ms, cache hit rate {:.1}%",
        report["serve"]["round_p99_seconds"].as_f64().unwrap_or(0.0) * 1e3,
        hit_rate * 100.0
    );
    if regressed {
        eprintln!("serve_load: FAIL — confirmed perf regression vs baseline");
        std::process::exit(1);
    }
}
