//! Fast kernel-parity smoke for tier-1 (`scripts/tier1.sh`).
//!
//! Proves on three representative shapes, in seconds, that
//!
//! * every exact-class kernel (blocked, mt) is bitwise-identical to the
//!   seed scalar reference `matmul_naive`,
//! * every fma-class kernel (simd, simd-mt) is bitwise-identical to the
//!   scalar-fma reference `matmul_naive_fma`,
//! * the int8 qdot GEMM stays within a coarse drift envelope of the f32
//!   result (the *matching-quality* gate lives in
//!   `crates/core/tests/quant_accuracy.rs`; this is a wiring check that
//!   quantize → accumulate → dequant is not broken).
//!
//! Exits non-zero with a message on the first mismatch.

use lsm_nn::kernels::{
    matmul_blocked, matmul_mt, matmul_naive, matmul_naive_fma, matmul_simd, matmul_simd_mt,
};
use lsm_nn::{QuantLinear, QuantScratch};

/// Deterministic xorshift data in [-1, 1).
fn pseudo_data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        })
        .collect()
}

fn assert_bitwise(label: &str, shape: (usize, usize, usize), got: &[f32], want: &[f32]) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.to_bits() != w.to_bits() {
            eprintln!("kernel_smoke: {label} diverged at {:?} element {i}: {g:e} vs {w:e}", shape);
            std::process::exit(1);
        }
    }
}

fn main() {
    // Non-tile-multiple, tall-skinny, and square shapes.
    for &(m, k, n) in &[(7usize, 13usize, 9usize), (97, 48, 33), (64, 64, 64)] {
        let a = pseudo_data(m * k, 0xa + m as u64);
        let b = pseudo_data(k * n, 0xb + n as u64);
        let mut want = vec![0.0f32; m * n];
        let mut got = vec![0.0f32; m * n];

        matmul_naive(&a, &b, &mut want, m, k, n);
        matmul_blocked(&a, &b, &mut got, m, k, n);
        assert_bitwise("blocked vs naive", (m, k, n), &got, &want);
        for threads in [2, 4] {
            matmul_mt(&a, &b, &mut got, m, k, n, threads);
            assert_bitwise("mt vs naive", (m, k, n), &got, &want);
        }

        matmul_naive_fma(&a, &b, &mut want, m, k, n);
        matmul_simd(&a, &b, &mut got, m, k, n);
        assert_bitwise("simd vs naive_fma", (m, k, n), &got, &want);
        for threads in [2, 4] {
            matmul_simd_mt(&a, &b, &mut got, m, k, n, threads);
            assert_bitwise("simd_mt vs naive_fma", (m, k, n), &got, &want);
        }

        // Int8 drift envelope: inputs are in [-1, 1), the i8 grid step is
        // act_absmax/127 per factor, so per-element error stays well under
        // 0.05·k after accumulation for these small k.
        let act_absmax = a.iter().fold(0.0f32, |mx, v| mx.max(v.abs()));
        let q = QuantLinear::quantize(&b, &vec![0.0f32; n], k, n, act_absmax);
        let mut qx = QuantScratch::default();
        let mut qout = vec![0.0f32; m * n];
        q.forward(&a, &mut qout, m, &mut qx);
        matmul_naive(&a, &b, &mut want, m, k, n);
        let tol = 0.05 * k as f32;
        for (i, (g, w)) in qout.iter().zip(&want).enumerate() {
            if (g - w).abs() > tol {
                eprintln!(
                    "kernel_smoke: int8 drift {:.4} beyond envelope {tol:.4} at \
                     {m}x{k}x{n} element {i}",
                    (g - w).abs()
                );
                std::process::exit(1);
            }
        }

        // Re-quantizing must reproduce identical bits (per-backend
        // determinism at the kernel level).
        let q2 = QuantLinear::quantize(&b, &vec![0.0f32; n], k, n, act_absmax);
        let mut qout2 = vec![0.0f32; m * n];
        q2.forward(&a, &mut qout2, m, &mut qx);
        assert_bitwise("int8 re-quantization", (m, k, n), &qout2, &qout);
    }
    println!("kernel_smoke: all variants parity-clean (3 shapes, 2 rounding classes + int8)");
}
