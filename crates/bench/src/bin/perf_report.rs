//! Machine-readable NN kernel performance report.
//!
//! Times the GEMM kernels (the exact class: naive/blocked/multithreaded;
//! the fma class: scalar-fma/SIMD/SIMD-multithreaded; the int8 qdot GEMM),
//! the batched classifier head against per-pair singles, the encoder
//! forward with and without graph-arena reuse, and end-to-end pooled
//! encoding per backend (f32 graph vs compiled simd/int8/f16 plans,
//! including quantized-vs-f32 drift); measures the disabled-sink
//! observability overhead (`obs_overhead`, gated <1% of the smallest hot
//! kernel) and embeds a per-stage breakdown of a tiny-model movielens
//! session run with the crash-safe journal attached (`pipeline_stages`,
//! gating persistence cost <2% of response time; skipped under
//! `LSM_FAST=1`); then writes
//! `results/BENCH_nn.json` so future PRs can track the perf trajectory.
//!
//! Criterion is a dev-dependency (benches only), so this binary hand-rolls
//! its timing: best-of-`reps` wall clock per case, which is robust against
//! scheduler noise on shared machines.
//!
//! ```text
//! perf_report [out.json] [--repeats N] [--compare baseline.json]
//!             [--advisory] [--trajectory traj.json] [--selftest-compare]
//! ```
//!
//! Every run appends host fingerprint + flattened metrics + per-stage
//! percentiles to the versioned trajectory file (default
//! `results/BENCH_trajectory.json`; `--trajectory none` skips).
//! `--compare` runs the noise-aware regression gate of
//! [`lsm_bench::regress`] against a previous report: median of
//! `--repeats` runs, per-metric magnitude-tiered thresholds, and
//! advisory-only when `--advisory` is set or the baseline's host
//! fingerprint differs. Exit codes: 1 = confirmed regression, 2 = usage
//! error or the <1% disabled-sink overhead guard failed.
//! `--selftest-compare` checks the gate itself (injected 20% slowdown
//! detected, identical runs pass) without running any benchmarks.

use lsm_nn::kernels::{
    matmul_blocked, matmul_mt, matmul_naive, matmul_naive_fma, matmul_simd, matmul_simd_mt,
};
use lsm_nn::{
    BertConfig, BertEncoder, FastEncoder, Graph, ParamStore, QuantLinear, QuantScratch, Tensor,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Deterministic xorshift data in [-1, 1).
fn pseudo_data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        })
        .collect()
}

/// Best-of-`reps` wall-clock seconds for one invocation of `f`.
fn time_best<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Compile-time SIMD capability of this build (`-C target-cpu=native` in
/// `.cargo/config.toml` makes these reflect the host).
fn simd_caps() -> (&'static str, usize) {
    if cfg!(target_feature = "avx512f") {
        ("avx512f", 16)
    } else if cfg!(target_feature = "avx2") {
        ("avx2", 8)
    } else if cfg!(target_feature = "neon") {
        ("neon", 4)
    } else if cfg!(target_feature = "sse2") {
        ("sse2", 4)
    } else {
        ("scalar", 1)
    }
}

/// Host context header: readers of a checked-in report need to know what
/// machine and toolchain produced the numbers before comparing them.
fn host_report() -> serde_json::Value {
    let (feature, lanes) = simd_caps();
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into());
    json!({
        "logical_cores": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "simd_target_feature": feature,
        "simd_f32_lanes": lanes,
        "rustc": rustc,
        "arch": std::env::consts::ARCH,
        "os": std::env::consts::OS,
    })
}

fn gemm_report(m: usize, k: usize, n: usize, reps: usize) -> serde_json::Value {
    let a = pseudo_data(m * k, 1);
    let b = pseudo_data(k * n, 2);
    let mut out = vec![0.0f32; m * n];
    let flops = (2 * m * k * n) as f64;

    let t_naive = time_best(
        || {
            matmul_naive(&a, &b, &mut out, m, k, n);
            std::hint::black_box(&out);
        },
        reps,
    );
    let t_blocked = time_best(
        || {
            matmul_blocked(&a, &b, &mut out, m, k, n);
            std::hint::black_box(&out);
        },
        reps,
    );
    let mut threads_entries = Vec::new();
    for threads in [2usize, 4, 8] {
        let t = time_best(
            || {
                matmul_mt(&a, &b, &mut out, m, k, n, threads);
                std::hint::black_box(&out);
            },
            reps,
        );
        threads_entries.push(json!({
            "threads": threads,
            "seconds": t,
            "gflops": flops / t / 1e9,
            "speedup_vs_naive": t_naive / t,
        }));
    }
    // The fma rounding class: reference scalar-fma kernel, the SIMD
    // microkernel, and its row-partitioned driver. Bitwise-identical to
    // each other (kernel proptests), different bits from the exact class.
    let t_fma = time_best(
        || {
            matmul_naive_fma(&a, &b, &mut out, m, k, n);
            std::hint::black_box(&out);
        },
        reps,
    );
    let t_simd = time_best(
        || {
            matmul_simd(&a, &b, &mut out, m, k, n);
            std::hint::black_box(&out);
        },
        reps,
    );
    let mut simd_mt_entries = Vec::new();
    for threads in [2usize, 4, 8] {
        let t = time_best(
            || {
                matmul_simd_mt(&a, &b, &mut out, m, k, n, threads);
                std::hint::black_box(&out);
            },
            reps,
        );
        simd_mt_entries.push(json!({
            "threads": threads,
            "seconds": t,
            "gflops": flops / t / 1e9,
            "speedup_vs_blocked": t_blocked / t,
        }));
    }

    // Int8 qdot GEMM at the same shape, dressed as one QuantLinear layer
    // ([n, k] transposed weights, per-row scales, dequant epilogue).
    let wq = QuantLinear::quantize(&b, &vec![0.0f32; n], k, n, absmax_of(&a));
    let mut qx = QuantScratch::default();
    let t_int8 = time_best(
        || {
            wq.forward(&a, &mut out, m, &mut qx);
            std::hint::black_box(&out);
        },
        reps,
    );

    json!({
        "shape": format!("{m}x{k}x{n}"),
        "naive": { "seconds": t_naive, "gflops": flops / t_naive / 1e9 },
        "blocked": {
            "seconds": t_blocked,
            "gflops": flops / t_blocked / 1e9,
            "speedup_vs_naive": t_naive / t_blocked,
        },
        "mt": threads_entries,
        "naive_fma": { "seconds": t_fma, "gflops": flops / t_fma / 1e9 },
        "simd": {
            "seconds": t_simd,
            "gflops": flops / t_simd / 1e9,
            "speedup_vs_blocked": t_blocked / t_simd,
        },
        "simd_mt": simd_mt_entries,
        "int8": {
            "seconds": t_int8,
            "gflops": flops / t_int8 / 1e9,
            "speedup_vs_blocked": t_blocked / t_int8,
        },
    })
}

fn absmax_of(x: &[f32]) -> f32 {
    x.iter().fold(0.0f32, |m, v| m.max(v.abs()))
}

/// End-to-end pooled encoding, f32 graph path (arena reuse — the best the
/// exact class offers) vs each compiled fast-plan backend, plus the
/// quantized-vs-f32 drift those backends introduce. The int8 acceptance
/// gate (≥3× over f32 blocked) reads from here.
fn encoder_backend_report(reps: usize) -> serde_json::Value {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let encoder = BertEncoder::new(BertConfig::small(800), &mut store, &mut rng);
    let seqs: Vec<Vec<u32>> =
        (0..8u32).map(|s| (0..24).map(|i| 5 + ((s * 31 + i) % 700)).collect()).collect();

    let mut g = Graph::for_inference();
    let t_f32 = time_best(
        || {
            for ids in &seqs {
                g.reset();
                let pooled = encoder.pooled(&mut g, &store, ids);
                std::hint::black_box(g.value(pooled).data()[0]);
            }
        },
        reps,
    );
    let reference: Vec<Tensor> = seqs
        .iter()
        .map(|ids| {
            g.reset();
            let pooled = encoder.pooled(&mut g, &store, ids);
            g.value(pooled).clone()
        })
        .collect();

    let simd_plan = FastEncoder::from_bert(&encoder, &store);
    let int8_plan = simd_plan.to_int8(&seqs);
    let f16_plan = simd_plan.to_f16();

    let mut backends = Vec::new();
    for plan in [&simd_plan, &int8_plan, &f16_plan] {
        let t = time_best(
            || {
                for ids in &seqs {
                    std::hint::black_box(plan.pooled(ids).data()[0]);
                }
            },
            reps,
        );
        let mut max_abs = 0.0f32;
        let mut sum_abs = 0.0f64;
        let mut count = 0usize;
        for (ids, r) in seqs.iter().zip(&reference) {
            let p = plan.pooled(ids);
            for (a, b) in p.data().iter().zip(r.data()) {
                max_abs = max_abs.max((a - b).abs());
                sum_abs += (a - b).abs() as f64;
                count += 1;
            }
        }
        backends.push(json!({
            "backend": plan.backend().name(),
            "seconds_per_batch": t,
            "speedup_vs_f32_graph": t_f32 / t,
            "drift_vs_f32": {
                "max_abs": max_abs,
                "mean_abs": sum_abs / count as f64,
            },
        }));
    }

    // Instrumented pass: run each backend under an enabled sink to collect
    // its per-backend span histogram (p50/p95/p99 in `span`) and the
    // backend counters. These are single-pass wall-clock distributions —
    // trajectory context, not gated metrics (their keys end in `_s`, which
    // the regression gate's flattener ignores by design).
    lsm_obs::reset();
    lsm_obs::enable();
    for plan in [&simd_plan, &int8_plan, &f16_plan] {
        for _ in 0..8 {
            for ids in &seqs {
                std::hint::black_box(plan.pooled(ids).data()[0]);
            }
        }
    }
    // One f32 graph batch too: its matmuls go through runtime variant
    // selection, so `kernel_variant_selected` reflects real dispatches.
    for ids in &seqs {
        g.reset();
        let pooled = encoder.pooled(&mut g, &store, ids);
        std::hint::black_box(g.value(pooled).data()[0]);
    }
    let snap = lsm_obs::snapshot();
    // The sink must be off (and drained) again before obs_overhead_report.
    lsm_obs::disable();
    lsm_obs::reset();
    for (entry, plan) in backends.iter_mut().zip([&simd_plan, &int8_plan, &f16_plan]) {
        let span_name = plan.backend().span_name();
        if let Some(s) = snap.stage(span_name) {
            entry["span"] = json!({
                "name": span_name,
                "count": s.count,
                "p50_s": s.p50_s,
                "p95_s": s.p95_s,
                "p99_s": s.p99_s,
                "max_s": s.max_s,
            });
        }
    }
    let instrumented = json!({
        "quant_forwards": snap.counter("quant_forwards"),
        "f16_forwards": snap.counter("f16_forwards"),
        "kernel_variant_selected": snap.counter("kernel_variant_selected"),
    });
    json!({
        "encoder": "small d48 L2 seq24, batch of 8 sequences",
        "f32_graph_seconds_per_batch": t_f32,
        "fast_backends": backends,
        "instrumented_counters": instrumented,
        "note": "speedup_vs_f32_graph is end-to-end pooled encoding; the \
                 int8 acceptance gate requires >=3x here. drift_vs_f32 is \
                 over pooled output elements; the matching-F1 impact of \
                 that drift is gated in crates/core/tests/quant_accuracy.rs.",
    })
}

/// Batched classifier head vs per-pair singles, at the paper's ISS scale:
/// one `[n, 4d] × [4d, d] × [d, 1]` pass against `n` degenerate `[1, …]`
/// passes (what the seed code did per shortlist).
fn head_report(n: usize, d: usize, reps: usize) -> serde_json::Value {
    let u = Tensor::from_vec(n, 4 * d, pseudo_data(n * 4 * d, 7));
    let w1 = Tensor::from_vec(4 * d, d, pseudo_data(4 * d * d, 8));
    let w2 = Tensor::from_vec(d, 1, pseudo_data(d, 9));

    let t_batched = time_best(
        || {
            let h = u.matmul(&w1);
            let z = h.matmul(&w2);
            std::hint::black_box(z.data());
        },
        reps,
    );
    let rows: Vec<Tensor> = (0..n).map(|i| Tensor::from_vec(1, 4 * d, u.row(i).to_vec())).collect();
    let t_singles = time_best(
        || {
            for r in &rows {
                let h = r.matmul(&w1);
                let z = h.matmul(&w2);
                std::hint::black_box(z.data());
            }
        },
        reps,
    );
    json!({
        "pairs": n,
        "d_model": d,
        "batched_seconds": t_batched,
        "singles_seconds": t_singles,
        "batched_speedup": t_singles / t_batched,
    })
}

/// Encoder forward with a fresh graph per call (seed behaviour) vs a
/// reused inference-mode arena (the pooled_many path).
fn arena_report(reps: usize) -> serde_json::Value {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let encoder = BertEncoder::new(BertConfig::small(800), &mut store, &mut rng);
    let ids: Vec<u32> = (0..24).map(|i| 5 + (i % 700)).collect();

    let t_fresh = time_best(
        || {
            let mut g = Graph::new();
            let pooled = encoder.pooled(&mut g, &store, &ids);
            std::hint::black_box(g.value(pooled).data()[0]);
        },
        reps,
    );
    let mut g = Graph::for_inference();
    let t_reused = time_best(
        || {
            g.reset();
            let pooled = encoder.pooled(&mut g, &store, &ids);
            std::hint::black_box(g.value(pooled).data()[0]);
        },
        reps,
    );
    json!({
        "encoder": "small d48 L2 seq24",
        "fresh_graph_seconds": t_fresh,
        "arena_reuse_seconds": t_reused,
        "arena_speedup": t_fresh / t_reused,
    })
}

/// The zero-overhead-when-off guard: with the obs sink disabled, one GEMM
/// dispatch pays exactly one relaxed atomic load (`lsm_obs::add`). Measure
/// that load directly, relate it to each `nn_kernels` shape's kernel time,
/// and require the worst case to stay under 1%. A measured A/B of the
/// instrumented dispatch vs the raw kernel is reported as corroboration
/// (it is noise-dominated at these granularities, so the guard gates on
/// the analytic number).
fn obs_overhead_report(reps: usize) -> serde_json::Value {
    assert!(!lsm_obs::is_enabled(), "overhead guard must run with the sink disabled");
    const N: usize = 5_000_000;
    let t_add = time_best(
        || {
            for i in 0..N {
                lsm_obs::add(black_box(lsm_obs::Counter::GemmCalls), (i & 1) as u64);
            }
        },
        3,
    );
    let add_ns = t_add / N as f64 * 1e9;
    let t_span = time_best(
        || {
            for _ in 0..N {
                let s = lsm_obs::span(black_box("obs.probe"));
                black_box(&s);
            }
        },
        3,
    );
    let span_ns = t_span / N as f64 * 1e9;

    let mut shapes = Vec::new();
    let mut worst = 0.0f64;
    for &(m, k, n) in &[(256, 256, 256), (48, 48, 96), (1218, 192, 48), (512, 512, 512)] {
        let a = Tensor::from_vec(m, k, pseudo_data(m * k, 11));
        let b = Tensor::from_vec(k, n, pseudo_data(k * n, 12));
        let mut raw = vec![0.0f32; m * n];
        let t_raw = time_best(
            || {
                matmul_mt(a.data(), b.data(), &mut raw, m, k, n, 1);
                black_box(&raw);
            },
            reps,
        );
        let mut out = Tensor::zeros(m, n);
        let t_inst = time_best(
            || {
                a.matmul_into(&b, &mut out, 1);
                black_box(out.data());
            },
            reps,
        );
        let pct = add_ns / (t_raw * 1e9) * 100.0;
        worst = worst.max(pct);
        shapes.push(json!({
            "shape": format!("{m}x{k}x{n}"),
            "raw_kernel_seconds": t_raw,
            "instrumented_dispatch_seconds": t_inst,
            "measured_ratio": t_inst / t_raw,
            "disabled_counter_overhead_pct": pct,
        }));
    }
    json!({
        "disabled_counter_ns_per_call": add_ns,
        "disabled_span_ns_per_call": span_ns,
        "per_shape": shapes,
        "worst_disabled_overhead_pct": worst,
        "guard_pass_under_1pct": worst < 1.0,
    })
}

/// Per-stage breakdown of a full `lsm session movielens --model tiny`
/// equivalent with the sink enabled, embedded into the report so future
/// PRs know where pipeline time goes. Also cross-checks the acceptance
/// criterion: the `session.respond` stage total must agree with
/// `SessionOutcome::response_times` (same measurement).
///
/// The session runs with the crash-safe journal attached (the `--journal`
/// production configuration), and the report gates the persistence cost:
/// `journal.append` + `journal.fsync` + `checkpoint.write` stage totals
/// must stay under 2% of the `session.respond` total. The fsync stage is
/// the WAL's tail-latency bottleneck, so the breakdown also carries
/// p50/p95/p99 per key stage (`stage_percentiles`).
fn pipeline_stage_report() -> serde_json::Value {
    use lsm_core::{
        run_session_with_sink, BertFeaturizer, BertFeaturizerConfig, LsmConfig, LsmMatcher,
        PerfectOracle, SessionConfig,
    };
    use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
    use lsm_lexicon::full_lexicon;
    use lsm_store::{JournalOptions, JournalSink};

    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let d = lsm_datasets::public_data::movielens_imdb();
    eprintln!("perf_report: pre-training the tiny featurizer (pipeline breakdown) …");
    let mut bert = BertFeaturizer::pretrain(&lexicon, BertFeaturizerConfig::tiny());
    bert.pretrain_classifier(&d.target);

    let dir = std::env::temp_dir().join(format!("lsm-perf-report-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create perf_report scratch dir");
    let journal = dir.join("session.journal");
    let ckpt = dir.join("session.journal.ckpt");

    // The breakdown covers the interactive part (matcher build + session);
    // pre-training is a once-per-domain offline cost.
    lsm_obs::reset();
    lsm_obs::enable();
    let config = LsmConfig { use_bert: true, ..Default::default() };
    let mut matcher = LsmMatcher::new(&d.source, &d.target, &embedding, Some(bert), config);
    let mut oracle = PerfectOracle::new(d.ground_truth.clone());
    let mut sink = JournalSink::create(&journal, Some(&ckpt), JournalOptions::default())
        .expect("create bench journal");
    let outcome =
        run_session_with_sink(&mut matcher, &mut oracle, SessionConfig::default(), &mut sink)
            .expect("journaled bench session");
    sink.finish().expect("finalize bench journal");
    lsm_obs::disable();
    let journal_bytes = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_dir_all(&dir).ok();

    let snap = lsm_obs::snapshot();
    let respond = snap.stage("session.respond").map(|s| s.total_s).unwrap_or(0.0);
    let appends = snap.stage("journal.append").map(|s| s.total_s).unwrap_or(0.0);
    let fsyncs = snap.stage("journal.fsync").map(|s| s.total_s).unwrap_or(0.0);
    let checkpoints = snap.stage("checkpoint.write").map(|s| s.total_s).unwrap_or(0.0);
    let persistence = appends + fsyncs + checkpoints;
    let journal_pct = if respond > 0.0 { persistence / respond * 100.0 } else { 0.0 };
    let sum: f64 = outcome.response_times.iter().sum();
    let diff_pct = if sum > 0.0 { (respond - sum).abs() / sum * 100.0 } else { 0.0 };
    let mut stage_percentiles = serde_json::Map::new();
    for name in [
        "session.respond",
        "matcher.retrain",
        "journal.append",
        "journal.fsync",
        "checkpoint.write",
    ] {
        if let Some(s) = snap.stage(name) {
            stage_percentiles.insert(
                name.to_string(),
                json!({
                    "count": s.count,
                    "p50_s": s.p50_s,
                    "p95_s": s.p95_s,
                    "p99_s": s.p99_s,
                    "max_s": s.max_s,
                }),
            );
        }
    }
    let metrics: serde_json::Value =
        serde_json::from_str(&snap.to_json()).expect("obs metrics JSON parses");
    json!({
        "scenario": "lsm session movielens --model tiny --journal … (sink enabled)",
        "iterations": outcome.response_times.len(),
        "labels_used": outcome.labels_used,
        "response_time_sum_s": sum,
        "respond_stage_total_s": respond,
        "respond_vs_response_times_diff_pct": diff_pct,
        "agreement_within_1pct": diff_pct < 1.0,
        "journal_append_total_s": appends,
        "journal_fsync_total_s": fsyncs,
        "journal_fsync_count": snap.counter("journal_fsyncs"),
        "checkpoint_write_total_s": checkpoints,
        "journal_bytes": journal_bytes,
        "journal_overhead_pct": journal_pct,
        "journal_overhead_under_2pct": journal_pct < 2.0,
        "stage_percentiles": serde_json::Value::Object(stage_percentiles),
        "metrics": metrics,
    })
}

struct CliArgs {
    out_path: String,
    /// Baseline report to gate against (`--compare`).
    compare: Option<String>,
    /// Report regressions without failing the run (`--advisory`).
    advisory: bool,
    /// Trajectory file path; `none` disables the append.
    trajectory: String,
    /// Full report runs to median-merge (`--repeats`, default 1).
    repeats: usize,
    /// Run the regression-gate self test instead of any benchmark.
    selftest: bool,
}

fn parse_args() -> Result<CliArgs, String> {
    let mut cli = CliArgs {
        out_path: "results/BENCH_nn.json".into(),
        compare: None,
        advisory: false,
        trajectory: "results/BENCH_trajectory.json".into(),
        repeats: 1,
        selftest: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--compare" => {
                cli.compare = Some(args.next().ok_or("--compare requires a baseline path")?);
            }
            "--advisory" => cli.advisory = true,
            "--selftest-compare" => cli.selftest = true,
            "--trajectory" => {
                cli.trajectory = args.next().ok_or("--trajectory requires a path (or `none`)")?;
            }
            "--repeats" => {
                let n = args.next().ok_or("--repeats requires a count")?;
                cli.repeats =
                    n.parse().ok().filter(|&n| n >= 1).ok_or(format!("invalid --repeats {n:?}"))?;
            }
            other if !other.starts_with('-') => cli.out_path = other.to_string(),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cli)
}

/// One full benchmark pass — every report section.
fn build_report() -> serde_json::Value {
    let host = host_report();
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("perf_report: timing GEMM kernels …");
    let gemms = vec![
        gemm_report(256, 256, 256, 30), // acceptance-criterion shape
        gemm_report(48, 48, 96, 400),   // BERT-small FFN GEMM
        gemm_report(1218, 192, 48, 30), // paper-sized batched head hidden
        gemm_report(512, 512, 512, 8),  // headroom shape
    ];
    eprintln!("perf_report: timing batched head …");
    let head = head_report(1218, 48, 30);
    eprintln!("perf_report: timing encoder arena reuse …");
    let arena = arena_report(200);
    eprintln!("perf_report: timing encoder backends (f32 graph vs fast plans) …");
    let encoder_backends = encoder_backend_report(50);
    eprintln!("perf_report: measuring obs overhead (sink disabled) …");
    let obs_overhead = obs_overhead_report(30);
    let pipeline = if std::env::var_os("LSM_FAST").is_some() {
        eprintln!("perf_report: LSM_FAST set — skipping the pipeline stage breakdown");
        serde_json::Value::Null
    } else {
        pipeline_stage_report()
    };

    json!({
        "bench": "nn_kernels",
        "host": host,
        "host_threads": host_threads,
        "note": "naive/blocked/mt form the exact rounding class (bitwise vs \
                 the seed scalar kernel); naive_fma/simd/simd_mt form the \
                 fma class (bitwise vs the scalar-fma reference); int8 is \
                 the quantized opt-in backend. Classes differ in bits, \
                 each class is deterministic at every thread count. \
                 Multithreaded speedups require a multicore host \
                 (row-partitioned, embarrassingly parallel).",
        "gemm": gemms,
        "classifier_head": head,
        "graph_arena": arena,
        "encoder_backends": encoder_backends,
        "obs_overhead": obs_overhead,
        "pipeline_stages": pipeline,
    })
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("perf_report: {e}");
            std::process::exit(2);
        }
    };
    if cli.selftest {
        match lsm_bench::regress::self_test() {
            Ok(()) => {
                println!("perf_report --selftest-compare: PASS");
                return;
            }
            Err(e) => {
                eprintln!("perf_report --selftest-compare: FAIL — {e}");
                std::process::exit(1);
            }
        }
    }

    let mut reports = Vec::with_capacity(cli.repeats);
    for rep in 0..cli.repeats {
        if cli.repeats > 1 {
            eprintln!("perf_report: run {}/{} …", rep + 1, cli.repeats);
        }
        reports.push(build_report());
    }
    let report = reports.last().expect("at least one run").clone();
    // Noise control: the gated/recorded metrics are the per-key median
    // across all runs (identical to the single run when --repeats 1).
    let merged = lsm_bench::regress::median_merge(
        &reports.iter().map(lsm_bench::regress::flatten_metrics).collect::<Vec<_>>(),
    );

    if let Some(dir) = std::path::Path::new(&cli.out_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&cli.out_path, serde_json::to_string_pretty(&report).expect("serialize"))
        .expect("write report");
    println!("{}", serde_json::to_string_pretty(&report).unwrap());
    eprintln!("perf_report: wrote {}", cli.out_path);

    if cli.trajectory != "none" {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut entry = lsm_bench::regress::trajectory_entry(&report, ts);
        entry["metrics"] = serde_json::to_value(&merged).expect("metric map serializes");
        let path = std::path::Path::new(&cli.trajectory);
        match lsm_bench::regress::append_trajectory(path, entry) {
            Ok(n) => eprintln!("perf_report: trajectory {} now has {n} entries", cli.trajectory),
            Err(e) => {
                eprintln!("perf_report: cannot append trajectory {}: {e}", cli.trajectory);
                std::process::exit(2);
            }
        }
    }

    let mut regressed = false;
    if let Some(baseline_path) = &cli.compare {
        let path = std::path::Path::new(baseline_path);
        // A missing baseline is the first run of this bench tag, reported
        // explicitly and advisory; a corrupt one is still a hard error.
        match lsm_bench::regress::load_baseline(path) {
            Ok(Some(baseline)) => {
                let fp = lsm_bench::regress::host_fingerprint(&report["host"]);
                let cmp = lsm_bench::regress::compare(&baseline, &merged, &fp, cli.advisory);
                eprint!("{}", cmp.render_table());
                let cmp_path = std::path::Path::new(&cli.out_path).with_extension("compare.json");
                if let Ok(text) = serde_json::to_string_pretty(&cmp.to_json()) {
                    if std::fs::write(&cmp_path, text).is_ok() {
                        eprintln!("perf_report: wrote {}", cmp_path.display());
                    }
                }
                regressed = cmp.failed();
            }
            Ok(None) => {
                eprintln!("{}", lsm_bench::regress::first_run_notice("perf_report", path));
            }
            Err(e) => {
                eprintln!("perf_report: {e}");
                std::process::exit(2);
            }
        }
    }

    // The <1% disabled-sink overhead guard is an acceptance criterion, not
    // just a reported boolean: fail the run when it breaks.
    let guard_ok = report["obs_overhead"]["guard_pass_under_1pct"].as_bool().unwrap_or(false);
    if !guard_ok {
        eprintln!("perf_report: FAIL — disabled-sink obs overhead exceeded 1%");
        std::process::exit(2);
    }
    if regressed {
        eprintln!("perf_report: FAIL — confirmed perf regression vs baseline");
        std::process::exit(1);
    }
}
