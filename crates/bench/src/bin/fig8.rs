//! Figure 8: LSM under noisy labels, noise rate n ∈ {0, 0.1, 0.2, 0.3}.
//!
//! The noisy oracle corrupts a provided label with probability n to the
//! embedding-nearest wrong target. Expected shape (paper): final correct
//! percentage ≈ (1 − n) · 100 %, and even at n = 0.3 LSM beats the clean
//! best baseline.

use lsm_bench::{
    base_seed, curve_json, lsm_matcher_for, print_curve_row, run_best_baseline_session,
    write_artifact, Harness, CURVE_GRID,
};
use lsm_core::{run_session, LsmConfig, NoisyOracle, SessionConfig};

fn main() {
    let harness = Harness::build();
    let ctx = harness.ctx();
    let noise_rates = [0.0, 0.1, 0.2, 0.3];

    println!("Figure 8: label-noise robustness");
    print!("{:<26}", "curve \\ labels%");
    for &x in &CURVE_GRID {
        print!(" {x:>6.0}");
    }
    println!();

    let mut artifact = serde_json::Map::new();
    for d in harness.customers(base_seed()) {
        eprintln!("[fig8] {} ...", d.name);
        println!("{}:", d.name);
        let mut per_noise = serde_json::Map::new();
        for &n in &noise_rates {
            let mut matcher = lsm_matcher_for(&harness, &d, LsmConfig::default());
            let mut oracle = NoisyOracle::new(
                d.ground_truth.clone(),
                n,
                &harness.embedding,
                &d.source,
                &d.target,
                base_seed() ^ 0xf18,
            );
            let outcome = run_session(&mut matcher, &mut oracle, SessionConfig::default());
            print_curve_row(&format!("LSM w/ n={n}"), &outcome);
            per_noise.insert(format!("{n}"), curve_json(&outcome));
        }
        let (bname, baseline) = run_best_baseline_session(&ctx, &d, SessionConfig::default());
        print_curve_row(&format!("best baseline ({bname})"), &baseline);
        per_noise.insert(
            "best_baseline".into(),
            serde_json::json!({ "name": bname, "curve": curve_json(&baseline) }),
        );
        artifact.insert(d.name.clone(), serde_json::Value::Object(per_noise));
    }
    write_artifact("fig8", &serde_json::Value::Object(artifact)).expect("write artifact");
}
