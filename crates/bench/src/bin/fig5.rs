//! Figure 5: percentage of attributes correctly matched vs percentage of
//! human labels provided — LSM with smart selection, LSM with random
//! selection, the best baseline (interactive, smart selection), and manual
//! labeling.
//!
//! Expected shape (paper): LSM reaches ~70 % correct with <5 % labels and
//! finishes the full schema with ~19-35 % labels; the best baseline needs
//! up to ~75 % and tracks the manual diagonal after ~10 % labels; smart
//! selection beats random, especially early.

use lsm_bench::{
    base_seed, curve_json, print_curve_row, run_best_baseline_session, run_lsm_session,
    write_artifact, Harness, CURVE_GRID,
};
use lsm_core::metrics::manual_labeling_curve;
use lsm_core::{LsmConfig, SelectionStrategy, SessionConfig};

fn main() {
    let harness = Harness::build();
    let ctx = harness.ctx();

    println!("Figure 5: correctly matched % vs labels provided %");
    print!("{:<26}", "curve \\ labels%");
    for &x in &CURVE_GRID {
        print!(" {x:>6.0}");
    }
    println!();

    let mut artifact = serde_json::Map::new();
    for d in harness.customers(base_seed()) {
        eprintln!("[fig5] {} ...", d.name);
        println!("{}:", d.name);
        let smart = run_lsm_session(
            &harness,
            &d,
            LsmConfig::default(),
            SessionConfig {
                strategy: SelectionStrategy::LeastConfidentAnchor,
                ..Default::default()
            },
        );
        print_curve_row("LSM w/ smart selection", &smart);
        let random = run_lsm_session(
            &harness,
            &d,
            LsmConfig::default(),
            SessionConfig { strategy: SelectionStrategy::Random, ..Default::default() },
        );
        print_curve_row("LSM w/ random selection", &random);
        let (bname, baseline) = run_best_baseline_session(&ctx, &d, SessionConfig::default());
        print_curve_row(&format!("best baseline ({bname})"), &baseline);
        let manual = manual_labeling_curve(d.source.attr_count());
        print_curve_row("manual labeling", &manual);

        artifact.insert(
            d.name.clone(),
            serde_json::json!({
                "lsm_smart": curve_json(&smart),
                "lsm_random": curve_json(&random),
                "best_baseline": { "name": bname, "curve": curve_json(&baseline) },
                "manual": curve_json(&manual),
            }),
        );
    }
    write_artifact("fig5", &serde_json::Value::Object(artifact)).expect("write artifact");
}
