//! Table III: top-3 accuracy of the six state-of-the-art baselines on all
//! eight schemata.
//!
//! Expected shape (paper): near-perfect on RDB-Star and IPFQR, ~0.5-0.7 on
//! MovieLens-IMDB, below ~0.3 on the customer schemata, LSD near zero
//! everywhere, and no single baseline dominating.

use lsm_bench::{base_seed, run_all_baselines, write_artifact, Harness, BASELINE_NAMES};

fn main() {
    let harness = Harness::build();
    let ctx = harness.ctx();
    let mut datasets = harness.publics();
    datasets.extend(harness.customers(base_seed()));

    println!("Table III: top-3 accuracy of six baselines");
    print!("{:<18}", "");
    for n in BASELINE_NAMES {
        print!(" {n:>6}");
    }
    println!();

    let mut artifact_rows = Vec::new();
    for d in &datasets {
        eprintln!("[table3] {} ...", d.name);
        let results = run_all_baselines(&ctx, d, base_seed());
        print!("{:<18}", d.name);
        let mut row = serde_json::Map::new();
        row.insert("dataset".into(), serde_json::json!(d.name));
        for (name, _, acc) in &results {
            print!(" {acc:>6.2}");
            row.insert(name.clone(), serde_json::json!(acc));
        }
        println!();
        artifact_rows.push(serde_json::Value::Object(row));
    }
    write_artifact("table3", &serde_json::json!({ "rows": artifact_rows }))
        .expect("write artifact");
}
