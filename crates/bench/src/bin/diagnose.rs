//! Diagnostic: per-component accuracy breakdown of LSM on one customer.
//!
//! Not a paper artifact — a debugging/analysis aid that reports, at full
//! scale: cold-start accuracy, per-featurizer accuracy, cross-encoder
//! shortlist recall, and post-training meta weights.

use lsm_bench::{base_seed, lsm_matcher_for, Harness};
use lsm_core::featurize::feature;
use lsm_core::{evaluate_split, LabelStore, LsmConfig};
use lsm_schema::{AttrId, Schema};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "Customer A".to_string());
    let harness = Harness::build();
    let mut pool = harness.customers(base_seed());
    pool.extend(harness.publics());
    let dataset = pool.into_iter().find(|d| d.name == which).expect("dataset name");
    let sources: Vec<AttrId> = dataset.source.attr_ids().collect();
    eprintln!("[diagnose] building matcher ...");
    let mut matcher = lsm_matcher_for(&harness, &dataset, LsmConfig::default());

    // Shortlist recall.
    let mut hits = 0;
    for &s in &sources {
        let truth = dataset.ground_truth.target_of(s).expect("covered");
        if matcher.shortlist_of(s).contains(&truth) {
            hits += 1;
        }
    }
    println!(
        "shortlist recall: {:.2} ({hits}/{})",
        hits as f64 / sources.len() as f64,
        sources.len()
    );

    // Per-feature-column accuracy.
    let labels = LabelStore::new();
    let cold = matcher.predict(&labels);
    println!(
        "cold-start LSM:   top-1 {:.2}  top-3 {:.2}  top-5 {:.2}",
        cold.top_k_accuracy(&dataset.ground_truth, &sources, 1),
        cold.top_k_accuracy(&dataset.ground_truth, &sources, 3),
        cold.top_k_accuracy(&dataset.ground_truth, &sources, 5)
    );
    for (name, f) in
        [("lexical", feature::LEXICAL), ("embedding", feature::EMBEDDING), ("bert", feature::BERT)]
    {
        let col = matcher.feature_column(f);
        println!(
            "{name:<10} alone: top-1 {:.2}  top-3 {:.2}  top-5 {:.2}",
            col.top_k_accuracy(&dataset.ground_truth, &sources, 1),
            col.top_k_accuracy(&dataset.ground_truth, &sources, 3),
            col.top_k_accuracy(&dataset.ground_truth, &sources, 5)
        );
    }

    // BERT score separation: truth vs other shortlisted candidates.
    let bert_col = matcher.feature_column(feature::BERT);
    let mut truth_scores = Vec::new();
    let mut other_scores = Vec::new();
    for &s in &sources {
        let truth = dataset.ground_truth.target_of(s).expect("covered");
        for &t in matcher.shortlist_of(s) {
            if t == truth {
                truth_scores.push(bert_col.get(s, t));
            } else {
                other_scores.push(bert_col.get(s, t));
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "bert separation: truth mean {:.3} (n={}) vs other mean {:.3} (n={}), truth max {:.3}",
        mean(&truth_scores),
        truth_scores.len(),
        mean(&other_scores),
        other_scores.len(),
        truth_scores.iter().copied().fold(0.0f64, f64::max),
    );

    // Paraphrase probes straight through the featurizer.
    let bert = harness.bert_for(&dataset.target);
    for (a, b) in [
        ("discount", "price_change_percentage"),
        ("item_amount", "quantity"),
        ("quantity", "quantity"),
        ("discount", "store_city"),
        ("qty", "quantity"),
    ] {
        let sa = Schema::builder("probe")
            .entity("P")
            .attr(a, lsm_schema::DataType::Text)
            .build()
            .unwrap();
        let sb = Schema::builder("probe2")
            .entity("Q")
            .attr(b, lsm_schema::DataType::Text)
            .build()
            .unwrap();
        let score = bert.score_pair(&sa, AttrId(0), &sb, AttrId(0));
        println!("probe {a:<24} vs {b:<26} → {score:.3}");
    }

    // Split evaluation + learned weights.
    let eval = evaluate_split(&mut matcher, &dataset.ground_truth, 0.5, &[1, 3, 5], base_seed());
    println!(
        "after 50% labels: top-1 {:.2}  top-3 {:.2}  top-5 {:.2}  (test n={})",
        eval.accuracy(1),
        eval.accuracy(3),
        eval.accuracy(5),
        eval.test_size
    );
    let (w, b) = matcher.meta_weights();
    println!(
        "meta weights: lexical {:.3}  embedding {:.3}  bert {:.3}  bias {:.3}",
        w[0], w[1], w[2], b
    );
}
