//! Table II: statistics of the publicly available schemata.

use lsm_bench::write_artifact;
use lsm_datasets::public_data::all_public;
use lsm_schema::SchemaStats;

fn main() {
    println!("Table II: Statistics on publicly available schemata");
    println!("{:<18} {:<8} {:>10} {:>12} {:>8}", "", "", "# Entities", "# Attributes", "# PK/FK");
    let mut rows = Vec::new();
    for d in all_public(0) {
        for (side, schema) in [("Source", &d.source), ("Target", &d.target)] {
            let stats = SchemaStats::of(schema);
            println!(
                "{:<18} {:<8} {:>10} {:>12} {:>8}",
                if side == "Source" { d.name.as_str() } else { "" },
                side,
                stats.entities,
                stats.attributes,
                stats.pk_fk
            );
            rows.push(serde_json::json!({
                "dataset": d.name,
                "side": side,
                "entities": stats.entities,
                "attributes": stats.attributes,
                "pk_fk": stats.pk_fk,
            }));
        }
    }
    write_artifact("table2", &serde_json::json!({ "rows": rows })).expect("write artifact");
}
