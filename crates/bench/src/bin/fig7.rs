//! Figure 7: impact of attribute descriptions — customers A and E (the two
//! with descriptions) matched with and without them.
//!
//! Expected shape (paper): stripping descriptions raises the labeling cost
//! by a few percent, with the largest gap early in the session; LSM without
//! descriptions still beats the best baseline.

use lsm_bench::{
    base_seed, curve_json, print_curve_row, run_best_baseline_session, run_lsm_session,
    write_artifact, Harness, CURVE_GRID,
};
use lsm_core::{LsmConfig, SessionConfig};
use lsm_datasets::Dataset;

fn main() {
    let harness = Harness::build();
    let ctx = harness.ctx();

    println!("Figure 7: attribute-description ablation (customers A and E)");
    print!("{:<26}", "curve \\ labels%");
    for &x in &CURVE_GRID {
        print!(" {x:>6.0}");
    }
    println!();

    let mut artifact = serde_json::Map::new();
    for d in harness.customers(base_seed()) {
        if !d.source.has_descriptions() {
            continue;
        }
        eprintln!("[fig7] {} ...", d.name);
        println!("{}:", d.name);
        let with_desc =
            run_lsm_session(&harness, &d, LsmConfig::default(), SessionConfig::default());
        print_curve_row("LSM", &with_desc);

        let stripped = Dataset {
            name: format!("{} (no desc)", d.name),
            source: d.source.without_descriptions(),
            target: d.target.clone(),
            ground_truth: d.ground_truth.clone(),
        };
        let without_desc =
            run_lsm_session(&harness, &stripped, LsmConfig::default(), SessionConfig::default());
        print_curve_row("LSM w/o description", &without_desc);

        let (bname, baseline) = run_best_baseline_session(&ctx, &d, SessionConfig::default());
        print_curve_row(&format!("best baseline ({bname})"), &baseline);

        artifact.insert(
            d.name.clone(),
            serde_json::json!({
                "lsm": curve_json(&with_desc),
                "lsm_without_description": curve_json(&without_desc),
                "best_baseline": { "name": bname, "curve": curve_json(&baseline) },
            }),
        );
    }
    write_artifact("fig7", &serde_json::Value::Object(artifact)).expect("write artifact");
}
