//! Figure 4: top-k accuracy of LSM vs the best baseline on customers A-E
//! (mean ± standard error over independent trials, k ∈ {1, 3, 5}).

use lsm_bench::{
    base_seed, baseline_split_accuracies, lsm_split_accuracies, mean, stderr, trials,
    write_artifact, Harness,
};
use lsm_core::LsmConfig;

fn main() {
    let harness = Harness::build();
    let ctx = harness.ctx();
    let ks = [1usize, 3, 5];
    let n = trials();

    println!("Figure 4: top-k accuracy on customers A-E (mean ± stderr, {n} trials)");
    println!("{:<12} {:<6} {:>16} {:>16}", "Customer", "k", "Best baseline", "LSM");
    let mut rows = Vec::new();
    for d in harness.customers(base_seed()) {
        eprintln!("[fig4] {} ...", d.name);
        let (bname, b_accs) = baseline_split_accuracies(&ctx, &d, &ks, n);
        let l_accs = lsm_split_accuracies(&harness, &d, LsmConfig::default(), &ks, n);
        for (i, &k) in ks.iter().enumerate() {
            let b: Vec<f64> = b_accs.iter().map(|t| t[i]).collect();
            let l: Vec<f64> = l_accs.iter().map(|t| t[i]).collect();
            println!(
                "{:<12} top-{k} {:>9.2} ±{:.2} {:>9.2} ±{:.2}",
                d.name,
                mean(&b),
                stderr(&b),
                mean(&l),
                stderr(&l)
            );
            rows.push(serde_json::json!({
                "customer": d.name,
                "k": k,
                "best_baseline_name": bname,
                "baseline_mean": mean(&b),
                "baseline_stderr": stderr(&b),
                "lsm_mean": mean(&l),
                "lsm_stderr": stderr(&l),
            }));
        }
    }
    write_artifact("fig4", &serde_json::json!({ "trials": n, "rows": rows }))
        .expect("write artifact");
}
