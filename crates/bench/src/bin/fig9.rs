//! Figure 9: response time per interaction round as labels accumulate.
//!
//! Expected shape (paper): response time is driven by the number of source
//! attributes (candidate pairs), not by the number of labels — customer E
//! is an order of magnitude above customer A, and each curve is roughly
//! flat in the label count.

use lsm_bench::{base_seed, lsm_matcher_for, write_artifact, Harness};
use lsm_core::{run_session, LsmConfig, PerfectOracle, SessionConfig};
use std::time::Instant;

fn main() {
    let harness = Harness::build();
    let grid = [4.0f64, 8.0, 12.0, 16.0, 20.0];

    println!("Figure 9: response time (seconds) vs labels provided %");
    print!("{:<12}", "customer");
    for &x in &grid {
        print!(" {x:>8.0}%");
    }
    println!("     mean");

    let mut artifact = serde_json::Map::new();
    for d in harness.customers(base_seed()) {
        eprintln!("[fig9] {} ...", d.name);
        // One-time session setup (featurization + shortlist encodings) is
        // reported separately from the per-iteration response time, as the
        // paper's Section V-G measures only the latter.
        let t0 = Instant::now();
        let mut matcher = lsm_matcher_for(&harness, &d, LsmConfig::default());
        let setup_s = t0.elapsed().as_secs_f64();
        let mut oracle = PerfectOracle::new(d.ground_truth.clone());
        let outcome = run_session(&mut matcher, &mut oracle, SessionConfig::default());
        let total = d.source.attr_count() as f64;
        // Response time of the iteration nearest each label-percentage mark.
        let at = |pct: f64| -> f64 {
            if outcome.response_times.is_empty() {
                return 0.0;
            }
            // Iteration i has ~i labels (N = 1 per iteration).
            let iter = ((pct / 100.0) * total).round() as usize;
            let idx = iter.min(outcome.response_times.len() - 1);
            outcome.response_times[idx]
        };
        print!("{:<12}", d.name);
        let mut row = Vec::new();
        for &x in &grid {
            let t = at(x);
            print!(" {t:>8.3}s");
            row.push(t);
        }
        println!("  {:>7.3}s   (setup {:>6.1}s)", outcome.mean_response_time(), setup_s);
        artifact.insert(
            d.name.clone(),
            serde_json::json!({
                "grid_labels_pct": grid,
                "response_time_s": row,
                "mean_response_time_s": outcome.mean_response_time(),
                "setup_time_s": setup_s,
                "iterations": outcome.response_times.len(),
                "source_attributes": d.source.attr_count(),
            }),
        );
    }
    write_artifact("fig9", &serde_json::Value::Object(artifact)).expect("write artifact");
}
