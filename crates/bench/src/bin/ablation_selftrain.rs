//! Ablation of self-training (Section IV-D): the semi-supervised
//! meta-learner vs a plain supervised fit (zero pseudo-labeling rounds).

use lsm_bench::{base_seed, lsm_matcher_for, mean, trials, write_artifact, Harness};
use lsm_core::{evaluate_split, LsmConfig, SelfTrainingConfig};

fn main() {
    let harness = Harness::build();
    let n = trials();
    let variants: [(&str, LsmConfig); 3] = [
        ("self-training (2 rounds)", LsmConfig::default()),
        (
            "supervised only",
            LsmConfig {
                self_training: SelfTrainingConfig { rounds: 0, ..Default::default() },
                ..Default::default()
            },
        ),
        (
            "4 rounds",
            LsmConfig {
                self_training: SelfTrainingConfig { rounds: 4, ..Default::default() },
                ..Default::default()
            },
        ),
    ];

    println!("Ablation: self-training rounds (top-3 accuracy, split protocol, {n} trials)");
    print!("{:<14}", "customer");
    for (name, _) in &variants {
        print!(" {name:>26}");
    }
    println!();

    let mut artifact = Vec::new();
    for d in harness.customers(base_seed()) {
        eprintln!("[ablation_selftrain] {} ...", d.name);
        print!("{:<14}", d.name);
        let mut row = serde_json::Map::new();
        row.insert("customer".into(), serde_json::json!(d.name));
        for (name, config) in variants {
            let accs: Vec<f64> = (0..n)
                .map(|trial| {
                    let mut matcher = lsm_matcher_for(&harness, &d, config);
                    evaluate_split(
                        &mut matcher,
                        &d.ground_truth,
                        0.5,
                        &[3],
                        base_seed() + trial as u64,
                    )
                    .accuracy(3)
                })
                .collect();
            print!(" {:>26.2}", mean(&accs));
            row.insert(name.to_string(), serde_json::json!(mean(&accs)));
        }
        println!();
        artifact.push(serde_json::Value::Object(row));
    }
    write_artifact("ablation_selftrain", &serde_json::json!({ "rows": artifact }))
        .expect("write artifact");
}
