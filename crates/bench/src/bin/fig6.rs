//! Figure 6: ablation of the BERT featurizer — end-to-end labeling curves
//! for LSM with and without it.
//!
//! Expected shape (paper): removing BERT costs up to ~17 % more labels, and
//! the gap is largest when few labels have been provided.

use lsm_bench::{
    base_seed, curve_json, print_curve_row, run_best_baseline_session, run_lsm_session,
    write_artifact, Harness, CURVE_GRID,
};
use lsm_core::metrics::manual_labeling_curve;
use lsm_core::{LsmConfig, SessionConfig};

fn main() {
    let harness = Harness::build();
    let ctx = harness.ctx();

    println!("Figure 6: BERT-featurizer ablation");
    print!("{:<26}", "curve \\ labels%");
    for &x in &CURVE_GRID {
        print!(" {x:>6.0}");
    }
    println!();

    let mut artifact = serde_json::Map::new();
    for d in harness.customers(base_seed()) {
        eprintln!("[fig6] {} ...", d.name);
        println!("{}:", d.name);
        let with_bert =
            run_lsm_session(&harness, &d, LsmConfig::default(), SessionConfig::default());
        print_curve_row("LSM", &with_bert);
        let without_bert = run_lsm_session(
            &harness,
            &d,
            LsmConfig { use_bert: false, ..Default::default() },
            SessionConfig::default(),
        );
        print_curve_row("LSM w/o BERT", &without_bert);
        let (bname, baseline) = run_best_baseline_session(&ctx, &d, SessionConfig::default());
        print_curve_row(&format!("best baseline ({bname})"), &baseline);
        print_curve_row("manual labeling", &manual_labeling_curve(d.source.attr_count()));

        artifact.insert(
            d.name.clone(),
            serde_json::json!({
                "lsm": curve_json(&with_bert),
                "lsm_without_bert": curve_json(&without_bert),
                "best_baseline": { "name": bname, "curve": curve_json(&baseline) },
            }),
        );
    }
    write_artifact("fig6", &serde_json::Value::Object(artifact)).expect("write artifact");
}
