//! # lsm-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`), plus Criterion microbenches (`benches/`). This library
//! holds the shared context construction, the baseline runner, and the
//! result-emission helpers.
//!
//! Every binary prints the regenerated table to stdout and writes a JSON
//! artifact to `results/` so EXPERIMENTS.md numbers are reproducible and
//! diffable. Convention: **stdout carries only the result artifact**
//! (table or JSON); progress and diagnostics go to stderr (`eprintln!`),
//! so `lsm-bench` output can be piped or redirected cleanly.
//!
//! Environment knobs:
//!
//! * `LSM_TRIALS` — independent trials per experiment (default 3; the paper
//!   uses 5),
//! * `LSM_SEED` — base seed (default 1),
//! * `LSM_FAST` — set to `1` to run on a reduced ISS for smoke-testing.

#![forbid(unsafe_code)]

pub mod regress;

use lsm_baselines::coma::Coma;
use lsm_baselines::cupid::Cupid;
use lsm_baselines::flooding::SimilarityFlooding;
use lsm_baselines::lsd::Lsd;
use lsm_baselines::mlm::Mlm;
use lsm_baselines::smatch::SMatch;
use lsm_baselines::tune::grid_search;
use lsm_baselines::{MatchContext, Matcher};
use lsm_core::{BertFeaturizer, BertFeaturizerConfig};
use lsm_datasets::customers::{all_specs, generate_customer};
use lsm_datasets::iss::{generate_retail_iss, GeneratedIss, IssConfig};
use lsm_datasets::public_data;
use lsm_datasets::Dataset;
use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::{full_lexicon, Lexicon};
use lsm_schema::{AttrId, ScoreMatrix};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;

/// Trials per experiment (env `LSM_TRIALS`, default 3).
pub fn trials() -> usize {
    std::env::var("LSM_TRIALS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// Base seed (env `LSM_SEED`, default 1).
pub fn base_seed() -> u64 {
    std::env::var("LSM_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// Whether the fast smoke-test mode is on (env `LSM_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("LSM_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Whether the pre-training disk cache is disabled (env `LSM_NO_CACHE=1`).
pub fn cache_disabled() -> bool {
    std::env::var("LSM_NO_CACHE").map(|v| v == "1").unwrap_or(false)
}

/// Optional cap on customer-schema size for the session experiments (env
/// `LSM_MAX_ATTRS`). On slow machines the customer-E sessions dominate the
/// wall clock; capping lets the other customers' figures regenerate
/// quickly. Unset = no cap.
pub fn max_attrs() -> Option<usize> {
    std::env::var("LSM_MAX_ATTRS").ok().and_then(|v| v.parse().ok())
}

fn cache_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../.cache")
}

/// Loads a cached featurizer when its fingerprint matches, otherwise runs
/// `build` and caches the result. The fingerprint guards against stale
/// artifacts after config or lexicon changes.
fn cached_featurizer(
    key: &str,
    expected_fingerprint: impl Fn(&BertFeaturizer) -> bool,
    build: impl FnOnce() -> BertFeaturizer,
) -> BertFeaturizer {
    let path = cache_dir().join(format!("{key}.json"));
    if !cache_disabled() {
        if let Ok(f) = BertFeaturizer::load(&path) {
            if expected_fingerprint(&f) {
                eprintln!("[harness] loaded cached featurizer {}", path.display());
                return f;
            }
            eprintln!("[harness] stale cache {} — rebuilding", path.display());
        }
    }
    let f = build();
    if !cache_disabled() {
        let _ = std::fs::create_dir_all(cache_dir());
        if let Err(e) = f.save(&path) {
            eprintln!("[harness] could not cache featurizer: {e}");
        }
    }
    f
}

/// The heavy shared context: lexicon, embedding space, ISS, and the
/// MLM-pre-trained BERT featurizer (before classifier pre-training).
pub struct Harness {
    /// The curated multi-domain lexicon.
    pub lexicon: Lexicon,
    /// The pre-trained embedding space.
    pub embedding: EmbeddingSpace,
    /// The generated retail ISS with provenance.
    pub iss: GeneratedIss,
    /// MLM-pre-trained featurizer (clone + `pretrain_classifier` per
    /// target).
    pub bert: BertFeaturizer,
    /// Classifier-pre-trained featurizers memoized per target schema name
    /// (the five customers share the ISS pre-training).
    bert_cache: RefCell<HashMap<String, BertFeaturizer>>,
}

impl Harness {
    /// Builds the full context. Takes tens of seconds in release mode
    /// (MLM pre-training dominates).
    pub fn build() -> Self {
        let lexicon = full_lexicon();
        let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
        let iss_config = if fast_mode() {
            IssConfig { entities: 24, attributes: 260, foreign_keys: 36, seed: 0x155 }
        } else {
            IssConfig::paper()
        };
        let iss = generate_retail_iss(&lexicon, iss_config);
        let bert_config =
            if fast_mode() { BertFeaturizerConfig::tiny() } else { BertFeaturizerConfig::small() };
        let key =
            format!("bert_domain_{}_{}", if fast_mode() { "tiny" } else { "small" }, lexicon.len());
        let bert = cached_featurizer(
            &key,
            |f| f.config_snapshot() == format!("{bert_config:?}"),
            || {
                eprintln!("[harness] MLM pre-training the BERT featurizer ...");
                BertFeaturizer::pretrain(&lexicon, bert_config)
            },
        );
        Harness { lexicon, embedding, iss, bert, bert_cache: RefCell::new(HashMap::new()) }
    }

    /// The matcher context for the baselines.
    pub fn ctx(&self) -> MatchContext<'_> {
        MatchContext { embedding: &self.embedding, lexicon: &self.lexicon }
    }

    /// Generates the five customer datasets for a trial seed. In fast mode
    /// the specs are shrunk to fit the reduced ISS; `LSM_MAX_ATTRS` filters
    /// out customers larger than the cap.
    pub fn customers(&self, seed: u64) -> Vec<Dataset> {
        all_specs()
            .into_iter()
            .filter(|spec| max_attrs().is_none_or(|cap| spec.attributes <= cap))
            .map(|mut spec| {
                if fast_mode() {
                    spec.entities = spec.entities.min(6);
                    spec.attributes = spec.attributes.min(48);
                    spec.foreign_keys = spec.entities - 1;
                }
                generate_customer(&self.iss, &self.lexicon, spec, seed)
            })
            .collect()
    }

    /// The three public datasets.
    pub fn publics(&self) -> Vec<Dataset> {
        public_data::all_public(0)
    }

    /// A classifier-pre-trained featurizer for one target schema.
    /// Memoized by schema name — the expensive ISS pre-training runs once
    /// and is shared by every customer session.
    pub fn bert_for(&self, target: &lsm_schema::Schema) -> BertFeaturizer {
        if let Some(b) = self.bert_cache.borrow().get(&target.name) {
            return b.clone();
        }
        let key = format!(
            "bert_{}_{}_{}",
            target.name.replace(|c: char| !c.is_alphanumeric(), "_"),
            if fast_mode() { "tiny" } else { "small" },
            target.attr_count()
        );
        let snapshot = self.bert.config_snapshot();
        let b = cached_featurizer(
            &key,
            |f| f.config_snapshot() == snapshot && f.iss_sample_count() > 0,
            || {
                eprintln!("[harness] classifier pre-training on {} ...", target.name);
                let mut b = self.bert.clone();
                b.pretrain_classifier(target);
                b
            },
        );
        self.bert_cache.borrow_mut().insert(target.name.clone(), b.clone());
        b
    }
}

/// The baselines of Table III, in paper order.
pub const BASELINE_NAMES: [&str; 6] = ["CUPID", "COMA", "SM", "SF", "LSD", "MLM"];

/// Runs one named baseline (grid-searched where the paper grid-searches)
/// and returns its score matrix and the top-3 accuracy over all source
/// attributes. LSD trains on a random half of the ground truth and is
/// evaluated on the other half, per the paper's adaptation.
pub fn run_baseline(
    name: &str,
    ctx: &MatchContext<'_>,
    dataset: &Dataset,
    seed: u64,
) -> (ScoreMatrix, f64) {
    let sources: Vec<AttrId> = dataset.source.attr_ids().collect();
    match name {
        "CUPID" => {
            let tuned = grid_search(
                Cupid::grid(),
                ctx,
                &dataset.source,
                &dataset.target,
                &dataset.ground_truth,
                3,
            );
            (tuned.scores, tuned.accuracy)
        }
        "COMA" => {
            let tuned = grid_search(
                Coma::grid(),
                ctx,
                &dataset.source,
                &dataset.target,
                &dataset.ground_truth,
                3,
            );
            (tuned.scores, tuned.accuracy)
        }
        "SM" => {
            let m = SMatch.score(ctx, &dataset.source, &dataset.target);
            let acc = m.top_k_accuracy(&dataset.ground_truth, &sources, 3);
            (m, acc)
        }
        "SF" => {
            let m = SimilarityFlooding::default().score(ctx, &dataset.source, &dataset.target);
            let acc = m.top_k_accuracy(&dataset.ground_truth, &sources, 3);
            (m, acc)
        }
        "LSD" => {
            // Train on a random 50 % of the ground truth, evaluate on the
            // held-out half.
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x15d);
            let mut pairs: Vec<(AttrId, AttrId)> = dataset.ground_truth.pairs().collect();
            pairs.shuffle(&mut rng);
            let half = pairs.len() / 2;
            let (train, test) = pairs.split_at(half);
            let mut lsd = Lsd::new();
            lsd.train(ctx, &dataset.source, &dataset.target, train);
            let m = lsd.score(ctx, &dataset.source, &dataset.target);
            let test_sources: Vec<AttrId> = test.iter().map(|&(s, _)| s).collect();
            let acc = m.top_k_accuracy(&dataset.ground_truth, &test_sources, 3);
            (m, acc)
        }
        "MLM" => {
            let m = Mlm::default().score(ctx, &dataset.source, &dataset.target);
            let acc = m.top_k_accuracy(&dataset.ground_truth, &sources, 3);
            (m, acc)
        }
        other => panic!("unknown baseline {other:?}"),
    }
}

/// Runs all six baselines and returns `(name, scores, top3)` tuples.
pub fn run_all_baselines(
    ctx: &MatchContext<'_>,
    dataset: &Dataset,
    seed: u64,
) -> Vec<(String, ScoreMatrix, f64)> {
    BASELINE_NAMES
        .iter()
        .map(|&n| {
            let (m, acc) = run_baseline(n, ctx, dataset, seed);
            (n.to_string(), m, acc)
        })
        .collect()
}

/// The best baseline for a dataset (by top-3 accuracy), with its scores —
/// the comparison point of Table IV / Figs. 4-8.
pub fn best_baseline(
    ctx: &MatchContext<'_>,
    dataset: &Dataset,
    seed: u64,
) -> (String, ScoreMatrix, f64) {
    run_all_baselines(ctx, dataset, seed)
        .into_iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("six baselines ran")
}

/// Builds an LSM matcher session for a dataset (clones + classifier-pre-
/// trains the featurizer for the dataset's target when BERT is enabled).
pub fn lsm_matcher_for(
    harness: &Harness,
    dataset: &Dataset,
    config: lsm_core::LsmConfig,
) -> lsm_core::LsmMatcher {
    let bert = if config.use_bert { Some(harness.bert_for(&dataset.target)) } else { None };
    lsm_core::LsmMatcher::new(&dataset.source, &dataset.target, &harness.embedding, bert, config)
}

/// Non-interactive split evaluation of LSM (Table IV / Fig. 4 protocol):
/// trains on half the ground truth, reports top-k accuracies on the rest,
/// one vector per trial.
pub fn lsm_split_accuracies(
    harness: &Harness,
    dataset: &Dataset,
    config: lsm_core::LsmConfig,
    ks: &[usize],
    n_trials: usize,
) -> Vec<Vec<f64>> {
    (0..n_trials)
        .map(|trial| {
            let mut matcher = lsm_matcher_for(harness, dataset, config);
            let eval = lsm_core::evaluate_split(
                &mut matcher,
                &dataset.ground_truth,
                0.5,
                ks,
                base_seed() + trial as u64,
            );
            ks.iter().map(|&k| eval.accuracy(k)).collect()
        })
        .collect()
}

/// Non-interactive split evaluation of the best baseline under the same
/// protocol: pins the training labels, measures top-k on the held-out half.
pub fn baseline_split_accuracies(
    ctx: &MatchContext<'_>,
    dataset: &Dataset,
    ks: &[usize],
    n_trials: usize,
) -> (String, Vec<Vec<f64>>) {
    let (name, scores, _) = best_baseline(ctx, dataset, base_seed());
    let accs = (0..n_trials)
        .map(|trial| {
            let mut engine = lsm_core::session::PinnedBaselineEngine::new(
                dataset.source.clone(),
                scores.clone(),
            );
            let eval = lsm_core::evaluate_split(
                &mut engine,
                &dataset.ground_truth,
                0.5,
                ks,
                base_seed() + trial as u64,
            );
            ks.iter().map(|&k| eval.accuracy(k)).collect()
        })
        .collect();
    (name, accs)
}

/// Runs one full LSM interactive session with a perfect oracle.
pub fn run_lsm_session(
    harness: &Harness,
    dataset: &Dataset,
    config: lsm_core::LsmConfig,
    session: lsm_core::SessionConfig,
) -> lsm_core::SessionOutcome {
    let mut matcher = lsm_matcher_for(harness, dataset, config);
    let mut oracle = lsm_core::PerfectOracle::new(dataset.ground_truth.clone());
    lsm_core::run_session(&mut matcher, &mut oracle, session)
}

/// Runs the best baseline in interactive (label-pinning) mode with the same
/// smart selection strategy, as the paper's end-to-end comparison does.
pub fn run_best_baseline_session(
    ctx: &MatchContext<'_>,
    dataset: &Dataset,
    session: lsm_core::SessionConfig,
) -> (String, lsm_core::SessionOutcome) {
    let (name, scores, _) = best_baseline(ctx, dataset, base_seed());
    let mut engine = lsm_core::session::PinnedBaselineEngine::new(dataset.source.clone(), scores);
    let mut oracle = lsm_core::PerfectOracle::new(dataset.ground_truth.clone());
    (name, lsm_core::run_session(&mut engine, &mut oracle, session))
}

/// The label-percentage grid at which Fig. 5-8 curves are tabulated.
pub const CURVE_GRID: [f64; 9] = [0.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0];

/// Prints one curve row: correct% at each grid point plus the final
/// labeling cost.
pub fn print_curve_row(label: &str, outcome: &lsm_core::SessionOutcome) {
    print!("  {label:<24}");
    for &x in &CURVE_GRID {
        print!(" {:>6.1}", outcome.correct_pct_at(x));
    }
    println!(
        "   | labels {:>5.1}%  final {:>5.1}%",
        outcome.labeling_cost_pct(),
        outcome.final_correct_pct()
    );
}

/// Serializes a session outcome's curve for the JSON artifacts.
pub fn curve_json(outcome: &lsm_core::SessionOutcome) -> serde_json::Value {
    serde_json::json!({
        "grid": CURVE_GRID,
        "correct_pct": CURVE_GRID.iter().map(|&x| outcome.correct_pct_at(x)).collect::<Vec<_>>(),
        "labeling_cost_pct": outcome.labeling_cost_pct(),
        "final_correct_pct": outcome.final_correct_pct(),
        "labels_used": outcome.labels_used,
        "reviews_done": outcome.reviews_done,
        "mean_response_time_s": outcome.mean_response_time(),
        "area_above_curve": outcome.area_above_curve(),
    })
}

/// Writes a JSON artifact under `results/`, reporting an unwritable
/// results directory to the caller. The experiment bins abort on error by
/// design — a partial artifact set would silently corrupt the paper tables
/// assembled from it — but the abort policy lives in the bins, not here.
pub fn write_artifact(name: &str, value: &serde_json::Value) -> std::io::Result<()> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)?;
    std::fs::write(&path, json)?;
    eprintln!("[artifact] wrote {}", path.display());
    Ok(())
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Median of a slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

/// Standard error of the mean.
pub fn stderr(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    (var / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(stderr(&[5.0]), 0.0);
        assert!(stderr(&[1.0, 2.0, 3.0]) > 0.0);
    }

    #[test]
    fn env_knobs_have_defaults() {
        assert!(trials() >= 1);
        let _ = base_seed();
        let _ = fast_mode();
    }
}
