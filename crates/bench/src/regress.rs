//! Noise-aware perf-regression comparison and trajectory tracking for
//! `perf_report`.
//!
//! A report's comparable metrics are the *flattened* time-denominated
//! leaves of its JSON (`…seconds`, `…seconds_per_batch`, `…ns_per_call`)
//! — all lower-is-better wall-clock numbers produced by best-of-reps
//! timing. Comparison against a baseline report is noise-aware on three
//! axes:
//!
//! * **median of N repeats** — the caller can re-run the report and merge
//!   runs with [`median_merge`], so one noisy run cannot fake a regression;
//! * **per-metric relative thresholds** — micro-timings tolerate more
//!   relative noise than macro-timings ([`threshold_pct`]: <100µs → 50%,
//!   <5ms → 25%, ≥5ms → 10%);
//! * **host fingerprinting** — a baseline produced on different hardware
//!   ([`host_fingerprint`]) downgrades the gate to advisory-only;
//! * **oversubscription exclusion** — multithreaded timings whose thread
//!   count exceeds the host's logical cores are reported but never gated
//!   ([`MetricDelta::gated`]): N threads on fewer cores time the OS
//!   scheduler, not the code;
//! * **calibration-drift detection** — the disabled-sink obs microbenches
//!   are pure-CPU calibration metrics no code change touches; if they
//!   drift more than [`CALIBRATION_DRIFT_LIMIT_PCT`] between baseline and
//!   current, the *host* changed speed (frequency scaling, CPU steal on a
//!   shared VM), so the gate downgrades to advisory instead of blaming
//!   the code.
//!
//! Every full run appends a [`trajectory_entry`] (host fingerprint,
//! flattened metrics, per-stage p50/p95/p99) to the versioned
//! `results/BENCH_trajectory.json` via [`append_trajectory`].

use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// Version stamp of `results/BENCH_trajectory.json`.
pub const TRAJECTORY_VERSION: u64 = 1;

/// Max tolerated drift (percent) on the calibration metrics before the
/// comparison concludes the host itself changed speed. Kept at the
/// tightest gating tier: beyond this, every macro metric would plausibly
/// drift by the same amount for reasons unrelated to the code.
pub const CALIBRATION_DRIFT_LIMIT_PCT: f64 = 10.0;

/// Calibration metrics: single-threaded, allocation-free, cache-resident
/// microbenches whose cost no pipeline code change can move. They measure
/// the host, so baseline-vs-current drift on them is host noise.
fn is_calibration_key(key: &str) -> bool {
    key.starts_with("obs_overhead.disabled_") && key.ends_with("ns_per_call")
}

/// Compact host identity from a report's `host` object. Two reports with
/// different fingerprints are never gated against each other.
pub fn host_fingerprint(host: &Value) -> String {
    format!(
        "{}-{}-{}c-{}",
        host["arch"].as_str().unwrap_or("unknown"),
        host["os"].as_str().unwrap_or("unknown"),
        host["logical_cores"].as_u64().unwrap_or(0),
        host["simd_target_feature"].as_str().unwrap_or("unknown"),
    )
}

/// Multiplier converting a metric's value to seconds, or `None` when the
/// key is not a comparable time metric.
fn metric_unit(key: &str) -> Option<f64> {
    let leaf = key.rsplit('.').next().unwrap_or(key);
    if leaf.ends_with("ns_per_call") {
        Some(1e-9)
    } else if leaf.ends_with("seconds") || leaf.ends_with("seconds_per_batch") {
        Some(1.0)
    } else {
        None
    }
}

/// Stable label for an array element: its `shape`/`backend`/`threads`/
/// `name` field when present, so array reordering cannot misalign metrics.
fn element_label(v: &Value) -> Option<String> {
    for k in ["shape", "backend", "name"] {
        if let Some(s) = v.get(k).and_then(Value::as_str) {
            return Some(s.to_string());
        }
    }
    v.get("threads").and_then(Value::as_u64).map(|t| format!("t{t}"))
}

fn walk(v: &Value, path: &str, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Object(map) => {
            for (k, child) in map {
                // The embedded per-stage metrics snapshot comes from a
                // single sink-enabled session run — too noisy to gate on;
                // its percentiles go to the trajectory instead.
                if k == "metrics" {
                    continue;
                }
                let p = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                walk(child, &p, out);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                let seg = element_label(child).unwrap_or_else(|| i.to_string());
                let p = if path.is_empty() { seg } else { format!("{path}.{seg}") };
                walk(child, &p, out);
            }
        }
        Value::Number(n) => {
            if metric_unit(path).is_some() {
                if let Some(f) = n.as_f64() {
                    if f.is_finite() && f > 0.0 {
                        out.insert(path.to_string(), f);
                    }
                }
            }
        }
        _ => {}
    }
}

/// All comparable time metrics of a report, keyed by JSON path.
pub fn flatten_metrics(report: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(report, "", &mut out);
    out
}

/// Per-metric regression threshold (percent), by baseline magnitude:
/// micro-timings are scheduler-noise-dominated and tolerate more.
pub fn threshold_pct(key: &str, baseline: f64) -> f64 {
    let secs = baseline * metric_unit(key).unwrap_or(1.0);
    if secs < 100e-6 {
        50.0
    } else if secs < 5e-3 {
        25.0
    } else {
        10.0
    }
}

/// Per-key median across several runs' flattened metrics. A key missing
/// from some runs takes the median of the runs that have it.
pub fn median_merge(runs: &[BTreeMap<String, f64>]) -> BTreeMap<String, f64> {
    let mut merged: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for run in runs {
        for (k, &v) in run {
            merged.entry(k.clone()).or_default().push(v);
        }
    }
    merged.into_iter().map(|(k, vs)| (k, crate::median(&vs))).collect()
}

/// One metric's baseline-vs-current outcome.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    pub key: String,
    pub baseline: f64,
    pub current: f64,
    /// Signed percent change (`+` is slower).
    pub change_pct: f64,
    pub threshold_pct: f64,
    /// False for oversubscribed multithreaded metrics (thread count above
    /// the host's logical cores): reported, never gated — wall time of N
    /// threads on fewer cores measures the scheduler, not the code.
    pub gated: bool,
    pub regressed: bool,
}

/// Thread count encoded in a flattened key's `t<N>` segment, if any
/// (`gemm.512x512x512.simd_mt.t8.seconds` → 8).
fn thread_count(key: &str) -> Option<u64> {
    key.split('.')
        .filter_map(|seg| seg.strip_prefix('t'))
        .find_map(|digits| (!digits.is_empty()).then(|| digits.parse().ok()).flatten())
}

/// Outcome of comparing a current run against a baseline report.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub deltas: Vec<MetricDelta>,
    /// Keys in the baseline with no current measurement.
    pub missing_in_current: Vec<String>,
    /// Keys measured now that the baseline lacks (new benches).
    pub new_in_current: Vec<String>,
    pub baseline_fingerprint: String,
    pub current_fingerprint: String,
    pub fingerprint_match: bool,
    /// Worst absolute drift (percent) across the calibration metrics
    /// present in both runs; 0 when none are shared.
    pub calibration_drift_pct: f64,
    /// True when calibration drift exceeded
    /// [`CALIBRATION_DRIFT_LIMIT_PCT`]: the host changed speed.
    pub calibration_shifted: bool,
    /// False when `--advisory`, a fingerprint mismatch, or a calibration
    /// shift downgraded the gate: regressions are reported but do not
    /// fail the run.
    pub enforcing: bool,
}

impl Comparison {
    /// Confirmed regressions (subset of `deltas`).
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Should the process exit non-zero?
    pub fn failed(&self) -> bool {
        self.enforcing && self.deltas.iter().any(|d| d.regressed)
    }

    /// Human-readable summary table (for stderr).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf compare: baseline {} vs current {} ({})\n",
            self.baseline_fingerprint,
            self.current_fingerprint,
            if self.enforcing {
                "enforcing"
            } else if !self.fingerprint_match {
                "advisory: host fingerprint mismatch"
            } else if self.calibration_shifted {
                "advisory: host speed shifted"
            } else {
                "advisory"
            }
        ));
        if self.calibration_drift_pct > 0.0 {
            out.push_str(&format!(
                "calibration drift {:.1}% (limit {:.0}%): {}\n",
                self.calibration_drift_pct,
                CALIBRATION_DRIFT_LIMIT_PCT,
                if self.calibration_shifted {
                    "host speed changed between runs — deltas are advisory"
                } else {
                    "host speed stable"
                }
            ));
        }
        out.push_str(&format!(
            "{:<56} {:>12} {:>12} {:>8} {:>6}  {}\n",
            "metric", "baseline_s", "current_s", "delta%", "thr%", "status"
        ));
        let mut rows: Vec<&MetricDelta> = self.deltas.iter().collect();
        rows.sort_by(|a, b| b.change_pct.total_cmp(&a.change_pct));
        for d in rows {
            out.push_str(&format!(
                "{:<56} {:>12.3e} {:>12.3e} {:>+8.1} {:>6.0}  {}\n",
                d.key,
                d.baseline,
                d.current,
                d.change_pct,
                d.threshold_pct,
                if d.regressed {
                    "REGRESSED"
                } else if !d.gated {
                    "ungated (oversubscribed)"
                } else {
                    "ok"
                }
            ));
        }
        for k in &self.missing_in_current {
            out.push_str(&format!("{k:<56} (missing in current run)\n"));
        }
        for k in &self.new_in_current {
            out.push_str(&format!("{k:<56} (new metric, no baseline)\n"));
        }
        let n_reg = self.deltas.iter().filter(|d| d.regressed).count();
        out.push_str(&format!(
            "perf compare: {} metrics, {} regressed — {}\n",
            self.deltas.len(),
            n_reg,
            if n_reg == 0 {
                "PASS"
            } else if self.enforcing {
                "FAIL"
            } else {
                "advisory (not failing the run)"
            }
        ));
        out
    }

    /// Machine-readable form, embedded in reports/artifacts.
    pub fn to_json(&self) -> Value {
        json!({
            "baseline_fingerprint": self.baseline_fingerprint.clone(),
            "current_fingerprint": self.current_fingerprint.clone(),
            "fingerprint_match": self.fingerprint_match,
            "calibration_drift_pct": self.calibration_drift_pct,
            "calibration_shifted": self.calibration_shifted,
            "enforcing": self.enforcing,
            "regressed": self.deltas.iter().filter(|d| d.regressed).count(),
            "metrics": self.deltas.iter().map(|d| json!({
                "key": d.key.clone(),
                "baseline": d.baseline,
                "current": d.current,
                "change_pct": d.change_pct,
                "threshold_pct": d.threshold_pct,
                "gated": d.gated,
                "regressed": d.regressed,
            })).collect::<Vec<_>>(),
            "missing_in_current": self.missing_in_current.clone(),
            "new_in_current": self.new_in_current.clone(),
        })
    }
}

/// Compares current (already median-merged) metrics against a baseline
/// report. `advisory` forces advisory mode; a host-fingerprint mismatch
/// forces it too.
pub fn compare(
    baseline_report: &Value,
    current_metrics: &BTreeMap<String, f64>,
    current_fingerprint: &str,
    advisory: bool,
) -> Comparison {
    let baseline_metrics = flatten_metrics(baseline_report);
    let baseline_fingerprint =
        baseline_report.get("host").map(host_fingerprint).unwrap_or_else(|| "unknown".to_string());
    let fingerprint_match = baseline_fingerprint == current_fingerprint;

    // Host-speed check: drift on the calibration microbenches cannot come
    // from pipeline code, so beyond the limit the host itself shifted.
    let calibration_drift_pct = baseline_metrics
        .iter()
        .filter(|(k, _)| is_calibration_key(k))
        .filter_map(|(k, &base)| {
            current_metrics.get(k).map(|&cur| ((cur / base - 1.0) * 100.0).abs())
        })
        .fold(0.0, f64::max);
    let calibration_shifted = calibration_drift_pct > CALIBRATION_DRIFT_LIMIT_PCT;
    let enforcing = !advisory && fingerprint_match && !calibration_shifted;

    // Multithreaded timings are only gateable when the host can actually
    // run the threads in parallel; oversubscribed ones stay advisory.
    let cores =
        baseline_report.pointer("/host/logical_cores").and_then(Value::as_u64).unwrap_or(u64::MAX);

    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for (key, &base) in &baseline_metrics {
        match current_metrics.get(key) {
            Some(&cur) => {
                let change_pct = (cur / base - 1.0) * 100.0;
                let thr = threshold_pct(key, base);
                let gated = thread_count(key).map_or(true, |t| t <= cores);
                deltas.push(MetricDelta {
                    key: key.clone(),
                    baseline: base,
                    current: cur,
                    change_pct,
                    threshold_pct: thr,
                    gated,
                    regressed: gated && change_pct > thr,
                });
            }
            None => missing.push(key.clone()),
        }
    }
    let new_in_current =
        current_metrics.keys().filter(|k| !baseline_metrics.contains_key(*k)).cloned().collect();
    Comparison {
        deltas,
        missing_in_current: missing,
        new_in_current,
        baseline_fingerprint,
        current_fingerprint: current_fingerprint.to_string(),
        fingerprint_match,
        calibration_drift_pct,
        calibration_shifted,
        enforcing,
    }
}

/// One trajectory entry for a produced report: which bench produced it,
/// host identity, flattened metrics, and per-stage latency percentiles
/// from the pipeline breakdown.
///
/// The `bench` tag comes from the report's top-level `"bench"` field
/// (`"perf"` when absent, for pre-tag baselines). Several benches append
/// to the *same* `results/BENCH_trajectory.json`, so each bench must (a)
/// tag its entries and (b) namespace its metric keys — `serve_load` nests
/// everything under a top-level `"serve"` object precisely so its
/// flattened `serve.*` keys cannot collide with `perf_report`'s.
pub fn trajectory_entry(report: &Value, timestamp_unix: u64) -> Value {
    let mut stages = serde_json::Map::new();
    if let Some(sts) = report.pointer("/pipeline_stages/metrics/stages").and_then(|v| v.as_object())
    {
        for (name, s) in sts {
            stages.insert(
                name.clone(),
                json!({
                    "count": s["count"].clone(),
                    "p50_s": s["p50_s"].clone(),
                    "p95_s": s["p95_s"].clone(),
                    "p99_s": s["p99_s"].clone(),
                }),
            );
        }
    }
    json!({
        "timestamp_unix": timestamp_unix,
        "bench": report.get("bench").and_then(Value::as_str).unwrap_or("perf"),
        "host_fingerprint":
            report.get("host").map(host_fingerprint).unwrap_or_else(|| "unknown".to_string()),
        "host": report.get("host").cloned().unwrap_or(Value::Null),
        "metrics": flatten_metrics(report),
        "stage_percentiles": Value::Object(stages),
    })
}

/// Appends `entry` to the versioned trajectory file at `path` (created on
/// first use), returning the new entry count. A file with a different
/// `trajectory_version` or broken JSON is an error, not silent data loss.
pub fn append_trajectory(path: &Path, entry: Value) -> std::io::Result<usize> {
    let mut doc = match std::fs::read_to_string(path) {
        Ok(text) => {
            let doc: Value = serde_json::from_str(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{} is not valid JSON: {e}", path.display()),
                )
            })?;
            let version = doc["trajectory_version"].as_u64();
            if version != Some(TRAJECTORY_VERSION) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "{}: trajectory_version {version:?}, expected {TRAJECTORY_VERSION}",
                        path.display()
                    ),
                ));
            }
            doc
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            json!({ "trajectory_version": TRAJECTORY_VERSION, "entries": [] })
        }
        Err(e) => return Err(e),
    };
    let entries = doc["entries"].as_array_mut().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: entries is not an array", path.display()),
        )
    })?;
    entries.push(entry);
    let count = entries.len();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, serde_json::to_string_pretty(&doc)?)?;
    Ok(count)
}

/// Loads a comparison baseline for `--compare`.
///
/// Distinguishes the three cases the callers kept conflating:
///
/// * `Ok(Some(report))` — baseline present and parseable, gate normally;
/// * `Ok(None)` — no file at `path`: the *first run* of a bench tag on
///   this branch. Not an error — the caller reports it explicitly and
///   skips the gate (the run it just wrote becomes the future baseline);
/// * `Err(_)` — the file exists but is unreadable or broken JSON. That is
///   a corrupt baseline, never silently treated as a first run.
pub fn load_baseline(path: &Path) -> Result<Option<Value>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))
}

/// The advisory notice both bench bins print when [`load_baseline`]
/// returns `Ok(None)` — one recognizable line instead of two ad-hoc ones.
pub fn first_run_notice(bench: &str, path: &Path) -> String {
    format!(
        "{bench}: no baseline at {} — first run for this bench tag; \
         skipping the regression gate (advisory). The report just written \
         can be committed as the baseline.",
        path.display()
    )
}

/// A synthetic report with known metric magnitudes, every pipeline value
/// scaled by `scale` — the fixture for [`self_test`] and the unit tests.
/// The calibration microbench deliberately does NOT scale: a code
/// regression slows the pipeline, not the disabled-sink no-op.
fn sample_report(scale: f64) -> Value {
    json!({
        "bench": "selftest",
        "host": {
            "arch": "x86_64", "os": "linux",
            "logical_cores": 8, "simd_target_feature": "avx2",
        },
        "gemm": [
            {
                "shape": "256x256x256",
                "blocked": { "seconds": 8.0e-3 * scale },
                "simd": { "seconds": 2.0e-3 * scale },
                "mt": [ { "threads": 2, "seconds": 4.0e-3 * scale } ],
            },
        ],
        "classifier_head": { "batched_seconds": 6.0e-3 * scale },
        "kernel_dispatch": { "dispatch_ns_per_call": 80.0 * scale },
        "encoder_backends": {
            "f32_graph_seconds_per_batch": 50.0e-3 * scale,
            "fast_backends": [
                { "backend": "int8", "seconds_per_batch": 12.0e-3 * scale },
            ],
        },
        "obs_overhead": { "disabled_counter_ns_per_call": 0.5 },
    })
}

/// End-to-end self-check of the gate, run by `perf_report
/// --selftest-compare` (and tier1.sh): identical runs must pass, an
/// injected 20% slowdown must be detected on macro metrics, and a host
/// fingerprint mismatch must downgrade to advisory.
pub fn self_test() -> Result<(), String> {
    let base = sample_report(1.0);
    let fp = host_fingerprint(&base["host"]);

    // Back-to-back identical runs: zero regressions, enforcing, passing.
    let same = compare(&base, &flatten_metrics(&base), &fp, false);
    if !same.enforcing || same.failed() || !same.regressions().is_empty() {
        return Err(format!(
            "identical runs must pass enforcing comparison; got {} regressions",
            same.regressions().len()
        ));
    }

    // A uniform 20% slowdown: every >=5ms metric (10% threshold) trips.
    let slow = compare(&base, &flatten_metrics(&sample_report(1.2)), &fp, false);
    if !slow.failed() {
        return Err("injected 20% slowdown was not detected".to_string());
    }
    // …while the sub-100µs metric absorbs it as noise (50% threshold).
    if slow.regressions().iter().any(|d| d.key.contains("ns_per_call")) {
        return Err("micro-metric noise threshold too tight".to_string());
    }

    // Same slowdown, foreign baseline host: reported but advisory.
    let foreign = compare(&base, &flatten_metrics(&sample_report(1.2)), "arm64-mac-4c-neon", false);
    if foreign.enforcing || foreign.failed() || foreign.regressions().is_empty() {
        return Err("fingerprint mismatch must downgrade to advisory".to_string());
    }

    // A whole-host slowdown (same fingerprint, but the pure-CPU
    // calibration microbench drifted with everything else — frequency
    // scaling or CPU steal): the gate must self-downgrade, not blame the
    // code.
    let mut host_shift = sample_report(1.2);
    host_shift["obs_overhead"]["disabled_counter_ns_per_call"] = json!(0.5 * 1.2);
    let shifted = compare(&base, &flatten_metrics(&host_shift), &fp, false);
    if !shifted.calibration_shifted || shifted.enforcing || shifted.failed() {
        return Err("host-speed shift must downgrade to advisory".to_string());
    }

    // A 20% speed-up is not a regression.
    let fast = compare(&base, &flatten_metrics(&sample_report(0.8)), &fp, false);
    if fast.failed() {
        return Err("a speed-up must not fail the gate".to_string());
    }

    // Oversubscribed multithreaded timings never gate: with a 1-core
    // baseline host, a 2x slowdown on the t2 metric alone is scheduler
    // noise, not a code regression…
    let mut base_1c = sample_report(1.0);
    base_1c["host"]["logical_cores"] = json!(1);
    let fp_1c = host_fingerprint(&base_1c["host"]);
    let mut slow_mt = sample_report(1.0);
    slow_mt["gemm"][0]["mt"][0]["seconds"] = json!(8.0e-3);
    let over = compare(&base_1c, &flatten_metrics(&slow_mt), &fp_1c, false);
    if over.failed() || !over.enforcing {
        return Err("oversubscribed mt metric must not gate on a 1-core host".to_string());
    }
    // …while on an 8-core host the same t2 slowdown is real and fails.
    let parallel = compare(&base, &flatten_metrics(&slow_mt), &fp, false);
    if !parallel.failed() {
        return Err("mt regression on a capable host must be detected".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_picks_time_metrics_with_stable_keys() {
        let m = flatten_metrics(&sample_report(1.0));
        assert_eq!(m["gemm.256x256x256.blocked.seconds"], 8.0e-3);
        assert_eq!(m["gemm.256x256x256.mt.t2.seconds"], 4.0e-3);
        assert_eq!(m["classifier_head.batched_seconds"], 6.0e-3);
        assert_eq!(m["encoder_backends.f32_graph_seconds_per_batch"], 50.0e-3);
        assert_eq!(m["encoder_backends.fast_backends.int8.seconds_per_batch"], 12.0e-3);
        assert_eq!(m["obs_overhead.disabled_counter_ns_per_call"], 0.5);
        assert_eq!(m["kernel_dispatch.dispatch_ns_per_call"], 80.0);
        // Non-time leaves (counts, names, hosts) are excluded.
        assert!(m.keys().all(|k| metric_unit(k).is_some()));
    }

    #[test]
    fn embedded_metrics_snapshot_is_not_gated() {
        let report = json!({
            "pipeline_stages": {
                "metrics": { "stages": { "x": { "total_s": 1.0, "raw_seconds": 2.0 } } },
                "respond_seconds": 3.0,
            }
        });
        let m = flatten_metrics(&report);
        assert_eq!(m.len(), 1);
        assert_eq!(m["pipeline_stages.respond_seconds"], 3.0);
    }

    #[test]
    fn thresholds_scale_with_magnitude() {
        assert_eq!(threshold_pct("x.seconds", 10e-6), 50.0);
        assert_eq!(threshold_pct("x.seconds", 1e-3), 25.0);
        assert_eq!(threshold_pct("x.seconds", 10e-3), 10.0);
        // ns_per_call values are nanoseconds: 0.5ns is deep micro.
        assert_eq!(threshold_pct("x.disabled_counter_ns_per_call", 0.5), 50.0);
    }

    #[test]
    fn median_merge_is_robust_to_one_outlier() {
        let runs: Vec<BTreeMap<String, f64>> = [1.0, 1.02, 9.0]
            .iter()
            .map(|&s| BTreeMap::from([("k.seconds".to_string(), 8e-3 * s)]))
            .collect();
        let merged = median_merge(&runs);
        assert!((merged["k.seconds"] - 8e-3 * 1.02).abs() < 1e-12);
    }

    #[test]
    fn self_test_passes() {
        self_test().expect("regression-gate self test");
    }

    #[test]
    fn missing_baseline_is_a_first_run_not_an_error() {
        let dir = std::env::temp_dir().join(format!("lsm-regress-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");

        // Absent file: Ok(None), and the notice names the tag and path.
        let missing = dir.join("BENCH_missing.json");
        assert_eq!(load_baseline(&missing).expect("missing file is a first run"), None);
        let notice = first_run_notice("serve_load", &missing);
        assert!(notice.contains("serve_load") && notice.contains("BENCH_missing.json"));
        assert!(notice.contains("first run"), "notice must say why the gate is skipped");

        // Present + parseable: Ok(Some(..)) round-trips the report.
        let present = dir.join("BENCH_present.json");
        std::fs::write(&present, sample_report(1.0).to_string()).expect("write baseline");
        let loaded = load_baseline(&present).expect("readable baseline").expect("present");
        assert_eq!(flatten_metrics(&loaded), flatten_metrics(&sample_report(1.0)));

        // Present but corrupt: an error naming the file — never silently
        // treated as a first run.
        let corrupt = dir.join("BENCH_corrupt.json");
        std::fs::write(&corrupt, "{ not json").expect("write corrupt baseline");
        let err = load_baseline(&corrupt).expect_err("corrupt baseline must error");
        assert!(err.contains("BENCH_corrupt.json"), "error names the file: {err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    /// The shape `serve_load` writes (metrics nested under `"serve"`, obs
    /// snapshot under a skipped `"metrics"` key) — kept in sync with
    /// `bin/serve_load.rs`.
    fn sample_serve_report() -> Value {
        json!({
            "bench": "serve",
            "host": {
                "arch": "x86_64", "os": "linux",
                "logical_cores": 8, "simd_target_feature": "avx2",
            },
            "serve": {
                "sessions": 8,
                "label_rounds": 152,
                "round_p50_seconds": 2.0e-3,
                "round_p95_seconds": 5.0e-3,
                "round_p99_seconds": 9.0e-3,
                "round_mean_seconds": 2.5e-3,
                "sessions_per_second": 4.0,
                "cache": { "hits": 640, "misses": 80, "hit_rate": 0.888 },
            },
            "pipeline_stages": {
                "metrics": { "stages": { "serve.respond": {
                    "count": 160, "p50_s": 1.8e-3, "p95_s": 4.0e-3, "p99_s": 8.0e-3,
                } } },
            },
        })
    }

    #[test]
    fn benches_share_the_trajectory_without_key_collisions() {
        let perf = sample_report(1.0);
        let serve = sample_serve_report();

        // Entries are distinguishable by their bench tag…
        let pe = trajectory_entry(&perf, 1);
        let se = trajectory_entry(&serve, 2);
        assert_eq!(pe["bench"], json!("selftest"));
        assert_eq!(se["bench"], json!("serve"));
        assert_eq!(trajectory_entry(&json!({"host": {}}), 3)["bench"], json!("perf"));

        // …and their gated metric keys are disjoint: serve nests under
        // "serve.", perf_report never does.
        let pm = flatten_metrics(&perf);
        let sm = flatten_metrics(&serve);
        assert!(!sm.is_empty(), "serve report must expose gated latency metrics");
        assert!(
            sm.keys().all(|k| k.starts_with("serve.")),
            "serve metrics must stay in their namespace: {:?}",
            sm.keys().collect::<Vec<_>>()
        );
        let collisions: Vec<&String> = pm.keys().filter(|k| sm.contains_key(*k)).collect();
        assert!(collisions.is_empty(), "cross-bench metric collisions: {collisions:?}");

        // Throughput and hit rate are recorded but never time-gated.
        assert!(!sm.contains_key("serve.sessions_per_second"));
        assert!(!sm.contains_key("serve.cache.hit_rate"));

        // Stage percentiles land namespaced too (serve.respond, never the
        // in-process driver's session.respond).
        assert!(se["stage_percentiles"]["serve.respond"]["p99_s"].is_number());

        // Both entries coexist in one trajectory file.
        let dir = std::env::temp_dir().join(format!("lsm-regress-mixed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traj.json");
        std::fs::remove_file(&path).ok();
        append_trajectory(&path, pe).unwrap();
        assert_eq!(append_trajectory(&path, se).unwrap(), 2);
        let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let benches: Vec<&str> = doc["entries"]
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e["bench"].as_str().unwrap())
            .collect();
        assert_eq!(benches, ["selftest", "serve"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trajectory_appends_versioned_entries() {
        let dir = std::env::temp_dir().join(format!("lsm-regress-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("traj.json");
        std::fs::remove_file(&path).ok();

        let report = sample_report(1.0);
        let n1 = append_trajectory(&path, trajectory_entry(&report, 1000)).unwrap();
        let n2 = append_trajectory(&path, trajectory_entry(&report, 2000)).unwrap();
        assert_eq!((n1, n2), (1, 2));

        let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc["trajectory_version"].as_u64(), Some(TRAJECTORY_VERSION));
        let entries = doc["entries"].as_array().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0]["timestamp_unix"].as_u64(), Some(1000));
        assert_eq!(entries[1]["host_fingerprint"].as_str(), Some("x86_64-linux-8c-avx2"));
        assert!(entries[0]["metrics"]["classifier_head.batched_seconds"].is_number());

        // A wrong version is an explicit error.
        std::fs::write(&path, r#"{"trajectory_version": 99, "entries": []}"#).unwrap();
        assert!(append_trajectory(&path, trajectory_entry(&report, 3000)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
