//! Microbenchmarks of the neural substrate: matmul, encoder forward pass,
//! autograd backward, and subword encoding.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsm_nn::{BertConfig, BertEncoder, BpeVocab, Graph, ParamStore, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_kernels");

    let a = Tensor::from_vec(48, 48, (0..48 * 48).map(|i| (i % 7) as f32 * 0.1).collect());
    let b = a.clone();
    group.bench_function("matmul_48x48", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
    });

    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let encoder = BertEncoder::new(BertConfig::small(800), &mut store, &mut rng);
    let ids: Vec<u32> = (0..24).map(|i| 5 + (i % 700)).collect();
    group.bench_function("encoder_forward_seq24", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let pooled = encoder.pooled(&mut g, &store, black_box(&ids));
            black_box(g.value(pooled).data()[0])
        })
    });

    group.bench_function("encoder_forward_backward_seq24", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let pooled = encoder.pooled(&mut g, &store, black_box(&ids));
            let ones = g.input(Tensor::full(48, 1, 1.0));
            let s = g.matmul(pooled, ones);
            let loss = g.bce_with_logits(s, 1.0, 1.0);
            let mut store2 = store.clone();
            g.backward(loss, &mut store2);
            black_box(store2.grad_norm())
        })
    });

    let corpus: Vec<Vec<&str>> = vec![
        vec!["price", "change", "percentage", "discount"],
        vec!["total", "order", "line", "amount"],
        vec!["customer", "order", "quantity"],
    ];
    let vocab = BpeVocab::train(&corpus, 100);
    group.bench_function("bpe_encode_word", |bch| {
        bch.iter(|| black_box(vocab.encode_word(black_box("percentage"))))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
