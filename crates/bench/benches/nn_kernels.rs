//! Microbenchmarks of the neural substrate: matmul (naive vs blocked vs
//! parallel), encoder forward pass, autograd backward, and subword
//! encoding. `--bin perf_report` writes the machine-readable counterpart
//! to `results/BENCH_nn.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsm_nn::kernels::{matmul_blocked, matmul_mt, matmul_naive};
use lsm_nn::{BertConfig, BertEncoder, BpeVocab, Graph, ParamStore, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic xorshift data in [-1, 1).
fn pseudo_data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_kernels");

    let a = Tensor::from_vec(48, 48, (0..48 * 48).map(|i| (i % 7) as f32 * 0.1).collect());
    let b = a.clone();
    group.bench_function("matmul_48x48", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
    });

    // Kernel comparison on the acceptance shape (256³), a BERT-small FFN
    // GEMM (seq 48 × d 48 → ff 96), and the paper-sized batched classifier
    // head (1218 ISS attributes × [4d → d] hidden layer).
    for &(m, k, n, name) in &[
        (256usize, 256usize, 256usize, "gemm_256x256x256"),
        (48, 48, 96, "gemm_bert_ffn_48x48x96"),
        (1218, 192, 48, "gemm_head_batched_1218x192x48"),
    ] {
        let a = pseudo_data(m * k, 1);
        let b = pseudo_data(k * n, 2);
        let mut out = vec![0.0f32; m * n];
        group.bench_function(format!("{name}_naive"), |bch| {
            bch.iter(|| {
                matmul_naive(black_box(&a), black_box(&b), &mut out, m, k, n);
                black_box(&out);
            })
        });
        group.bench_function(format!("{name}_blocked"), |bch| {
            bch.iter(|| {
                matmul_blocked(black_box(&a), black_box(&b), &mut out, m, k, n);
                black_box(&out);
            })
        });
        group.bench_function(format!("{name}_mt4"), |bch| {
            bch.iter(|| {
                matmul_mt(black_box(&a), black_box(&b), &mut out, m, k, n, 4);
                black_box(&out);
            })
        });
    }

    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let encoder = BertEncoder::new(BertConfig::small(800), &mut store, &mut rng);
    let ids: Vec<u32> = (0..24).map(|i| 5 + (i % 700)).collect();
    group.bench_function("encoder_forward_seq24", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let pooled = encoder.pooled(&mut g, &store, black_box(&ids));
            black_box(g.value(pooled).data()[0])
        })
    });

    // Same forward through a reused inference-mode arena — the featurizer
    // hot path (pooled_many) runs this way.
    group.bench_function("encoder_forward_seq24_arena_reuse", |bch| {
        let mut g = Graph::for_inference();
        bch.iter(|| {
            g.reset();
            let pooled = encoder.pooled(&mut g, &store, black_box(&ids));
            black_box(g.value(pooled).data()[0])
        })
    });

    group.bench_function("encoder_forward_backward_seq24", |bch| {
        bch.iter(|| {
            let mut g = Graph::new();
            let pooled = encoder.pooled(&mut g, &store, black_box(&ids));
            let ones = g.input(Tensor::full(48, 1, 1.0));
            let s = g.matmul(pooled, ones);
            let loss = g.bce_with_logits(s, 1.0, 1.0);
            let mut store2 = store.clone();
            g.backward(loss, &mut store2);
            black_box(store2.grad_norm())
        })
    });

    let corpus: Vec<Vec<&str>> = vec![
        vec!["price", "change", "percentage", "discount"],
        vec!["total", "order", "line", "amount"],
        vec!["customer", "order", "quantity"],
    ];
    let vocab = BpeVocab::train(&corpus, 100);
    group.bench_function("bpe_encode_word", |bch| {
        bch.iter(|| black_box(vocab.encode_word(black_box("percentage"))))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
