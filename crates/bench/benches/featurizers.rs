//! Benchmarks of LSM's featurization kernels — the per-candidate-pair cost
//! that dominates the O(|As|×|At|) pipeline (Section VI-C).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsm_core::featurize::{embedding_features, lexical_features};
use lsm_core::{BertFeaturizer, BertFeaturizerConfig};
use lsm_datasets::public_data::movielens_imdb;
use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::full_lexicon;
use lsm_schema::AttrId;

fn bench_featurizers(c: &mut Criterion) {
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let d = movielens_imdb();

    let mut group = c.benchmark_group("featurizers");
    group.bench_function("lexical_matrix_19x39", |b| {
        b.iter(|| black_box(lexical_features(&d.source, &d.target, 1)))
    });
    group.bench_function("embedding_matrix_19x39", |b| {
        b.iter(|| black_box(embedding_features(&embedding, &d.source, &d.target, 1)))
    });

    let bert = BertFeaturizer::pretrain(&lexicon, BertFeaturizerConfig::tiny());
    let s_ids = bert.attr_token_ids(&d.source, AttrId(0));
    let t_ids = bert.attr_token_ids(&d.target, AttrId(0));
    group.bench_function("bert_single_pooled", |b| {
        b.iter(|| black_box(bert.single_pooled(black_box(&s_ids))))
    });
    let u = bert.single_pooled(&s_ids);
    let v = bert.single_pooled(&t_ids);
    group.bench_function("bert_classify_pooled", |b| {
        b.iter(|| black_box(bert.classify_pooled(black_box(&u), black_box(&v))))
    });
    group.finish();
}

criterion_group!(benches, bench_featurizers);
criterion_main!(benches);
