//! Benchmarks of the six baseline matchers on MovieLens-IMDB (19×39
//! candidate pairs) — comparative cost of the Section III methods.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsm_baselines::coma::{Aggregation, Coma};
use lsm_baselines::cupid::Cupid;
use lsm_baselines::flooding::SimilarityFlooding;
use lsm_baselines::lsd::Lsd;
use lsm_baselines::mlm::Mlm;
use lsm_baselines::smatch::SMatch;
use lsm_baselines::{MatchContext, Matcher};
use lsm_datasets::public_data::movielens_imdb;
use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::full_lexicon;
use lsm_schema::AttrId;

fn bench_baselines(c: &mut Criterion) {
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    let d = movielens_imdb();

    let mut group = c.benchmark_group("baselines_movielens");
    group.bench_function("cupid", |b| {
        b.iter(|| black_box(Cupid::new(0.2).score(&ctx, &d.source, &d.target)))
    });
    group.bench_function("coma_max", |b| {
        b.iter(|| black_box(Coma::new(Aggregation::Max).score(&ctx, &d.source, &d.target)))
    });
    group.bench_function("smatch", |b| {
        b.iter(|| black_box(SMatch.score(&ctx, &d.source, &d.target)))
    });
    group.bench_function("similarity_flooding", |b| {
        b.iter(|| black_box(SimilarityFlooding::default().score(&ctx, &d.source, &d.target)))
    });
    group.bench_function("mlm_kmeans", |b| {
        b.iter(|| black_box(Mlm::default().score(&ctx, &d.source, &d.target)))
    });
    let train: Vec<(AttrId, AttrId)> = d.ground_truth.pairs().step_by(2).collect();
    group.bench_function("lsd_train_and_score", |b| {
        b.iter(|| {
            let mut lsd = Lsd::new();
            lsd.train(&ctx, &d.source, &d.target, &train);
            black_box(lsd.score(&ctx, &d.source, &d.target))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
