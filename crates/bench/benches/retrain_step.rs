//! Benchmark of one interaction round's model work (retrain + predict) —
//! the response time of Fig. 9, at reduced scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsm_core::{LabelStore, LsmConfig, LsmMatcher};
use lsm_datasets::customers::{generate_customer, CustomerSpec};
use lsm_datasets::iss::{generate_retail_iss, IssConfig};
use lsm_datasets::rename::{NamingStyle, RenameMix};
use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::full_lexicon;

fn bench_retrain(c: &mut Criterion) {
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let iss = generate_retail_iss(&lexicon, IssConfig::small());
    let spec = CustomerSpec {
        name: "Bench Customer",
        entities: 3,
        attributes: 24,
        foreign_keys: 2,
        descriptions: false,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0x99,
    };
    let d = generate_customer(&iss, &lexicon, spec, 3);
    let config = LsmConfig { use_bert: false, ..Default::default() };
    let mut matcher = LsmMatcher::new(&d.source, &d.target, &embedding, None, config);
    let mut labels = LabelStore::new();
    for (i, (s, t)) in d.ground_truth.pairs().enumerate() {
        if i % 3 == 0 {
            labels.confirm(s, t);
        }
    }

    let mut group = c.benchmark_group("retrain_step");
    group.bench_function("retrain_meta_24x90", |b| b.iter(|| matcher.retrain(black_box(&labels))));
    group.bench_function("predict_24x90", |b| {
        b.iter(|| black_box(matcher.predict(black_box(&labels))))
    });
    group.finish();
}

criterion_group!(benches, bench_retrain);
criterion_main!(benches);
