//! Microbenchmarks of the string-similarity toolbox — the inner loop of
//! every lexical matcher (COMA's library, the lexical featurizer).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsm_text::lexical_similarity;
use lsm_text::metrics::{edit_similarity, jaro_winkler, soundex, trigram_similarity};
use lsm_text::tokenize;

const PAIRS: &[(&str, &str)] = &[
    ("item_amount", "product_item_price_amount"),
    ("discount", "price_change_percentage"),
    ("promised_avalailable_curbside_pickup_timestamp", "pick_up_estimated_time"),
    ("qty", "quantity"),
    ("OrderLine.TotalOrderLineAmount", "items_subtotal"),
];

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("string_metrics");
    group.bench_function("lexical_similarity", |b| {
        b.iter(|| {
            for &(x, y) in PAIRS {
                black_box(lexical_similarity(black_box(x), black_box(y)));
            }
        })
    });
    group.bench_function("edit_similarity", |b| {
        b.iter(|| {
            for &(x, y) in PAIRS {
                black_box(edit_similarity(black_box(x), black_box(y)));
            }
        })
    });
    group.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            for &(x, y) in PAIRS {
                black_box(jaro_winkler(black_box(x), black_box(y)));
            }
        })
    });
    group.bench_function("trigram_similarity", |b| {
        b.iter(|| {
            for &(x, y) in PAIRS {
                black_box(trigram_similarity(black_box(x), black_box(y)));
            }
        })
    });
    group.bench_function("soundex", |b| {
        b.iter(|| {
            for &(x, _) in PAIRS {
                black_box(soundex(black_box(x)));
            }
        })
    });
    group.bench_function("tokenize_identifier", |b| {
        b.iter(|| {
            for &(x, y) in PAIRS {
                black_box(tokenize(black_box(x)));
                black_box(tokenize(black_box(y)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
