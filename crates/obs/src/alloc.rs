//! Opt-in counting `#[global_allocator]` wrapper (`alloc-track` feature).
//!
//! [`CountingAlloc`] delegates every call verbatim to [`std::alloc::System`]
//! and maintains process-wide totals (bytes/count allocated, live bytes,
//! peak live bytes) plus per-thread running totals that `Span` reads at
//! start/end to attribute allocation deltas to pipeline stages.
//!
//! This module is the only sanctioned `unsafe` code in the workspace: the
//! `GlobalAlloc` trait is itself unsafe, and every impl below is a pure
//! pass-through — we never touch the returned memory, only count sizes.
//! Accounting uses lock-free atomic RMWs and const-initialised thread-local
//! `Cell`s, so the allocator never allocates, locks, or panics itself
//! (thread-local access uses `try_with` to stay sound during TLS teardown).
//!
//! Install it from a binary crate built with the feature:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: lsm_obs::CountingAlloc = lsm_obs::CountingAlloc;
//! ```

use crate::AllocStats;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_COUNT: AtomicU64 = AtomicU64::new(0);
static IN_USE: AtomicU64 = AtomicU64::new(0);
static PEAK_IN_USE: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-init Cells: first access never allocates (an allocating
    // thread_local inside the global allocator would recurse).
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_COUNT: Cell<u64> = const { Cell::new(0) };
}

// The accounting RMWs release so `global_stats`'s `Acquire` loads pair
// with them (R11): a snapshot taken after joining a worker thread sees
// that thread's allocations. On x86 the lock-prefixed RMW is the same
// instruction at either ordering, so the allocator fast path is unchanged.
#[inline]
fn on_alloc(size: usize) {
    let size = size as u64;
    TOTAL_BYTES.fetch_add(size, Ordering::AcqRel);
    TOTAL_COUNT.fetch_add(1, Ordering::AcqRel);
    let live = IN_USE.fetch_add(size, Ordering::AcqRel).wrapping_add(size);
    PEAK_IN_USE.fetch_max(live, Ordering::AcqRel);
    // During thread teardown the TLS slots may already be destroyed;
    // try_with skips per-thread accounting then (global totals still count).
    let _ = TL_BYTES.try_with(|c| c.set(c.get().wrapping_add(size)));
    let _ = TL_COUNT.try_with(|c| c.set(c.get() + 1));
}

#[inline]
fn on_dealloc(size: usize) {
    IN_USE.fetch_sub(size as u64, Ordering::AcqRel);
}

/// Counting wrapper around the system allocator. See the module docs.
pub struct CountingAlloc;

// SAFETY: every method delegates verbatim to `System`, which upholds the
// GlobalAlloc contract; we only read `layout.size()` for accounting and
// never dereference, retain, or hand out different pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is passed through unchanged from our caller,
        // who guarantees it is valid per the GlobalAlloc contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is passed through unchanged from our caller.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with `layout`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are passed through unchanged from our
        // caller, and every pointer we hand out comes from `System`.
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with
    // `layout` and that `new_size` is valid per the GlobalAlloc contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: arguments are passed through unchanged from our caller,
        // and every pointer we hand out comes from `System`.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Counted as dealloc(old) + alloc(new): totals grow by the new
            // size, live bytes move by the delta.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Process-wide totals. Acquire loads so a snapshot taken after joining a
/// worker thread sees that thread's allocations.
pub(crate) fn global_stats() -> AllocStats {
    AllocStats {
        total_bytes: TOTAL_BYTES.load(Ordering::Acquire),
        total_count: TOTAL_COUNT.load(Ordering::Acquire),
        in_use_bytes: IN_USE.load(Ordering::Acquire),
        peak_in_use_bytes: PEAK_IN_USE.load(Ordering::Acquire),
    }
}

/// `(bytes, count)` allocated so far on the calling thread.
#[inline]
pub(crate) fn thread_totals() -> (u64, u64) {
    (TL_BYTES.try_with(Cell::get).unwrap_or(0), TL_COUNT.try_with(Cell::get).unwrap_or(0))
}
